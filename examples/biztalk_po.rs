//! Domain scenario: match the five purchase-order schemas of the
//! evaluation corpus (CIDX, Excel, Noris, Paragon, Apertum) with the
//! paper's default strategy and report per-task quality against the gold
//! standards — a miniature of the paper's Section 7 study.
//!
//! Run with: `cargo run --release --example biztalk_po`

use coma::core::{Coma, MatchContext, MatchStrategy};
use coma::eval::{task_label, AverageQuality, Corpus, MatchQuality, SCHEMA_NAMES, TASKS};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::load();
    let mut coma = Coma::new();
    *coma.aux_mut() = corpus.aux().clone();

    println!("corpus:");
    for (i, name) in SCHEMA_NAMES.iter().enumerate() {
        println!("  {} ({}): {}", i + 1, name, corpus.stats(i));
    }

    println!("\ndefault operation (All hybrids, Average/Both/Thr(0.5)+Delta(0.02)):\n");
    let strategy = MatchStrategy::paper_default();
    let mut qualities = Vec::new();
    for (i, j) in TASKS {
        let outcome = coma.match_schemas(corpus.schema(i), corpus.schema(j), &strategy)?;
        let ctx = MatchContext::new(
            corpus.schema(i),
            corpus.schema(j),
            corpus.path_set(i),
            corpus.path_set(j),
            coma.aux(),
        );
        let proposed: BTreeSet<(String, String)> = outcome
            .result
            .candidates
            .iter()
            .map(|c| {
                (
                    ctx.source_paths.full_name(ctx.source, c.source),
                    ctx.target_paths.full_name(ctx.target, c.target),
                )
            })
            .collect();
        let gold = corpus.gold_names(i, j);
        let q = MatchQuality::compare(&gold, &proposed);
        println!(
            "  task {:>6}: precision {:.2}  recall {:.2}  overall {:+.2}   ({} proposed / {} real)",
            task_label((i, j)),
            q.precision(),
            q.recall(),
            q.overall(),
            proposed.len(),
            gold.len(),
        );
        qualities.push(q);
    }
    let avg = AverageQuality::of(&qualities);
    println!(
        "\n  average:    precision {:.2}  recall {:.2}  overall {:+.2}",
        avg.precision, avg.recall, avg.overall
    );
    println!("\n(The paper's best no-reuse average Overall is 0.73; reuse pushes it");
    println!("to 0.82 — see `cargo run --release -p coma-bench --bin figure12`.)");
    Ok(())
}
