//! Property tests for the similarity invariants every COMA string matcher
//! must satisfy: values in [0,1], symmetry, identity, plus metric properties
//! of the raw edit distance.

use coma_strings::{
    affix_similarity, digram_similarity, edit_distance, edit_distance_similarity, ngram_similarity,
    soundex_similarity, tokenize, trigram_similarity, AbbreviationTable,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    // Schema-element-like names: alphanumeric with occasional separators.
    proptest::string::string_regex("[A-Za-z0-9_]{0,16}").unwrap()
}

fn check_similarity_invariants(
    sim: fn(&str, &str) -> f64,
    a: &str,
    b: &str,
) -> Result<(), TestCaseError> {
    let s_ab = sim(a, b);
    let s_ba = sim(b, a);
    prop_assert!((0.0..=1.0).contains(&s_ab), "sim out of range: {s_ab}");
    prop_assert!(
        (s_ab - s_ba).abs() < 1e-12,
        "asymmetric: {a:?},{b:?} → {s_ab} vs {s_ba}"
    );
    let s_aa = sim(a, a);
    prop_assert!(
        (s_aa - 1.0).abs() < 1e-12,
        "identity violated for {a:?}: {s_aa}"
    );
    Ok(())
}

proptest! {
    #[test]
    fn affix_invariants(a in arb_name(), b in arb_name()) {
        check_similarity_invariants(affix_similarity, &a, &b)?;
    }

    #[test]
    fn trigram_invariants(a in arb_name(), b in arb_name()) {
        check_similarity_invariants(trigram_similarity, &a, &b)?;
    }

    #[test]
    fn digram_invariants(a in arb_name(), b in arb_name()) {
        check_similarity_invariants(digram_similarity, &a, &b)?;
    }

    #[test]
    fn edit_similarity_invariants(a in arb_name(), b in arb_name()) {
        check_similarity_invariants(edit_distance_similarity, &a, &b)?;
    }

    #[test]
    fn soundex_invariants(a in arb_name(), b in arb_name()) {
        check_similarity_invariants(soundex_similarity, &a, &b)?;
    }

    #[test]
    fn edit_distance_is_a_metric(a in arb_name(), b in arb_name(), c in arb_name()) {
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        prop_assert_eq!(ab, ba);
        // Case-folded identity of indiscernibles.
        if a.to_lowercase() == b.to_lowercase() {
            prop_assert_eq!(ab, 0);
        }
        // Triangle inequality.
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        prop_assert!(ab <= ac + cb);
    }

    #[test]
    fn edit_distance_bounded_by_longer_string(a in arb_name(), b in arb_name()) {
        let d = edit_distance(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn ngram_similarity_any_n(a in arb_name(), b in arb_name(), n in 1usize..6) {
        let s = ngram_similarity(&a, &b, n);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((ngram_similarity(&b, &a, n) - s).abs() < 1e-12);
    }

    #[test]
    fn tokenize_covers_all_alphanumerics(a in arb_name()) {
        let tokens = tokenize(&a);
        let rebuilt: String = tokens.concat();
        let expected: String = a.chars().filter(|c| c.is_alphanumeric()).flat_map(char::to_lowercase).collect();
        prop_assert_eq!(rebuilt, expected);
        for t in &tokens {
            prop_assert!(!t.is_empty());
        }
    }

    #[test]
    fn abbreviation_expansion_is_idempotent_on_unknowns(a in arb_name()) {
        let table = AbbreviationTable::new();
        let tokens = tokenize(&a);
        prop_assert_eq!(table.expand(&tokens), tokens);
    }
}
