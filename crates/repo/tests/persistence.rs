//! Persistence-path integration tests: roundtrip determinism, atomic
//! file-backend behavior, corruption handling, keyed-replace semantics,
//! and concurrent reader consistency under the `RwLock`.

use coma_graph::{Node, Schema, SchemaBuilder};
use coma_repo::{
    FileBackend, Mapping, MappingKind, PersistentRepository, Repository, RepositoryBackend,
    RepositoryError, StoredCube,
};
use std::path::PathBuf;

fn schema(name: &str, leaves: &[&str]) -> Schema {
    let mut b = SchemaBuilder::new(name);
    let root = b.add_node(Node::new(name));
    for leaf in leaves {
        let c = b.add_node(Node::new(*leaf));
        b.add_child(root, c).unwrap();
    }
    b.build().unwrap()
}

fn mapping(a: &str, b: &str, kind: MappingKind, sim: f64) -> Mapping {
    let mut m = Mapping::new(a, b, kind);
    m.push(format!("{a}.x"), format!("{b}.x"), sim);
    m
}

fn cube(a: &str, b: &str, matchers: &[&str], value: f64) -> StoredCube {
    StoredCube {
        source_schema: a.into(),
        target_schema: b.into(),
        matchers: matchers.iter().map(|m| m.to_string()).collect(),
        source_paths: vec![format!("{a}.x")],
        target_paths: vec![format!("{b}.x")],
        values: vec![value; matchers.len()],
    }
}

fn populated() -> Repository {
    let mut repo = Repository::new();
    repo.put_schema(schema("PO1", &["shipTo", "billTo", "poNo"]));
    repo.put_schema(schema("PO2", &["deliverTo", "invoiceTo", "orderNum"]));
    repo.put_mapping(mapping("PO1", "PO2", MappingKind::Automatic, 0.72));
    repo.put_mapping(mapping("PO1", "PO2", MappingKind::Manual, 1.0));
    repo.put_cube(cube("PO1", "PO2", &["Name", "TypeName"], 0.5));
    repo
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coma_persistence_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{}.json", name, std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

#[test]
fn save_load_save_is_byte_identical() {
    let path = temp_store("roundtrip");
    let backend = FileBackend::new(&path);
    backend.persist(&populated()).unwrap();
    let first = std::fs::read(&path).unwrap();

    let reloaded = backend.load().unwrap();
    backend.persist(&reloaded).unwrap();
    let second = std::fs::read(&path).unwrap();

    assert!(!first.is_empty());
    assert_eq!(first, second, "save -> load -> save must be byte-identical");
    std::fs::remove_file(&path).ok();
}

#[test]
fn reopened_repository_sees_everything_stored() {
    let path = temp_store("reopen");
    {
        let handle = PersistentRepository::open(FileBackend::new(&path)).unwrap();
        handle
            .mutate(|r| {
                r.put_schema(schema("S1", &["a", "b"]));
                r.put_mapping(mapping("S1", "S2", MappingKind::Automatic, 0.8));
                r.put_cube(cube("S1", "S2", &["Name"], 0.8));
            })
            .unwrap();
        // Handle dropped: simulates a process exit.
    }
    let handle = PersistentRepository::open(FileBackend::new(&path)).unwrap();
    let repo = handle.read();
    assert_eq!(repo.schema_count(), 1);
    assert_eq!(repo.schema("S1").unwrap().node_count(), 3);
    assert_eq!(repo.mappings().len(), 1);
    assert_eq!(repo.cube_count(), 1);
    drop(repo);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_store_surfaces_format_error() {
    for garbage in [
        "{ not json",                 // syntactically broken
        "[1, 2, 3]",                  // valid JSON, wrong shape
        "{\"schemas\": 7}",           // wrong field type
        "{\"schemas\": {}, \"mappin", // truncated mid-write
        "",                           // empty file
    ] {
        let path = temp_store("corrupt");
        std::fs::write(&path, garbage).unwrap();
        let backend = FileBackend::new(&path);
        match backend.load() {
            Err(RepositoryError::Format(_)) => {}
            other => panic!("corrupted store {garbage:?} must yield Format, got {other:?}"),
        }
        // Opening a handle propagates the error instead of wiping the file.
        assert!(PersistentRepository::open(FileBackend::new(&path)).is_err());
        assert!(path.exists(), "a bad load must not destroy the store file");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn persist_replaces_store_atomically_leaving_no_temp_files() {
    let path = temp_store("atomic");
    let backend = FileBackend::new(&path);
    backend.persist(&populated()).unwrap();
    backend.persist(&populated()).unwrap();
    let dir = path.parent().unwrap();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("atomic"))
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "persist must clean up temp files");
    assert!(backend.load().is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn restore_replaces_keyed_results_instead_of_appending() {
    let mut repo = Repository::new();
    repo.put_mapping(mapping("A", "B", MappingKind::Automatic, 0.5));
    repo.put_mapping(mapping("A", "B", MappingKind::Automatic, 0.9));
    assert_eq!(repo.mappings().len(), 1, "same key must replace");
    assert_eq!(repo.mappings()[0].correspondences[0].similarity, 0.9);

    // A different kind, orientation, or pair is a different key.
    repo.put_mapping(mapping("A", "B", MappingKind::Manual, 1.0));
    repo.put_mapping(mapping("B", "A", MappingKind::Automatic, 0.4));
    repo.put_mapping(mapping("A", "C", MappingKind::Automatic, 0.4));
    assert_eq!(repo.mappings().len(), 4);

    repo.put_cube(cube("A", "B", &["Name"], 0.5));
    repo.put_cube(cube("A", "B", &["Name"], 0.8));
    assert_eq!(repo.cube_count(), 1, "same cube key must replace");
    assert_eq!(repo.cubes_for("A", "B")[0].values, vec![0.8]);
    repo.put_cube(cube("A", "B", &["Name", "Leaves"], 0.7));
    assert_eq!(
        repo.cube_count(),
        2,
        "a different matcher set is a new cube"
    );
}

#[test]
fn concurrent_readers_see_consistent_snapshots() {
    let handle = std::sync::Arc::new(PersistentRepository::in_memory());
    // Writers keep the mapping count oscillating between full rewrites;
    // every reader snapshot must be internally consistent (the mapping
    // and its cube are always stored in the same mutate call).
    let rounds = 200;
    std::thread::scope(|scope| {
        let writer = std::sync::Arc::clone(&handle);
        scope.spawn(move || {
            for i in 0..rounds {
                let sim = (i % 10) as f64 / 10.0;
                writer
                    .mutate(|r| {
                        r.put_mapping(mapping("S1", "S2", MappingKind::Automatic, sim));
                        r.put_cube(cube("S1", "S2", &["Name"], sim));
                    })
                    .unwrap();
            }
        });
        for _ in 0..4 {
            let reader = std::sync::Arc::clone(&handle);
            scope.spawn(move || {
                for _ in 0..rounds {
                    let repo = reader.read();
                    let mappings = repo.mappings_between("S1", "S2");
                    let cubes = repo.cubes_for("S1", "S2");
                    assert!(mappings.len() <= 1, "keyed replace: never duplicated");
                    assert_eq!(mappings.len(), cubes.len(), "snapshot must be consistent");
                    if let (Some(m), Some(c)) = (mappings.first(), cubes.first()) {
                        // The writer stores mapping and cube with the same
                        // similarity in one mutation; a torn read would
                        // disagree.
                        assert_eq!(m.correspondences[0].similarity, c.values[0]);
                    }
                }
            });
        }
    });
    assert_eq!(handle.read().mappings().len(), 1);
}
