//! Cross-crate integration tests: the full COMA pipeline from schema
//! import through match processing to quality evaluation.

use coma::core::{Coma, MatchContext, MatchStrategy};
use coma::eval::{Corpus, MatchQuality, TASKS};
use coma::graph::PathSet;
use coma::repo::MappingKind;
use std::collections::BTreeSet;

fn paper_schemas() -> (coma::graph::Schema, coma::graph::Schema) {
    let po1 = coma::sql::import_ddl(
        "CREATE TABLE PO1.ShipTo (
             poNo INT, custNo INT REFERENCES PO1.Customer,
             shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
             PRIMARY KEY (poNo));
         CREATE TABLE PO1.Customer (
             custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
             custCity VARCHAR(200), custZip VARCHAR(20), PRIMARY KEY (custNo));",
        "PO1",
    )
    .expect("PO1 imports");
    let po2 = coma::xml::import_xsd(
        r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
             <xsd:complexType name="PO2"><xsd:sequence>
               <xsd:element name="DeliverTo" type="Address"/>
               <xsd:element name="BillTo" type="Address"/>
             </xsd:sequence></xsd:complexType>
             <xsd:complexType name="Address"><xsd:sequence>
               <xsd:element name="Street" type="xsd:string"/>
               <xsd:element name="City" type="xsd:string"/>
               <xsd:element name="Zip" type="xsd:decimal"/>
             </xsd:sequence></xsd:complexType>
           </xsd:schema>"#,
        "PO2",
    )
    .expect("PO2 imports");
    (po1, po2)
}

fn po_coma() -> Coma {
    let mut coma = Coma::new();
    coma.aux_mut().synonyms = coma::core::matchers::synonym::SynonymTable::purchase_order();
    coma
}

#[test]
fn figure_1_pipeline_produces_the_section_3_candidate() {
    let (po1, po2) = paper_schemas();
    let coma = po_coma();
    let outcome = coma
        .match_schemas(
            &po1,
            &po2,
            &MatchStrategy::with_matchers(["TypeName", "NamePath"]),
        )
        .expect("match runs");
    let p1 = PathSet::new(&po1).expect("paths");
    let p2 = PathSet::new(&po2).expect("paths");
    let ship_city = p1
        .find_by_full_name(&po1, "PO1.ShipTo.shipToCity")
        .expect("path");
    let city = p2
        .find_by_full_name(&po2, "PO2.DeliverTo.Address.City")
        .expect("path");
    assert!(outcome.result.contains(ship_city, city));
}

#[test]
fn match_results_are_deterministic() {
    let (po1, po2) = paper_schemas();
    let coma = po_coma();
    let strategy = MatchStrategy::paper_default();
    let a = coma.match_schemas(&po1, &po2, &strategy).expect("run a");
    let b = coma.match_schemas(&po1, &po2, &strategy).expect("run b");
    assert_eq!(a.result, b.result);
    assert_eq!(a.cube, b.cube);
}

#[test]
fn stored_results_power_reuse_on_a_new_task() {
    let corpus = Corpus::load();
    let mut coma = Coma::new();
    *coma.aux_mut() = corpus.aux().clone();
    // Confirmed mappings for 1↔2 and 2↔3 enable composing 1↔3 via 2.
    coma.repository_mut().put_mapping(corpus.gold_mapping(0, 1));
    coma.repository_mut().put_mapping(corpus.gold_mapping(1, 2));
    let outcome = coma
        .match_schemas(
            corpus.schema(0),
            corpus.schema(2),
            &MatchStrategy::with_matchers(["SchemaM"]),
        )
        .expect("reuse match runs");
    assert!(!outcome.result.is_empty());
    // Every proposed pair must come from the composition, i.e. have both
    // sides in the pivot mappings' vocabulary.
    let gold = corpus.gold_names(0, 2);
    let proposed: BTreeSet<(String, String)> = outcome
        .result
        .candidates
        .iter()
        .map(|c| {
            (
                corpus.path_set(0).full_name(corpus.schema(0), c.source),
                corpus.path_set(2).full_name(corpus.schema(2), c.target),
            )
        })
        .collect();
    let q = MatchQuality::compare(&gold, &proposed);
    assert!(q.precision() > 0.8, "reuse precision {:.2}", q.precision());
    assert!(q.recall() > 0.5, "reuse recall {:.2}", q.recall());
}

#[test]
fn repository_roundtrip_preserves_match_state() {
    let (po1, po2) = paper_schemas();
    let mut coma = po_coma();
    coma.match_and_store(&po1, &po2, &MatchStrategy::paper_default())
        .expect("match and store");
    let json = coma.repository().to_json().expect("serializes");
    let reloaded = coma::repo::Repository::from_json(&json).expect("deserializes");
    assert_eq!(reloaded.schema_count(), 2);
    assert_eq!(reloaded.mappings().len(), 1);
    assert_eq!(reloaded.cubes_for("PO1", "PO2").len(), 1);
    assert_eq!(reloaded.mappings()[0].kind, MappingKind::Automatic);
    // The stored schema is structurally identical to the imported one.
    assert_eq!(reloaded.schema("PO1").expect("stored"), &po1);
}

#[test]
fn corpus_tasks_run_under_default_strategy_with_positive_overall() {
    let corpus = Corpus::load();
    let mut coma = Coma::new();
    *coma.aux_mut() = corpus.aux().clone();
    let strategy = MatchStrategy::paper_default();
    let mut overall_sum = 0.0;
    for (i, j) in TASKS {
        let outcome = coma
            .match_schemas(corpus.schema(i), corpus.schema(j), &strategy)
            .expect("task runs");
        let ctx = MatchContext::new(
            corpus.schema(i),
            corpus.schema(j),
            corpus.path_set(i),
            corpus.path_set(j),
            coma.aux(),
        );
        let proposed: BTreeSet<(String, String)> = outcome
            .result
            .candidates
            .iter()
            .map(|c| {
                (
                    ctx.source_paths.full_name(ctx.source, c.source),
                    ctx.target_paths.full_name(ctx.target, c.target),
                )
            })
            .collect();
        let q = MatchQuality::compare(&corpus.gold_names(i, j), &proposed);
        overall_sum += q.overall();
    }
    let avg = overall_sum / TASKS.len() as f64;
    assert!(
        avg > 0.2,
        "default operation too weak: avg overall {avg:.2}"
    );
}

#[test]
fn schema_similarity_step_3_runs_on_full_results() {
    let (po1, po2) = paper_schemas();
    let coma = po_coma();
    let outcome = coma
        .match_schemas(&po1, &po2, &MatchStrategy::paper_default())
        .expect("match runs");
    let sim = outcome.result.schema_similarity.expect("computed");
    assert!((0.0..=1.0).contains(&sim));
    assert!(sim > 0.2, "PO1/PO2 are clearly related: {sim}");
}
