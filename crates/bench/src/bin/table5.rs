//! Regenerates Table 5 of the paper: the characteristics of the five test
//! schemas. The corpus is synthesized (see DESIGN.md), so these statistics
//! must — and do — match the paper exactly.

use coma_eval::experiment::report::render_table;
use coma_eval::{Corpus, SCHEMA_NAMES};

fn main() {
    let corpus = Corpus::load();
    let paper = [
        (4, 40, 40, 7, 7, 33, 33),
        (4, 35, 54, 9, 12, 26, 42),
        (4, 46, 65, 8, 11, 38, 54),
        (6, 74, 80, 11, 12, 63, 68),
        (5, 80, 145, 23, 29, 57, 116),
    ];
    println!("Table 5 — characteristics of test schemas (measured = paper)\n");
    let mut rows = Vec::new();
    for i in 0..5 {
        let st = corpus.stats(i);
        let p = paper[i];
        rows.push(vec![
            format!("{} ({})", i + 1, SCHEMA_NAMES[i]),
            format!("{} ({})", st.max_depth, p.0),
            format!("{}/{} ({}/{})", st.nodes, st.paths, p.1, p.2),
            format!("{}/{} ({}/{})", st.inner_nodes, st.inner_paths, p.3, p.4),
            format!("{}/{} ({}/{})", st.leaf_nodes, st.leaf_paths, p.5, p.6),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Schema",
                "Max depth (paper)",
                "#Nodes/paths (paper)",
                "#Inner nodes/paths (paper)",
                "#Leaf nodes/paths (paper)",
            ],
            &rows
        )
    );
}
