/// Levenshtein edit distance: the minimum number of single-character
/// insertions, deletions and substitutions transforming `a` into `b`.
/// Comparison is case-insensitive (names differing only in case are equal
/// for matching purposes).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row dynamic program.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit-distance similarity.
///
/// "String similarity is computed from the number of edit operations
/// necessary to transform one string to another one (the Levenshtein
/// metric)" (paper, Section 4.1):
///
/// ```text
/// sim(a, b) = 1 − dist(a, b) / max(|a|, |b|)
/// ```
///
/// ```
/// use coma_strings::edit_distance_similarity;
/// assert_eq!(edit_distance_similarity("city", "city"), 1.0);
/// assert!(edit_distance_similarity("street", "strasse") < 0.6);
/// ```
pub fn edit_distance_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", ""), 0);
    }

    #[test]
    fn case_insensitive_distance() {
        assert_eq!(edit_distance("City", "city"), 0);
    }

    #[test]
    fn similarity_normalises_by_longer_string() {
        // dist("ab", "abcd") = 2, max len 4 → 0.5
        assert!((edit_distance_similarity("ab", "abcd") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_of_equal_strings_is_1() {
        assert_eq!(edit_distance_similarity("custNo", "custNo"), 1.0);
        assert_eq!(edit_distance_similarity("", ""), 1.0);
    }

    #[test]
    fn similarity_of_disjoint_strings_is_0() {
        assert_eq!(edit_distance_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn unicode_is_counted_by_chars_not_bytes() {
        assert_eq!(edit_distance("straße", "strasse"), 2);
        assert!(edit_distance_similarity("straße", "strasse") > 0.7);
    }
}
