//! Ablation: the Weighted aggregation strategy the paper's sweep excluded
//! ("we did not want to make any assumption about the importance of the
//! individual matchers", Section 7.1). Sweeps the relative weight of
//! NamePath — the best single matcher — within the All combination.

use coma_core::{Aggregation, CombinedSim, Direction, Selection};
use coma_eval::experiment::grid::SeriesSpec;
use coma_eval::experiment::report::render_table;
use coma_eval::experiment::{Harness, HYBRIDS};

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();
    let matchers: Vec<String> = HYBRIDS.iter().map(|m| m.to_string()).collect();
    let name_path_slot = HYBRIDS
        .iter()
        .position(|&m| m == "NamePath")
        .expect("NamePath in HYBRIDS");

    println!("Weighted-aggregation ablation on All (Both, Thr(0.5)+Delta(0.02))\n");
    let mut rows = Vec::new();
    for w in [0.5, 1.0, 2.0, 3.0, 5.0] {
        let mut weights = vec![1.0; HYBRIDS.len()];
        weights[name_path_slot] = w;
        let spec = SeriesSpec {
            matchers: matchers.clone(),
            aggregation: Aggregation::Weighted(weights),
            direction: Direction::Both,
            selection: Selection::delta(0.02).with_threshold(0.5),
            combined_sim: CombinedSim::Average,
            reuse: false,
        };
        let result = harness.evaluate(&spec);
        rows.push(vec![
            format!("NamePath x{w}"),
            format!("{:.3}", result.average.precision),
            format!("{:.3}", result.average.recall),
            format!("{:.3}", result.average.overall),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Weights", "avg Precision", "avg Recall", "avg Overall"],
            &rows
        )
    );
    println!("NamePath x1 equals the paper's Average aggregation. Up-weighting the");
    println!("most precise matcher trades recall for precision.");
}
