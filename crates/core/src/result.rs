use crate::matchers::context::MatchContext;
use coma_graph::PathId;
use coma_repo::{Mapping, MappingKind};
use serde::{Deserialize, Serialize};

/// One proposed correspondence of a match result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchCandidate {
    /// Source element (path in S1).
    pub source: PathId,
    /// Target element (path in S2).
    pub target: PathId,
    /// Combined similarity in `[0, 1]`.
    pub similarity: f64,
}

/// The result of a match operation: "a set of mapping elements specifying
/// the matching schema elements together with a similarity value"
/// (Section 3), plus the optional schema similarity of step 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Name of the source schema S1.
    pub source_schema: String,
    /// Name of the target schema S2.
    pub target_schema: String,
    /// The proposed correspondences, sorted by (source, target).
    pub candidates: Vec<MatchCandidate>,
    /// Number of S1 elements (`m`) — needed for schema similarity.
    pub source_size: usize,
    /// Number of S2 elements (`n`).
    pub target_size: usize,
    /// The combined schema similarity, when computed.
    pub schema_similarity: Option<f64>,
}

impl MatchResult {
    /// Builds a result from selected matrix pairs `(i, j, sim)` — the one
    /// construction path shared by the combination pipeline and the plan
    /// engine's operators.
    pub fn from_pairs(
        ctx: &MatchContext<'_>,
        pairs: Vec<(usize, usize, f64)>,
        schema_similarity: Option<f64>,
    ) -> MatchResult {
        MatchResult {
            source_schema: ctx.source.name().to_string(),
            target_schema: ctx.target.name().to_string(),
            candidates: pairs
                .into_iter()
                .map(|(i, j, similarity)| MatchCandidate {
                    source: ctx.source_elem(i),
                    target: ctx.target_elem(j),
                    similarity,
                })
                .collect(),
            source_size: ctx.rows(),
            target_size: ctx.cols(),
            schema_similarity,
        }
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the result proposes nothing.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Whether the pair is proposed.
    pub fn contains(&self, source: PathId, target: PathId) -> bool {
        self.candidates
            .iter()
            .any(|c| c.source == source && c.target == target)
    }

    /// The similarity of a proposed pair, if present.
    pub fn similarity_of(&self, source: PathId, target: PathId) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.source == source && c.target == target)
            .map(|c| c.similarity)
    }

    /// Converts the result into the repository's relational representation
    /// (full-name keyed), ready for storage and later reuse.
    pub fn to_mapping(&self, ctx: &MatchContext<'_>, kind: MappingKind) -> Mapping {
        let mut mapping = Mapping::new(&self.source_schema, &self.target_schema, kind);
        for c in &self.candidates {
            mapping.push(
                ctx.source_paths.full_name(ctx.source, c.source),
                ctx.target_paths.full_name(ctx.target, c.target),
                c.similarity,
            );
        }
        mapping
    }
}
