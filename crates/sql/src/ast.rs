//! Abstract syntax for the supported DDL subset.

/// A parsed `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Optional schema qualifier (`PO1` in `PO1.ShipTo`).
    pub schema: Option<String>,
    /// Table name.
    pub name: String,
    /// Column definitions in source order.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints in source order.
    pub constraints: Vec<TableConstraint>,
}

impl CreateTable {
    /// The qualified name (`schema.table` or just `table`).
    pub fn qualified_name(&self) -> String {
        match &self.schema {
            Some(s) => format!("{s}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type as written, including arguments (`VARCHAR(200)`).
    pub sql_type: String,
    /// Whether `NOT NULL` was specified.
    pub not_null: bool,
    /// Whether the column is (part of) the primary key.
    pub primary_key: bool,
    /// Referenced table from a column-level `REFERENCES` clause.
    pub references: Option<String>,
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (col, …)`.
    PrimaryKey(Vec<String>),
    /// `FOREIGN KEY (col, …) REFERENCES table [(col, …)]`.
    ForeignKey {
        /// Local columns of the foreign key.
        columns: Vec<String>,
        /// Referenced table (possibly schema-qualified).
        table: String,
    },
    /// `UNIQUE (col, …)`.
    Unique(Vec<String>),
}
