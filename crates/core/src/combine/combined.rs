use super::selection::DirectedCandidates;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Step 3: computation of a single combined similarity for two element sets
/// from their directional match candidates (paper, Section 6.3, Figure 7).
///
/// Used by hybrid matchers (token sets, child sets, leaf sets) and for the
/// schema similarity of complete match results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CombinedSim {
    /// "The average similarity is determined by dividing the sum of the
    /// similarity values of all match candidates of both sets S1 and S2 by
    /// the total number of set elements, |S1|+|S2|."
    Average,
    /// "The ratio of the number of elements which can be matched over the
    /// total number of set elements" — the Dice coefficient; more
    /// optimistic because individual similarities do not matter.
    Dice,
}

impl CombinedSim {
    /// Computes the combined similarity from directional candidates over
    /// sets of `m` source and `n` target elements.
    ///
    /// Both directional lists contribute (Figure 7 sums three candidates
    /// from S1→S2 and three from S2→S1 over |S1|+|S2| = 7). For a
    /// directional selection where only one side was computed, the present
    /// side simply contributes alone.
    pub fn compute(self, candidates: &DirectedCandidates, m: usize, n: usize) -> f64 {
        if m + n == 0 {
            return 1.0;
        }
        match self {
            CombinedSim::Average => {
                let mut sum = 0.0;
                if let Some(ft) = &candidates.for_targets {
                    sum += ft.iter().flatten().map(|&(_, s)| s).sum::<f64>();
                }
                if let Some(fs) = &candidates.for_sources {
                    sum += fs.iter().flatten().map(|&(_, s)| s).sum::<f64>();
                }
                (sum / (m + n) as f64).clamp(0.0, 1.0)
            }
            CombinedSim::Dice => {
                let mut matched_sources: BTreeSet<usize> = BTreeSet::new();
                let mut matched_targets: BTreeSet<usize> = BTreeSet::new();
                if let Some(ft) = &candidates.for_targets {
                    for (j, cands) in ft.iter().enumerate() {
                        if !cands.is_empty() {
                            matched_targets.insert(j);
                        }
                        for &(i, _) in cands {
                            matched_sources.insert(i);
                        }
                    }
                }
                if let Some(fs) = &candidates.for_sources {
                    for (i, cands) in fs.iter().enumerate() {
                        if !cands.is_empty() {
                            matched_sources.insert(i);
                        }
                        for &(j, _) in cands {
                            matched_targets.insert(j);
                        }
                    }
                }
                ((matched_sources.len() + matched_targets.len()) as f64 / (m + n) as f64)
                    .clamp(0.0, 1.0)
            }
        }
    }
}

/// The allocation-free `Both`/`Max1` pipeline over an `m × n` similarity
/// lookup: per column the best row (strictly greater wins, first index
/// takes ties — [`best_of`]'s rule), per row the best column, folded into
/// the combined similarity with exactly the accumulation order of
/// [`DirectedCandidates::select`] + [`CombinedSim::compute`]. Shared by
/// the structural matchers' per-cell set similarity and the name engine's
/// token-set combination — the two hottest inner loops of a match task.
/// Callers pass pre-clamped lookups (mirroring the `SimMatrix::set` clamp
/// of the materialized formulation).
///
/// [`best_of`]: super::selection
pub(crate) fn max1_both_combined(
    m: usize,
    n: usize,
    lookup: impl Fn(usize, usize) -> f64,
    combined: CombinedSim,
) -> f64 {
    let best_for_col = |j: usize| -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for i in 0..m {
            let v = lookup(i, j);
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    };
    let best_for_row = |i: usize| -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for j in 0..n {
            let v = lookup(i, j);
            if v > best.1 {
                best = (j, v);
            }
        }
        best
    };
    match combined {
        CombinedSim::Average => {
            // Two separate accumulators, then one add — the exact fold
            // shape of `CombinedSim::Average` over the two directional
            // candidate lists.
            let mut ft_sum = 0.0;
            for j in 0..n {
                let (_, v) = best_for_col(j);
                if v > 0.0 {
                    ft_sum += v;
                }
            }
            let mut fs_sum = 0.0;
            for i in 0..m {
                let (_, v) = best_for_row(i);
                if v > 0.0 {
                    fs_sum += v;
                }
            }
            ((ft_sum + fs_sum) / (m + n) as f64).clamp(0.0, 1.0)
        }
        CombinedSim::Dice => {
            let mut matched_src = vec![false; m];
            let mut matched_tgt = vec![false; n];
            for (j, tgt) in matched_tgt.iter_mut().enumerate() {
                let (i, v) = best_for_col(j);
                if v > 0.0 {
                    *tgt = true;
                    matched_src[i] = true;
                }
            }
            for (i, src) in matched_src.iter_mut().enumerate() {
                let (j, v) = best_for_row(i);
                if v > 0.0 {
                    *src = true;
                    matched_tgt[j] = true;
                }
            }
            let matched = matched_src.iter().filter(|&&x| x).count()
                + matched_tgt.iter().filter(|&&x| x).count();
            (matched as f64 / (m + n) as f64).clamp(0.0, 1.0)
        }
    }
}

impl fmt::Display for CombinedSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombinedSim::Average => f.write_str("Average"),
            CombinedSim::Dice => f.write_str("Dice"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{Direction, Selection};
    use crate::cube::SimMatrix;

    /// Figure 7 of the paper: S1 = {s11..s14}, S2 = {s21..s23};
    /// S1→S2 candidates: (s13,s21,1.0), (s12,s22,0.8), (s11,s23,0.8);
    /// S2→S1 the mirror image. Average = 5.2/7 ≈ 0.74, Dice = 6/7 ≈ 0.86.
    fn figure7() -> DirectedCandidates {
        // 4 sources × 3 targets; build the matrix realizing those matches.
        let mut m = SimMatrix::new(4, 3);
        m.set(2, 0, 1.0); // s13 ↔ s21
        m.set(1, 1, 0.8); // s12 ↔ s22
        m.set(0, 2, 0.8); // s11 ↔ s23
        DirectedCandidates::select(&m, Direction::Both, &Selection::max_n(1))
    }

    #[test]
    fn figure_7_average() {
        let got = CombinedSim::Average.compute(&figure7(), 4, 3);
        assert!((got - 5.2 / 7.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn figure_7_dice() {
        let got = CombinedSim::Dice.compute(&figure7(), 4, 3);
        assert!((got - 6.0 / 7.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn dice_is_at_least_average() {
        // "Dice returns a higher similarity value than Average and thus is
        // more optimistic."
        let c = figure7();
        assert!(CombinedSim::Dice.compute(&c, 4, 3) >= CombinedSim::Average.compute(&c, 4, 3));
    }

    #[test]
    fn all_similarities_one_makes_them_equal() {
        // Footnote 1: with all element similarities 1.0, Average and Dice
        // yield the same schema similarity.
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let c = DirectedCandidates::select(&m, Direction::Both, &Selection::max_n(1));
        let avg = CombinedSim::Average.compute(&c, 2, 2);
        let dice = CombinedSim::Dice.compute(&c, 2, 2);
        assert_eq!(avg, dice);
        assert_eq!(avg, 1.0);
    }

    #[test]
    fn empty_sets_are_fully_similar() {
        let c = DirectedCandidates {
            for_targets: Some(Vec::new()),
            for_sources: Some(Vec::new()),
        };
        assert_eq!(CombinedSim::Average.compute(&c, 0, 0), 1.0);
    }

    #[test]
    fn no_matches_gives_zero() {
        let m = SimMatrix::new(2, 2);
        let c = DirectedCandidates::select(&m, Direction::Both, &Selection::max_n(1));
        assert_eq!(CombinedSim::Average.compute(&c, 2, 2), 0.0);
        assert_eq!(CombinedSim::Dice.compute(&c, 2, 2), 0.0);
    }
}
