//! Conversion of parsed DDL into COMA's graph representation (Figure 1a/b
//! of the paper): a root named after the schema, one inner node per table,
//! one typed leaf per column, and referential links for foreign keys.

use crate::ast::TableConstraint;
use crate::error::{Result, SqlError};
use crate::parser::parse_ddl;
use coma_graph::{DataType, Node, NodeId, Schema, SchemaBuilder};
use std::collections::HashMap;

/// Parses DDL text and imports it as a COMA schema named `name`.
///
/// ```
/// let schema = coma_sql::import_ddl(
///     "CREATE TABLE PO1.Customer (custNo INT, custCity VARCHAR(200));",
///     "PO1",
/// ).unwrap();
/// assert_eq!(schema.node(schema.root()).name, "PO1");
/// assert_eq!(schema.node_count(), 4); // root, Customer, custNo, custCity
/// ```
pub fn import_ddl(input: &str, name: &str) -> Result<Schema> {
    let tables = parse_ddl(input)?;
    if tables.is_empty() {
        return Err(SqlError::semantic("no CREATE TABLE statements found"));
    }

    let mut builder = SchemaBuilder::new(name);
    let root = builder.add_node(Node::new(name.to_string()));

    // First pass: tables and columns.
    let mut table_nodes: HashMap<String, NodeId> = HashMap::new();
    let mut column_nodes: HashMap<(String, String), NodeId> = HashMap::new();
    for table in &tables {
        let qualified = table.qualified_name();
        if table_nodes.contains_key(&qualified) {
            return Err(SqlError::semantic(format!("duplicate table `{qualified}`")));
        }
        let t_node =
            builder.add_node(Node::new(table.name.clone()).with_type_name("TABLE".to_string()));
        builder.add_child(root, t_node)?;
        table_nodes.insert(qualified.clone(), t_node);
        // Unqualified alias for REFERENCES without schema prefix.
        table_nodes.entry(table.name.clone()).or_insert(t_node);

        for col in &table.columns {
            let c_node = builder.add_node(
                Node::new(col.name.clone())
                    .with_datatype(DataType::from_sql(&col.sql_type))
                    .with_type_name(col.sql_type.clone()),
            );
            builder.add_child(t_node, c_node)?;
            column_nodes.insert((qualified.clone(), col.name.to_lowercase()), c_node);
        }
    }

    // Second pass: referential links.
    for table in &tables {
        let qualified = table.qualified_name();
        for col in &table.columns {
            if let Some(target) = &col.references {
                let to = resolve_table(&table_nodes, target).ok_or_else(|| {
                    SqlError::semantic(format!(
                        "column `{}` references unknown table `{target}`",
                        col.name
                    ))
                })?;
                let from = column_nodes[&(qualified.clone(), col.name.to_lowercase())];
                builder.add_reference(from, to, Some(format!("fk:{}", col.name)))?;
            }
        }
        for constraint in &table.constraints {
            if let TableConstraint::ForeignKey {
                columns,
                table: target,
            } = constraint
            {
                let to = resolve_table(&table_nodes, target).ok_or_else(|| {
                    SqlError::semantic(format!("FOREIGN KEY references unknown table `{target}`"))
                })?;
                for col in columns {
                    let from = column_nodes
                        .get(&(qualified.clone(), col.to_lowercase()))
                        .copied()
                        .ok_or_else(|| {
                            SqlError::semantic(format!("FOREIGN KEY names unknown column `{col}`"))
                        })?;
                    builder.add_reference(from, to, Some(format!("fk:{col}")))?;
                }
            }
        }
    }

    Ok(builder.build()?)
}

fn resolve_table(tables: &HashMap<String, NodeId>, name: &str) -> Option<NodeId> {
    tables
        .get(name)
        .or_else(|| name.split('.').next_back().and_then(|n| tables.get(n)))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_graph::{PathSet, SchemaStats};

    const PO1_DDL: &str = r#"
CREATE TABLE PO1.ShipTo (
    poNo INT,
    custNo INT REFERENCES PO1.Customer,
    shipToStreet VARCHAR(200),
    shipToCity VARCHAR(200),
    shipToZip VARCHAR(20),
    PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
    custNo INT,
    custName VARCHAR(200),
    custStreet VARCHAR(200),
    custCity VARCHAR(200),
    custZip VARCHAR(20),
    PRIMARY KEY (custNo)
);"#;

    #[test]
    fn po1_import_matches_figure_1() {
        let s = import_ddl(PO1_DDL, "PO1").unwrap();
        let ps = PathSet::new(&s).unwrap();
        let st = SchemaStats::compute(&s, &ps);
        // Figure 1b: root PO1, tables ShipTo and Customer, 5 columns each.
        assert_eq!(st.nodes, 13);
        assert_eq!(st.paths, 13);
        assert_eq!(st.max_depth, 3);
        assert_eq!(st.leaf_nodes, 10);
        assert!(ps.find_by_full_name(&s, "PO1.ShipTo.shipToCity").is_some());
        assert!(ps.find_by_full_name(&s, "PO1.Customer.custCity").is_some());
        // One referential link: custNo → Customer.
        assert_eq!(s.references().len(), 1);
        let r = &s.references()[0];
        assert_eq!(s.node(r.from).name, "custNo");
        assert_eq!(s.node(r.to).name, "Customer");
    }

    #[test]
    fn column_types_map_to_generic_datatypes() {
        let s = import_ddl(PO1_DDL, "PO1").unwrap();
        let ps = PathSet::new(&s).unwrap();
        let po_no = ps.find_by_full_name(&s, "PO1.ShipTo.poNo").unwrap();
        assert_eq!(s.node(ps.node_of(po_no)).datatype, Some(DataType::Integer));
        let city = ps.find_by_full_name(&s, "PO1.ShipTo.shipToCity").unwrap();
        assert_eq!(s.node(ps.node_of(city)).datatype, Some(DataType::Text));
        assert_eq!(
            s.node(ps.node_of(city)).type_name.as_deref(),
            Some("VARCHAR(200)")
        );
    }

    #[test]
    fn table_level_foreign_keys_create_references() {
        let s = import_ddl(
            "CREATE TABLE a (x INT, FOREIGN KEY (x) REFERENCES b);
             CREATE TABLE b (y INT PRIMARY KEY);",
            "S",
        )
        .unwrap();
        assert_eq!(s.references().len(), 1);
    }

    #[test]
    fn duplicate_tables_rejected() {
        let err = import_ddl("CREATE TABLE t (a INT); CREATE TABLE t (b INT);", "S").unwrap_err();
        assert!(matches!(err, SqlError::Semantic { .. }));
    }

    #[test]
    fn unknown_reference_rejected() {
        let err = import_ddl("CREATE TABLE t (a INT REFERENCES nope);", "S").unwrap_err();
        assert!(matches!(err, SqlError::Semantic { .. }));
    }

    #[test]
    fn empty_ddl_rejected() {
        assert!(import_ddl("", "S").is_err());
    }
}
