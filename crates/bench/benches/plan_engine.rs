//! Benchmarks of the plan engine against the legacy sequential pipeline on
//! the evaluation corpus's largest match task: the flat `All` strategy
//! executed sequentially (legacy), through the engine (parallel fan-out +
//! memoized shared work), and as a two-stage filter→refine plan.

use coma_core::{
    Coma, EngineConfig, MatchContext, MatchPlan, MatchStrategy, PlanEngine, Selection,
};
use coma_eval::{Corpus, TASKS};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_plan_engine(c: &mut Criterion) {
    let corpus = Corpus::load();
    let mut coma = Coma::new();
    *coma.aux_mut() = corpus.aux().clone();
    let strategy = MatchStrategy::paper_default();

    // The corpus's largest task by pair-space size.
    let &(i, j) = TASKS
        .iter()
        .max_by_key(|&&(i, j)| corpus.path_set(i).len() * corpus.path_set(j).len())
        .expect("corpus has tasks");
    let ctx = MatchContext::new(
        corpus.schema(i),
        corpus.schema(j),
        corpus.path_set(i),
        corpus.path_set(j),
        coma.aux(),
    );

    let mut group = c.benchmark_group("plan_engine");
    group.sample_size(10);

    group.bench_function("all_legacy_sequential", |b| {
        b.iter(|| {
            let cube = coma
                .execute_matchers(black_box(&ctx), &strategy.matchers)
                .unwrap();
            black_box(coma.combine_cube(&cube, &ctx, &strategy.combination))
        })
    });

    let flat = MatchPlan::from(&strategy);
    group.bench_function("all_engine", |b| {
        b.iter(|| {
            black_box(
                PlanEngine::new(coma.library())
                    .execute(black_box(&ctx), &flat)
                    .unwrap(),
            )
        })
    });
    group.bench_function("all_engine_serial", |b| {
        b.iter(|| {
            black_box(
                PlanEngine::with_config(
                    coma.library(),
                    EngineConfig::default().with_parallel(false),
                )
                .execute(black_box(&ctx), &flat)
                .unwrap(),
            )
        })
    });

    let two_stage =
        MatchPlan::two_stage(["Name"], Selection::max_n(6).with_threshold(0.3), &strategy);
    group.bench_function("two_stage_filter_refine", |b| {
        b.iter(|| {
            black_box(
                PlanEngine::new(coma.library())
                    .execute(black_box(&ctx), &two_stage)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plan_engine);
criterion_main!(benches);
