/// Splits an element name into lower-cased tokens.
///
/// The hybrid `Name` matcher "performs some pre-processing steps, in
/// particular a tokenization to derive a set of components (tokens) of a
/// name, e.g. `POShipTo → {PO, Ship, To}`" (paper, Section 4.2).
///
/// Token boundaries are:
/// * non-alphanumeric delimiters (`_`, `-`, `.`, `/`, whitespace, …),
/// * lower→upper camelCase transitions (`shipTo → ship | To`),
/// * acronym→word transitions (`POShip → PO | Ship`),
/// * letter↔digit transitions (`address2 → address | 2`).
///
/// Tokens are returned lower-cased; the original casing only drives the
/// splitting.
///
/// ```
/// use coma_strings::tokenize;
/// assert_eq!(tokenize("POShipTo"), vec!["po", "ship", "to"]);
/// assert_eq!(tokenize("ship_to-street2"), vec!["ship", "to", "street", "2"]);
/// ```
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = name.chars().collect();
    let mut current = String::new();

    for i in 0..chars.len() {
        let c = chars[i];
        if !c.is_alphanumeric() {
            flush(&mut tokens, &mut current);
            continue;
        }
        if !current.is_empty() {
            let prev = chars[i - 1];
            let boundary =
                // lower → Upper: shipTo
                (prev.is_lowercase() && c.is_uppercase())
                // letter ↔ digit
                || (prev.is_alphabetic() && c.is_numeric())
                || (prev.is_numeric() && c.is_alphabetic())
                // acronym end: "POShip" = P O S(hip): upper followed by
                // upper+lower starts a new word at the second upper.
                || (prev.is_uppercase()
                    && c.is_uppercase()
                    && chars.get(i + 1).is_some_and(|n| n.is_lowercase()));
            if boundary {
                flush(&mut tokens, &mut current);
            }
        }
        current.extend(c.to_lowercase());
    }
    flush(&mut tokens, &mut current);
    tokens
}

fn flush(tokens: &mut Vec<String>, current: &mut String) {
    if !current.is_empty() {
        tokens.push(std::mem::take(current));
    }
}

/// Lower-cases and strips non-alphanumeric characters — the normal form
/// used for dictionary lookups (synonyms, abbreviations).
pub fn normalize_token(token: &str) -> String {
    token
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_po_ship_to() {
        assert_eq!(tokenize("POShipTo"), vec!["po", "ship", "to"]);
    }

    #[test]
    fn camel_case_splits() {
        assert_eq!(tokenize("shipToCity"), vec!["ship", "to", "city"]);
        assert_eq!(tokenize("custName"), vec!["cust", "name"]);
    }

    #[test]
    fn delimiters_split() {
        assert_eq!(tokenize("ship_to_city"), vec!["ship", "to", "city"]);
        assert_eq!(tokenize("ship-to.city"), vec!["ship", "to", "city"]);
        assert_eq!(tokenize("  ship  to "), vec!["ship", "to"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(tokenize("address2"), vec!["address", "2"]);
        assert_eq!(tokenize("PO2Box"), vec!["po", "2", "box"]);
    }

    #[test]
    fn acronym_followed_by_word() {
        assert_eq!(tokenize("XMLSchema"), vec!["xml", "schema"]);
        assert_eq!(tokenize("CIDXOrder"), vec!["cidx", "order"]);
    }

    #[test]
    fn all_caps_is_single_token() {
        assert_eq!(tokenize("CIDX"), vec!["cidx"]);
    }

    #[test]
    fn empty_and_symbol_only_names() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("__--__").is_empty());
    }

    #[test]
    fn normalize_strips_and_lowers() {
        assert_eq!(normalize_token("Ship-To"), "shipto");
        assert_eq!(normalize_token("NO."), "no");
    }
}
