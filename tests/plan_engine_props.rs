//! Property tests for the plan engine: for any flat matcher list and any
//! combination strategy, the engine's execution of the equivalent
//! one-stage plan is bit-identical to the legacy sequential pipeline, and
//! `Par` leaf order never changes results (determinism under parallelism).

use coma::core::{
    Aggregation, Coma, CombinationStrategy, CombinedSim, Direction, MatchContext, MatchPlan,
    PlanEngine, Selection,
};
use coma::graph::{PathSet, Schema};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The matcher pool property cases draw subsets from: the five hybrids
/// plus three simple matchers.
const POOL: [&str; 8] = [
    "Name", "NamePath", "TypeName", "Children", "Leaves", "Trigram", "DataType", "Synonym",
];

struct Fixture {
    coma: Coma,
    source: Schema,
    target: Schema,
    source_paths: PathSet,
    target_paths: PathSet,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let source = coma::sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (
                 poNo INT,
                 custNo INT REFERENCES PO1.Customer,
                 shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
                 PRIMARY KEY (poNo));
             CREATE TABLE PO1.Customer (
                 custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
                 custCity VARCHAR(200), custZip VARCHAR(20),
                 PRIMARY KEY (custNo));",
            "PO1",
        )
        .unwrap();
        let target = coma::xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap();
        let mut coma = Coma::new();
        coma.aux_mut().synonyms = coma::core::matchers::synonym::SynonymTable::purchase_order();
        let source_paths = PathSet::new(&source).unwrap();
        let target_paths = PathSet::new(&target).unwrap();
        Fixture {
            coma,
            source,
            target,
            source_paths,
            target_paths,
        }
    })
}

/// Decodes a non-zero bitmask into a matcher subset.
fn subset(mask: usize) -> Vec<String> {
    POOL.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, name)| name.to_string())
        .collect()
}

/// Decodes the generated knobs into a combination strategy. `k` is the
/// slice count (for Weighted aggregation's per-slice weights).
#[allow(clippy::too_many_arguments)]
fn combination(
    k: usize,
    agg: usize,
    dir: usize,
    max_n: usize,
    flags: usize,
    delta: f64,
    threshold: f64,
    comb: usize,
) -> CombinationStrategy {
    CombinationStrategy {
        aggregation: match agg {
            0 => Aggregation::Max,
            1 => Aggregation::Min,
            2 => Aggregation::Average,
            _ => Aggregation::Weighted((1..=k).map(|w| w as f64).collect()),
        },
        direction: match dir {
            0 => Direction::LargeSmall,
            1 => Direction::SmallLarge,
            _ => Direction::Both,
        },
        selection: Selection {
            max_n: (max_n > 0).then_some(max_n),
            delta: (flags & 1 != 0).then_some(delta),
            threshold: (flags & 2 != 0).then_some(threshold),
        },
        combined_sim: if comb == 0 {
            CombinedSim::Average
        } else {
            CombinedSim::Dice
        },
    }
}

proptest! {
    /// Engine execution of `MatchPlan::from(strategy)` is bit-identical to
    /// the legacy sequential pipeline — combined result and cube alike.
    #[test]
    fn flat_plans_reproduce_the_legacy_pipeline(
        mask in 1usize..256,
        agg in 0usize..4,
        dir in 0usize..3,
        sel in (0usize..5, 0usize..4, 0.001f64..0.2, 0.05f64..0.9),
        comb in 0usize..2,
    ) {
        let f = fixture();
        let names = subset(mask);
        let (max_n, flags, delta, threshold) = sel;
        let strategy = combination(names.len(), agg, dir, max_n, flags, delta, threshold, comb);
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        )
        .with_repository(f.coma.repository());

        let legacy_cube = f.coma.execute_matchers(&ctx, &names).unwrap();
        let legacy_result = f.coma.combine_cube(&legacy_cube, &ctx, &strategy);

        let plan = MatchPlan::matchers_with(names, strategy);
        let outcome = PlanEngine::new(f.coma.library()).execute(&ctx, &plan).unwrap();

        prop_assert_eq!(&outcome.result, &legacy_result);
        prop_assert_eq!(outcome.final_cube().unwrap(), &legacy_cube);
    }

    /// `Par` sub-plan order never changes the aggregate result, and
    /// repeated executions are deterministic.
    #[test]
    fn par_leaf_order_is_irrelevant(
        mask in 1usize..256,
        agg in 0usize..3,
        dir in 0usize..3,
    ) {
        let f = fixture();
        let names = subset(mask);
        let strategy = combination(names.len(), agg, dir, 1, 2, 0.02, 0.3, 0);
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );

        let forward: Vec<MatchPlan> =
            names.iter().map(|n| MatchPlan::matchers([n.as_str()])).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let engine = PlanEngine::new(f.coma.library());

        let fwd = engine
            .execute(&ctx, &MatchPlan::par(forward, strategy.clone()))
            .unwrap();
        let rev = engine
            .execute(&ctx, &MatchPlan::par(reversed, strategy.clone()))
            .unwrap();
        prop_assert_eq!(&fwd.result, &rev.result);
        prop_assert_eq!(fwd.final_cube(), rev.final_cube());

        // Determinism: a re-run of the same plan is bit-identical.
        let again = engine
            .execute(&ctx, &MatchPlan::par(
                names.iter().map(|n| MatchPlan::matchers([n.as_str()])).collect::<Vec<_>>(),
                strategy,
            ))
            .unwrap();
        prop_assert_eq!(&fwd.result, &again.result);
    }
}
