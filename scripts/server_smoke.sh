#!/usr/bin/env bash
# CI smoke test of the matching service's persistence path: start
# coma-server on a temp unix socket with a file-backed store, drive one
# schema upload + match + store through the coma-cli client, shut the
# server down, start a *fresh* server process over the same store file,
# and verify the schemas and the stored mapping survived the restart
# (fetch + match by name, no re-upload). Any nonzero exit fails the job.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SOCKET="$WORK/coma.sock"
STORE="$WORK/repo.json"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SERVER=target/release/coma-server
CLI=target/release/coma-cli
[ -x "$SERVER" ] && [ -x "$CLI" ] || cargo build --release --locked

echo "== generation 1: store, match, persist =="
"$SERVER" --socket "$SOCKET" --store "$STORE" &
SERVER_PID=$!

"$CLI" --server "$SOCKET" put crates/eval/assets/cidx.xsd --name cidx
"$CLI" --server "$SOCKET" put crates/eval/assets/excel.xsd --name excel
"$CLI" --server "$SOCKET" match cidx excel --top-k 5 --store > "$WORK/first.tsv"
[ -s "$WORK/first.tsv" ] || { echo "FAIL: first match produced no correspondences"; exit 1; }
"$CLI" --server "$SOCKET" stats
"$CLI" --server "$SOCKET" shutdown
wait "$SERVER_PID"
SERVER_PID=""
[ -s "$STORE" ] || { echo "FAIL: store file $STORE is missing or empty"; exit 1; }

echo "== generation 2: reload the store, match by name =="
"$SERVER" --socket "$SOCKET" --store "$STORE" &
SERVER_PID=$!

"$CLI" --server "$SOCKET" list | grep -qx cidx || { echo "FAIL: cidx not reloaded"; exit 1; }
"$CLI" --server "$SOCKET" fetch excel
"$CLI" --server "$SOCKET" match cidx excel --top-k 5 > "$WORK/second.tsv"
diff "$WORK/first.tsv" "$WORK/second.tsv" \
    || { echo "FAIL: restarted server ranks the pair differently"; exit 1; }
"$CLI" --server "$SOCKET" shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "server smoke passed: persistence survives a restart"
