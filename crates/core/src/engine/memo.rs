//! Shared-work memoization for one plan execution.
//!
//! A [`MatchMemo`] lives for the duration of one [`PlanEngine`] run and
//! deduplicates the kinds of work that hybrid matchers and overlapping
//! sub-plans otherwise recompute:
//!
//! * **tokenizations** — the abbreviation-expanded token set of a name is
//!   independent of any matcher configuration, so one cache serves every
//!   name-based matcher;
//! * **name-pair similarities** — keyed per [`NameEngine`] configuration
//!   (its debug fingerprint), so `Name` and `TypeName` share results
//!   exactly when their engines agree;
//! * **per-matcher similarity matrices** — keyed by matcher name *and*
//!   instance identity, so `Children`/`Leaves` reuse the `TypeName` matrix
//!   the engine already computed (the standard library shares one
//!   `TypeName` instance for exactly this purpose) without ever conflating
//!   two differently-configured matchers that happen to share a name;
//! * **vocabulary inverted indexes** — the per-side token/q-gram posting
//!   structures behind `CandidateIndex` leaves, keyed by (side, gram
//!   length) so repeated candidate stages build each index once.
//!
//! Since PR 8 the memo is a **view over an [`EngineCache`]**: by default
//! ([`MatchMemo::new`]) the cache is private and dies with the memo —
//! exactly the old per-execution behavior — but a memo bound to a shared
//! cache ([`MatchMemo::scoped`], used by
//! [`PlanEngine::execute_cached`](super::PlanEngine::execute_cached))
//! reads and writes artifacts keyed by schema fingerprint, so repeat
//! traffic against a hot schema pair skips recomputation across plan
//! executions. Matrices of non-[`pure`](crate::Matcher::pure) matchers
//! (the reuse matchers, which read the repository) stay in a
//! memo-local store either way, so mutable state never leaks into the
//! shared cache.
//!
//! All caches use interior mutability and are safe to share across the
//! engine's worker threads; matrix entries are computed at most once even
//! under concurrency (via `OnceLock`).
//!
//! The streaming-fused pruning path (see
//! [`EngineConfig::fuse_pruning`](super::EngineConfig)) deliberately
//! bypasses the *matrix* cache — its whole point is never materializing a
//! full per-matcher matrix — but still shares the tokenization and
//! name-pair caches, so fused and unfused stages of one run never repeat
//! string work.
//!
//! [`PlanEngine`]: super::PlanEngine
//! [`NameEngine`]: crate::matchers::name_engine::NameEngine

use super::cache::{private_scope, EngineCache, PairScope, PairSims};
use super::index::VocabIndex;
use crate::cube::SimMatrix;
use crate::matchers::name_engine::NameEngine;
use crate::matchers::Matcher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A matrix slot computed at most once, keyed by (matcher name, instance
/// identity) — the memo-local store for non-`pure` matchers.
type LocalMatrixSlots = HashMap<(String, usize), Arc<OnceLock<Arc<SimMatrix>>>>;

/// Memoized shared work for one match task, shared by all matchers and
/// stages of a plan execution (attached to the context as
/// [`MatchContext::memo`](crate::MatchContext)) — a view over an
/// [`EngineCache`] scoped to this execution's schema pair.
pub struct MatchMemo {
    /// The backing cache: private by default, shared under
    /// [`PlanEngine::execute_cached`](super::PlanEngine::execute_cached).
    cache: Arc<EngineCache>,
    /// (source fingerprint, target fingerprint) of this execution.
    scope: PairScope,
    /// Matrices of matchers whose output depends on state beyond the
    /// schemas (reuse matchers): valid for this execution only.
    local_matrices: Mutex<LocalMatrixSlots>,
}

/// The identity of a matcher instance: the address of its (shared) `Arc`
/// allocation. Two `Arc` clones of the same matcher share an identity; two
/// separately constructed matchers never do, even under the same name.
pub fn matcher_identity(matcher: &Arc<dyn Matcher>) -> usize {
    Arc::as_ptr(matcher) as *const () as usize
}

impl MatchMemo {
    /// An empty memo over its own private cache — per-execution
    /// memoization only, the default for one-shot [`PlanEngine::execute`]
    /// runs.
    ///
    /// [`PlanEngine::execute`]: super::PlanEngine::execute
    pub fn new() -> MatchMemo {
        MatchMemo {
            cache: Arc::new(EngineCache::new()),
            scope: private_scope(),
            local_matrices: Mutex::default(),
        }
    }

    /// A memo viewing the shared `cache` under the schema-pair scope
    /// `(source_fp, target_fp)` (see
    /// [`schema_fingerprint`](super::schema_fingerprint)). Registers the
    /// scope as most-recently used, which may evict the cache's coldest
    /// pair.
    pub fn scoped(cache: &Arc<EngineCache>, source_fp: u64, target_fp: u64) -> MatchMemo {
        cache.register_scope((source_fp, target_fp));
        MatchMemo {
            cache: Arc::clone(cache),
            scope: (source_fp, target_fp),
            local_matrices: Mutex::default(),
        }
    }

    /// The backing cache this memo is a view over.
    pub fn cache(&self) -> &Arc<EngineCache> {
        &self.cache
    }

    /// The cached token set for `name`, computing it via `compute` on the
    /// first request.
    pub fn token_set(&self, name: &str, compute: impl FnOnce() -> Vec<String>) -> Arc<Vec<String>> {
        self.cache.token_set(name, compute)
    }

    /// A per-compute name-similarity cache bound to `engine`'s
    /// configuration: local lookups first, the shared cross-matcher cache
    /// on a local miss.
    pub fn name_sim_cache(&self, engine: &NameEngine) -> NameSimCache {
        let fingerprint = format!("{engine:?}");
        NameSimCache {
            shared: Some(self.cache.name_sims(fingerprint)),
            local: HashMap::new(),
        }
    }

    /// The full similarity matrix of a matcher, computed at most once per
    /// scope (concurrent requests block on the first computation).
    /// Returned as a shared handle: consumers that only read (structural
    /// leaf tables, mask application) never copy the matrix.
    ///
    /// `shareable` says whether the matrix may outlive this execution in
    /// the backing cache — pass [`Matcher::pure`](crate::Matcher::pure).
    /// Non-shareable matrices are memoized for this execution only.
    pub fn matrix(
        &self,
        name: &str,
        identity: usize,
        shareable: bool,
        compute: impl FnOnce() -> SimMatrix,
    ) -> Arc<SimMatrix> {
        if shareable {
            return self.cache.matrix(self.scope, name, identity, compute);
        }
        let cell = self
            .local_matrices
            .lock()
            .entry((name.to_string(), identity))
            .or_default()
            .clone();
        Arc::clone(cell.get_or_init(|| Arc::new(compute())))
    }

    /// The cached full matrix of a matcher, if it was already computed
    /// (in this execution, or — for shareable matrices — by any earlier
    /// execution in the same scope).
    pub fn cached_matrix(&self, name: &str, identity: usize) -> Option<Arc<SimMatrix>> {
        let local = self
            .local_matrices
            .lock()
            .get(&(name.to_string(), identity))
            .cloned();
        if let Some(hit) = local.and_then(|cell| cell.get().map(Arc::clone)) {
            return Some(hit);
        }
        self.cache.cached_matrix(self.scope, name, identity)
    }

    /// The vocabulary inverted index of one schema side (`target_side`
    /// false = source), built at most once per (schema, gram length) per
    /// scope — repeated `CandidateIndex` stages (e.g. inside an `Iterate`
    /// loop, or across requests under a shared cache) reuse it.
    pub fn vocab_index(
        &self,
        target_side: bool,
        q: usize,
        compute: impl FnOnce() -> VocabIndex,
    ) -> Arc<VocabIndex> {
        let fp = if target_side {
            self.scope.1
        } else {
            self.scope.0
        };
        self.cache.vocab_index(fp, q, compute)
    }
}

impl Default for MatchMemo {
    fn default() -> Self {
        MatchMemo::new()
    }
}

/// A two-level name-pair similarity cache handed to one matcher compute:
/// a lock-free local map in front of the memo's shared cross-matcher map.
/// Without a memo (legacy direct `Matcher::compute` calls) it degrades to
/// the purely local cache the hybrid matchers always used.
pub struct NameSimCache {
    shared: Option<PairSims>,
    local: HashMap<(String, String), f64>,
}

impl NameSimCache {
    /// A purely local cache (no cross-matcher sharing).
    pub fn local() -> NameSimCache {
        NameSimCache {
            shared: None,
            local: HashMap::new(),
        }
    }

    /// The similarity of the name pair `(a, b)`, computing it via
    /// `compute` on a miss of both cache levels.
    pub fn get_or_compute(&mut self, a: &str, b: &str, compute: impl FnOnce() -> f64) -> f64 {
        let key = (a.to_string(), b.to_string());
        if let Some(&v) = self.local.get(&key) {
            return v;
        }
        if let Some(shared) = &self.shared {
            if let Some(&v) = shared.read().get(&key) {
                self.local.insert(key, v);
                return v;
            }
        }
        let v = compute();
        if let Some(shared) = &self.shared {
            shared.write().insert(key.clone(), v);
        }
        self.local.insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn token_sets_compute_once() {
        let memo = MatchMemo::new();
        let calls = AtomicUsize::new(0);
        let mk = || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec!["ship".to_string(), "to".to_string()]
        };
        let a = memo.token_set("shipTo", mk);
        let b = memo.token_set("shipTo", mk);
        assert_eq!(a, b);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn name_sims_share_per_engine_fingerprint() {
        let memo = MatchMemo::new();
        let engine = NameEngine::paper_default();
        let mut c1 = memo.name_sim_cache(&engine);
        assert_eq!(c1.get_or_compute("a", "b", || 0.25), 0.25);
        // A second cache for the same engine sees the shared entry.
        let mut c2 = memo.name_sim_cache(&engine);
        assert_eq!(c2.get_or_compute("a", "b", || panic!("must hit")), 0.25);
        // A differently configured engine does not.
        let other = NameEngine {
            aggregation: crate::combine::Aggregation::Min,
            ..NameEngine::paper_default()
        };
        let mut c3 = memo.name_sim_cache(&other);
        assert_eq!(c3.get_or_compute("a", "b", || 0.75), 0.75);
    }

    #[test]
    fn matrices_key_on_name_and_identity() {
        let memo = MatchMemo::new();
        let m1 = memo.matrix("X", 1, true, || SimMatrix::new(2, 2));
        assert_eq!(m1.rows(), 2);
        // Same key: cached, the closure must not run.
        memo.matrix("X", 1, true, || panic!("must hit"));
        assert!(memo.cached_matrix("X", 1).is_some());
        // Same name, different instance: a distinct entry.
        assert!(memo.cached_matrix("X", 2).is_none());
    }

    #[test]
    fn impure_matrices_stay_local_to_the_memo() {
        let cache = Arc::new(EngineCache::new());
        let memo = MatchMemo::scoped(&cache, 100, 200);
        memo.matrix("SchemaM", 9, false, || SimMatrix::new(1, 1));
        memo.matrix("Name", 9, true, || SimMatrix::new(1, 1));
        assert!(memo.cached_matrix("SchemaM", 9).is_some());
        // A second memo over the same cache and scope sees only the
        // shareable matrix.
        let memo2 = MatchMemo::scoped(&cache, 100, 200);
        assert!(memo2.cached_matrix("SchemaM", 9).is_none());
        assert!(memo2.cached_matrix("Name", 9).is_some());
    }

    #[test]
    fn scoped_memos_share_vocab_indexes_by_fingerprint() {
        let cache = Arc::new(EngineCache::new());
        let aux = crate::matchers::Auxiliary::standard();
        let build = || VocabIndex::build(["ship to"], &aux, 3);
        let memo = MatchMemo::scoped(&cache, 7, 8);
        let first = memo.vocab_index(false, 3, build);
        // Same schema on the *target* side of a later request: same index.
        let memo2 = MatchMemo::scoped(&cache, 9, 7);
        let second = memo2.vocab_index(true, 3, || panic!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
    }
}
