//! Extension scenario: instance-level matching (the paper's Section 7.5
//! future work). Two schemas with opaque, language-mixed column names are
//! matched purely from sample data — value overlap and value statistics —
//! then combined with name matching under Max aggregation so each source
//! of evidence covers the other's blind spots.
//!
//! Run with: `cargo run --example instance_matching`

use coma::core::{
    Aggregation, Coma, CombinationStrategy, CombinedSim, Direction, MatchStrategy, Selection,
};
use coma::graph::PathSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let left = coma::sql::import_ddl(
        "CREATE TABLE L.T (code VARCHAR(2), betrag DECIMAL(10,2), stadt VARCHAR(80));",
        "L",
    )?;
    let right = coma::sql::import_ddl(
        "CREATE TABLE R.U (country CHAR(2), amount DECIMAL(12,2), city VARCHAR(60));",
        "R",
    )?;

    let mut coma = Coma::new();
    let store = &mut coma.aux_mut().instances;
    store.add_values("L", "L.T.code", ["DE", "FR", "IT", "ES"]);
    store.add_values("L", "L.T.betrag", ["12.99", "899.00", "5.49"]);
    store.add_values("L", "L.T.stadt", ["Leipzig", "Dresden", "Berlin"]);
    store.add_values("R", "R.U.country", ["DE", "FR", "NL"]);
    store.add_values("R", "R.U.amount", ["45.00", "12.99", "310.75"]);
    store.add_values("R", "R.U.city", ["Hamburg", "Berlin", "Leipzig"]);

    // Names alone: "betrag" vs "amount" is hopeless for string matchers.
    let names_only = coma.match_schemas(&left, &right, &MatchStrategy::with_matchers(["Name"]))?;

    // Instance evidence + names, Max-aggregated.
    let strategy =
        MatchStrategy::with_matchers(["Name", "Instance"]).with_combination(CombinationStrategy {
            aggregation: Aggregation::Max,
            direction: Direction::Both,
            selection: Selection::max_n(1).with_threshold(0.5),
            combined_sim: CombinedSim::Average,
        });
    let combined = coma.match_schemas(&left, &right, &strategy)?;

    let lp = PathSet::new(&left)?;
    let rp = PathSet::new(&right)?;
    println!("Name only: {} correspondences", names_only.result.len());
    println!(
        "Name + Instance (Max): {} correspondences",
        combined.result.len()
    );
    for c in &combined.result.candidates {
        println!(
            "  {:<12} ↔ {:<14} {:.2}",
            lp.full_name(&left, c.source),
            rp.full_name(&right, c.target),
            c.similarity
        );
    }
    let betrag = lp.find_by_full_name(&left, "L.T.betrag").expect("path");
    let amount = rp.find_by_full_name(&right, "R.U.amount").expect("path");
    assert!(combined.result.contains(betrag, amount));
    println!("\nbetrag ↔ amount found from shared values and numeric profiles ✓");
    Ok(())
}
