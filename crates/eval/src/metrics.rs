//! Match quality measures (paper, Section 7.1): Precision, Recall and
//! Overall, computed against manually determined real matches.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The confusion counts of one match experiment: the real matches `R`, the
/// proposal `P`, true positives `I = P∩R`, false positives `F = P\I` and
/// false negatives `M = R\I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchQuality {
    /// `|I|` — correctly identified matches.
    pub true_positives: usize,
    /// `|F|` — wrongly proposed matches.
    pub false_positives: usize,
    /// `|M|` — missed real matches.
    pub false_negatives: usize,
}

impl MatchQuality {
    /// Compares a proposal against the gold standard.
    pub fn compare(
        gold: &BTreeSet<(String, String)>,
        proposed: &BTreeSet<(String, String)>,
    ) -> MatchQuality {
        let true_positives = proposed.intersection(gold).count();
        MatchQuality {
            true_positives,
            false_positives: proposed.len() - true_positives,
            false_negatives: gold.len() - true_positives,
        }
    }

    /// `Precision = |I| / |P|` — "estimates the reliability of the match
    /// predictions". An empty proposal scores 1 by convention (nothing
    /// wrong was proposed).
    pub fn precision(&self) -> f64 {
        let p = self.true_positives + self.false_positives;
        if p == 0 {
            1.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// `Recall = |I| / |R|` — "specifies the share of real matches that is
    /// found". An empty gold standard scores 1 by convention.
    pub fn recall(&self) -> f64 {
        let r = self.true_positives + self.false_negatives;
        if r == 0 {
            1.0
        } else {
            self.true_positives as f64 / r as f64
        }
    }

    /// `Overall = 1 − (F+M)/|R| = Recall · (2 − 1/Precision)` — the
    /// combined measure of [Melnik et al., ICDE 2002] the paper adopts,
    /// accounting for the post-match effort of removing false and adding
    /// missed matches. Negative when Precision < 0.5 ("the post-match
    /// effort … higher than the gain").
    pub fn overall(&self) -> f64 {
        let r = self.true_positives + self.false_negatives;
        if r == 0 {
            // No real matches: any false positive makes the operation harmful.
            return if self.false_positives == 0 {
                1.0
            } else {
                f64::NEG_INFINITY
            };
        }
        1.0 - (self.false_positives + self.false_negatives) as f64 / r as f64
    }

    /// The harmonic F-measure (not used by the paper; provided for
    /// comparison with later matching literature).
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Averaged quality over a series of experiments — the paper's "average
/// Precision", "average Overall" etc. (Section 7.1: "The quality measures
/// were first determined for single experiments and then averaged over all
/// experiments in each series").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AverageQuality {
    /// Mean precision.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Mean overall.
    pub overall: f64,
    /// Mean F-measure.
    pub f_measure: f64,
}

impl AverageQuality {
    /// Averages the per-experiment measures.
    pub fn of(qualities: &[MatchQuality]) -> AverageQuality {
        assert!(!qualities.is_empty(), "cannot average zero experiments");
        let n = qualities.len() as f64;
        AverageQuality {
            precision: qualities.iter().map(MatchQuality::precision).sum::<f64>() / n,
            recall: qualities.iter().map(MatchQuality::recall).sum::<f64>() / n,
            overall: qualities.iter().map(MatchQuality::overall).sum::<f64>() / n,
            f_measure: qualities.iter().map(MatchQuality::f_measure).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(items: &[(&str, &str)]) -> BTreeSet<(String, String)> {
        items
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn perfect_match_scores_1_everywhere() {
        let gold = pairs(&[("a", "x"), ("b", "y")]);
        let q = MatchQuality::compare(&gold, &gold.clone());
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.overall(), 1.0);
        assert_eq!(q.f_measure(), 1.0);
    }

    #[test]
    fn overall_equals_identity_formula() {
        // Overall = Recall·(2 − 1/Precision).
        let gold = pairs(&[("a", "x"), ("b", "y"), ("c", "z")]);
        let proposed = pairs(&[("a", "x"), ("b", "wrong"), ("d", "w")]);
        let q = MatchQuality::compare(&gold, &proposed);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 2);
        assert_eq!(q.false_negatives, 2);
        let via_formula = q.recall() * (2.0 - 1.0 / q.precision());
        assert!((q.overall() - via_formula).abs() < 1e-12);
        assert!((q.overall() - (1.0 - 4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn overall_is_negative_when_precision_below_half() {
        let gold = pairs(&[("a", "x")]);
        let proposed = pairs(&[("a", "x"), ("b", "1"), ("c", "2"), ("d", "3")]);
        let q = MatchQuality::compare(&gold, &proposed);
        assert!(q.precision() < 0.5);
        assert!(q.overall() < 0.0);
    }

    #[test]
    fn overall_never_exceeds_precision_or_recall() {
        // "In all other cases, Overall is smaller than both Precision and
        // Recall."
        let gold = pairs(&[("a", "x"), ("b", "y"), ("c", "z")]);
        for proposed in [
            pairs(&[("a", "x")]),
            pairs(&[("a", "x"), ("q", "q")]),
            pairs(&[("a", "x"), ("b", "y"), ("q", "q"), ("r", "r")]),
        ] {
            let q = MatchQuality::compare(&gold, &proposed);
            assert!(q.overall() <= q.precision() + 1e-12);
            assert!(q.overall() <= q.recall() + 1e-12);
        }
    }

    #[test]
    fn empty_conventions() {
        let empty = BTreeSet::new();
        let q = MatchQuality::compare(&empty, &empty);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.overall(), 1.0);
        let gold = pairs(&[("a", "x")]);
        let q2 = MatchQuality::compare(&gold, &empty);
        assert_eq!(q2.precision(), 1.0);
        assert_eq!(q2.recall(), 0.0);
        assert_eq!(q2.overall(), 0.0);
    }

    #[test]
    fn averaging_is_measure_wise() {
        let a = MatchQuality {
            true_positives: 1,
            false_positives: 0,
            false_negatives: 0,
        };
        let b = MatchQuality {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 1,
        };
        let avg = AverageQuality::of(&[a, b]);
        assert_eq!(avg.precision, 1.0);
        assert_eq!(avg.recall, 0.5);
        assert_eq!(avg.overall, 0.5);
    }

    #[test]
    #[should_panic(expected = "zero experiments")]
    fn averaging_nothing_panics() {
        let _ = AverageQuality::of(&[]);
    }
}
