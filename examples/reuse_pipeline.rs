//! Domain scenario: reuse of previous match results (paper, Section 5).
//!
//! Three contact-list schemas PO1, PO2, PO3 mirror Figure 3. PO1↔PO2 and
//! PO2↔PO3 have already been matched (and user-confirmed); composing them
//! via the repository lets the Schema matcher propose PO1↔PO3
//! correspondences without comparing a single name — and shows both the
//! power (transitive matches) and the caveats (missed `company`, Figure 3;
//! m:n composition, Figure 4) of the approach.
//!
//! Run with: `cargo run --example reuse_pipeline`

use coma::core::{match_compose, Coma, ComposeCombine, MatchStrategy};
use coma::graph::{DataType, Node, PathSet, Schema, SchemaBuilder};
use coma::repo::{Mapping, MappingKind};

fn contact_schema(name: &str, leaves: &[&str]) -> Schema {
    let mut b = SchemaBuilder::new(name);
    let root = b.add_node(Node::new(name));
    let contact = b.add_node(Node::new("Contact"));
    b.add_child(root, contact).expect("edge");
    for leaf in leaves {
        let n = b.add_node(Node::new(*leaf).with_datatype(DataType::Text));
        b.add_child(contact, n).expect("edge");
    }
    b.build().expect("valid schema")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let po1 = contact_schema("PO1", &["Name", "Email", "company"]);
    let po3 = contact_schema("PO3", &["firstName", "lastName", "email", "company"]);

    // Previously confirmed match results (Figure 3a), stored as mappings.
    let mut m1 = Mapping::new("PO1", "PO2", MappingKind::Manual);
    m1.push("PO1.Contact.Name", "PO2.Contact.name", 1.0);
    m1.push("PO1.Contact.Email", "PO2.Contact.e-mail", 1.0);
    let mut m2 = Mapping::new("PO2", "PO3", MappingKind::Manual);
    m2.push("PO2.Contact.name", "PO3.Contact.firstName", 0.6);
    m2.push("PO2.Contact.name", "PO3.Contact.lastName", 0.6);
    m2.push("PO2.Contact.e-mail", "PO3.Contact.email", 1.0);

    // --- MatchCompose directly (Figure 3b) -----------------------------
    println!("MatchCompose(PO1↔PO2, PO2↔PO3) with Average (Figure 3b):");
    let composed = match_compose(&m1, &m2, ComposeCombine::Average);
    for c in &composed.correspondences {
        println!("  {:<18} ↔ {:<22} {:.2}", c.source, c.target, c.similarity);
    }
    println!("  (paper: Name↔firstName/lastName 0.8, Email↔email 1.0; company is");
    println!("   missed — no counterpart in PO2, Figure 3's caveat)");
    let multiplied = match_compose(&m1, &m2, ComposeCombine::Multiply);
    println!(
        "\nSection 5.1: multiplication degrades Name↔firstName to {:.2}; Average keeps {:.2}.",
        multiplied.correspondences[0].similarity, composed.correspondences[0].similarity
    );

    // --- The Schema reuse matcher via the repository (Figure 5) --------
    let mut coma = Coma::new();
    coma.repository_mut().put_mapping(m1);
    coma.repository_mut().put_mapping(m2);
    let outcome = coma.match_schemas(&po1, &po3, &MatchStrategy::with_matchers(["SchemaM"]))?;
    let p1 = PathSet::new(&po1)?;
    let p3 = PathSet::new(&po3)?;
    println!("\nSchema matcher result for PO1 ↔ PO3 (pure reuse, no name matching):");
    for cand in &outcome.result.candidates {
        println!(
            "  {:<18} ↔ {:<22} {:.2}",
            p1.full_name(&po1, cand.source),
            p3.full_name(&po3, cand.target),
            cand.similarity
        );
    }
    assert!(!outcome.result.is_empty());
    Ok(())
}
