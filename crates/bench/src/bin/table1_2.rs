//! Regenerates Tables 1 and 2 of the paper: matcher-specific similarities
//! (TypeName, NamePath) for three PO1 elements against
//! `PO2.DeliverTo.Address.City`, their Average aggregation, and the
//! resulting match candidate.

use coma_core::{Aggregation, Coma, MatchContext, MatchStrategy, SimCube};
use coma_eval::experiment::report::render_table;
use coma_graph::PathSet;

const PO1_DDL: &str = r#"
CREATE TABLE PO1.ShipTo (
    poNo INT,
    custNo INT REFERENCES PO1.Customer,
    shipToStreet VARCHAR(200),
    shipToCity VARCHAR(200),
    shipToZip VARCHAR(20),
    PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
    custNo INT,
    custName VARCHAR(200),
    custStreet VARCHAR(200),
    custCity VARCHAR(200),
    custZip VARCHAR(20),
    PRIMARY KEY (custNo)
);"#;

const PO2_XSD: &str = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

/// Paper values from Table 1 for the three pairs, (TypeName, NamePath).
const PAPER: [(&str, f64, f64); 3] = [
    ("PO1.ShipTo.shipToCity", 0.65, 0.78),
    ("PO1.ShipTo.shipToStreet", 0.30, 0.73),
    ("PO1.Customer.custCity", 0.80, 0.53),
];

fn main() {
    let po1 = coma_sql::import_ddl(PO1_DDL, "PO1").expect("PO1 parses");
    let po2 = coma_xml::import_xsd(PO2_XSD, "PO2").expect("PO2 parses");
    let p1 = PathSet::new(&po1).expect("PO1 paths");
    let p2 = PathSet::new(&po2).expect("PO2 paths");

    let mut coma = Coma::new();
    coma.aux_mut().synonyms = coma_core::matchers::synonym::SynonymTable::purchase_order();
    let ctx = MatchContext::new(&po1, &po2, &p1, &p2, coma.aux());

    let type_name = coma.library().get("TypeName").expect("TypeName registered");
    let name_path = coma.library().get("NamePath").expect("NamePath registered");
    let tn = type_name.compute(&ctx);
    let np = name_path.compute(&ctx);

    let city = p2
        .find_by_full_name(&po2, "PO2.DeliverTo.Address.City")
        .expect("City path exists");

    println!("Table 1 — similarity values computed for PO1 and PO2");
    println!("(PO2 element: PO2.DeliverTo.Address.City)\n");
    let mut rows = Vec::new();
    for (path, paper_tn, paper_np) in PAPER {
        let i = p1
            .find_by_full_name(&po1, path)
            .expect("PO1 path exists")
            .index();
        rows.push(vec![
            path.to_string(),
            format!("{:.2}", tn.get(i, city.index())),
            format!("{paper_tn:.2}"),
            format!("{:.2}", np.get(i, city.index())),
            format!("{paper_np:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["PO1 element", "TypeName", "(paper)", "NamePath", "(paper)"],
            &rows
        )
    );

    println!("Table 2 — combined similarity (Average aggregation)\n");
    let mut cube = SimCube::new();
    cube.push("TypeName", tn);
    cube.push("NamePath", np);
    let combined = Aggregation::Average.aggregate(&cube);
    let paper_combined = [0.72, 0.52, 0.67];
    let mut rows = Vec::new();
    for ((path, _, _), paper) in PAPER.iter().zip(paper_combined) {
        let i = p1.find_by_full_name(&po1, path).expect("path").index();
        rows.push(vec![
            path.to_string(),
            format!("{:.2}", combined.get(i, city.index())),
            format!("{paper:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(&["PO1 element", "Combined sim", "(paper)"], &rows)
    );

    // The selection conclusion of Section 3: shipToCity is the candidate.
    let outcome = coma
        .match_schemas(
            &po1,
            &po2,
            &MatchStrategy::with_matchers(["TypeName", "NamePath"]),
        )
        .expect("match runs");
    let chosen: Vec<String> = outcome
        .result
        .candidates
        .iter()
        .filter(|c| c.target == city)
        .map(|c| format!("{} (sim {:.2})", p1.full_name(&po1, c.source), c.similarity))
        .collect();
    println!("Match candidate(s) for PO2.DeliverTo.Address.City: {chosen:?}");
    println!("(paper: PO1.ShipTo.shipToCity)");
}
