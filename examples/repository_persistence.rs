//! Domain scenario: the DBMS-backed repository workflow (paper, Sections 1
//! and 5). A first session matches schemas, stores schemas + similarity
//! cubes + mappings, and persists everything to disk; a later session
//! reloads the repository and benefits from reuse on a brand-new task.
//!
//! Run with: `cargo run --release --example repository_persistence`

use coma::core::{Coma, MatchStrategy};
use coma::eval::{Corpus, MatchQuality};
use coma::repo::Repository;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::load();
    let path = std::env::temp_dir().join("coma_repository.json");

    // --- Session 1: match CIDX↔Excel and Excel↔Noris, store, persist ----
    {
        let mut coma = Coma::new();
        *coma.aux_mut() = corpus.aux().clone();
        // The human-confirmed results for two tasks (here: the gold).
        coma.repository_mut().put_mapping(corpus.gold_mapping(0, 1));
        coma.repository_mut().put_mapping(corpus.gold_mapping(1, 2));
        // An automatic run, stored with its cube for later inspection.
        coma.match_and_store(
            corpus.schema(0),
            corpus.schema(1),
            &MatchStrategy::paper_default(),
        )?;
        coma.repository().save(&path)?;
        println!(
            "session 1: persisted {} mappings, {} cubes, {} schemas to {}",
            coma.repository().mappings().len(),
            coma.repository().cube_count(),
            coma.repository().schema_count(),
            path.display()
        );
    }

    // --- Session 2: reload and reuse for the unseen task CIDX↔Noris -----
    {
        let mut coma = Coma::new();
        *coma.aux_mut() = corpus.aux().clone();
        *coma.repository_mut() = Repository::load(&path)?;
        println!(
            "session 2: loaded {} mappings from disk",
            coma.repository().mappings().len()
        );

        let gold = corpus.gold_names(0, 2);
        let evaluate = |label: &str, result: &coma::core::MatchResult| {
            let proposed: BTreeSet<(String, String)> = result
                .candidates
                .iter()
                .map(|c| {
                    (
                        corpus.path_set(0).full_name(corpus.schema(0), c.source),
                        corpus.path_set(2).full_name(corpus.schema(2), c.target),
                    )
                })
                .collect();
            let q = MatchQuality::compare(&gold, &proposed);
            println!(
                "  {label:<22} precision {:.2}  recall {:.2}  overall {:+.2}",
                q.precision(),
                q.recall(),
                q.overall()
            );
            q.overall()
        };

        // Pure reuse: compose CIDX↔Excel with Excel↔Noris (pivot: Excel).
        let reuse = coma.match_schemas(
            corpus.schema(0),
            corpus.schema(2),
            &MatchStrategy::with_matchers(["SchemaM"]),
        )?;
        let reuse_overall = evaluate("SchemaM (pure reuse):", &reuse.result);

        // No-reuse baseline.
        let fresh = coma.match_schemas(
            corpus.schema(0),
            corpus.schema(2),
            &MatchStrategy::paper_default(),
        )?;
        let fresh_overall = evaluate("All (no reuse):", &fresh.result);

        println!(
            "\nreuse vs fresh Overall: {reuse_overall:+.2} vs {fresh_overall:+.2} — \
             composed mappings transfer confirmed knowledge to the new task."
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
