//! The combination framework (paper, Section 6): a series of aggregation
//! and selection operations on the similarity cube.
//!
//! 1. [`Aggregation`] — cube → combined similarity matrix (Max, Weighted,
//!    Average, Min; Section 6.1);
//! 2. [`Direction`] + [`Selection`] — matrix → ranked, filtered match
//!    candidates per element (LargeSmall / SmallLarge / Both with MaxN /
//!    MaxDelta / Threshold and their compounds; Section 6.2);
//! 3. [`CombinedSim`] — match candidates → a single similarity value for
//!    two element sets (Average, Dice; Section 6.3), used inside hybrid
//!    matchers and for schema similarity.
//!
//! A full strategy is the tuple [`CombinationStrategy`], e.g. the paper's
//! evaluated default `(Average, Both, Threshold(0.5)+Delta(0.02), Average)`
//! (Section 7.2).

mod aggregation;
mod combined;
mod marriage;
mod selection;

pub use aggregation::Aggregation;
pub(crate) use combined::max1_both_combined;
pub use combined::CombinedSim;
pub use marriage::stable_marriage;
pub(crate) use selection::{directional_wants, rank_entries, sort_desc};
pub use selection::{DirectedCandidates, Direction, Selection};

use serde::{Deserialize, Serialize};

/// A complete combination strategy: one choice per combination step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationStrategy {
    /// Step 1: aggregation of matcher-specific results.
    pub aggregation: Aggregation,
    /// Step 2a: match direction.
    pub direction: Direction,
    /// Step 2b: match candidate selection.
    pub selection: Selection,
    /// Step 3: computation of combined similarity (needed by hybrid
    /// matchers and schema similarity).
    pub combined_sim: CombinedSim,
}

impl CombinationStrategy {
    /// The default strategy the paper's evaluation identified as best:
    /// `(Average, Both, Threshold(0.5)+Delta(0.02), Average)` (Section 7.2).
    pub fn paper_default() -> CombinationStrategy {
        CombinationStrategy {
            aggregation: Aggregation::Average,
            direction: Direction::Both,
            selection: Selection::delta(0.02).with_threshold(0.5),
            combined_sim: CombinedSim::Average,
        }
    }

    /// A compact human-readable label, e.g.
    /// `Average/Both/Thr(0.5)+Delta(0.02)/Average`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.aggregation, self.direction, self.selection, self.combined_sim
        )
    }
}

impl Default for CombinationStrategy {
    fn default() -> Self {
        CombinationStrategy::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_default() {
        let d = CombinationStrategy::default();
        assert_eq!(d.aggregation, Aggregation::Average);
        assert_eq!(d.direction, Direction::Both);
        assert_eq!(d.label(), "Average/Both/Thr(0.5)+Delta(0.02)/Average");
    }
}
