use crate::error::{Result, SqlError};

/// A DDL token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (case preserved; keyword checks are
    /// case-insensitive). Includes quoted identifiers (`"a b"`).
    Word(String),
    /// Numeric literal (only appears inside type arguments / defaults).
    Number(String),
    /// String literal (single-quoted).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    /// Any other single symbol (e.g. `=` in defaults).
    Symbol(char),
}

impl TokenKind {
    /// Case-insensitive keyword comparison for word tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes DDL text. Line comments (`--`) and block comments (`/* */`)
/// are skipped.
pub(crate) fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlError::syntax(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => push(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push(&mut tokens, TokenKind::RParen, &mut i),
            ',' => push(&mut tokens, TokenKind::Comma, &mut i),
            '.' => push(&mut tokens, TokenKind::Dot, &mut i),
            ';' => push(&mut tokens, TokenKind::Semicolon, &mut i),
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::syntax(start, "unterminated string")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '"' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::syntax(start, "unterminated quoted identifier"));
                }
                tokens.push(Token {
                    kind: TokenKind::Word(input[begin..i].to_string()),
                    offset: start,
                });
                i += 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number(input[start..i].to_string()),
                    offset: start,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Word(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(other),
                    offset: i,
                });
                i += 1;
            }
        }
    }
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, offset: *i });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_create_table_fragment() {
        let toks = lex("CREATE TABLE PO1.ShipTo (poNo INT, -- c\n x VARCHAR(200));").unwrap();
        assert!(toks[0].kind.is_kw("create"));
        assert!(toks[1].kind.is_kw("TABLE"));
        assert_eq!(toks[2].kind, TokenKind::Word("PO1".into()));
        assert_eq!(toks[3].kind, TokenKind::Dot);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number("200".into())));
        assert_eq!(toks.last().unwrap().kind, TokenKind::Semicolon);
    }

    #[test]
    fn lexes_strings_and_quoted_identifiers() {
        let toks = lex(r#"DEFAULT 'it''s' "my col""#).unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str("it's".into()));
        assert_eq!(toks[2].kind, TokenKind::Word("my col".into()));
    }

    #[test]
    fn skips_block_comments() {
        let toks = lex("/* hello \n world */ x").unwrap();
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(lex("'abc"), Err(SqlError::Syntax { .. })));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(matches!(lex("/* abc"), Err(SqlError::Syntax { .. })));
    }
}
