//! # COMA — flexible combination of schema matching approaches
//!
//! A from-scratch Rust implementation of the COMA schema matching system
//! (Hong-Hai Do, Erhard Rahm: *COMA — A system for flexible combination of
//! schema matching approaches*, VLDB 2002).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — schemas as rooted DAGs with containment/reference links,
//! * [`strings`] — approximate string matching (affix, n-gram, edit
//!   distance, soundex) and name tokenization,
//! * [`xml`] / [`sql`] — schema importers for XML Schema and SQL DDL,
//! * [`repo`] — the repository storing schemas, similarity cubes and match
//!   results for reuse,
//! * [`core`] — the matcher library, combination framework, match
//!   processing and the composable match-plan engine (the paper's
//!   contribution, generalized to staged matching processes),
//! * [`server`] — matching as a service: a unix-socket server over a
//!   persistent repository with per-tenant cross-request caches, plus the
//!   wire protocol and client,
//! * [`eval`] — quality metrics, the purchase-order evaluation corpus and
//!   the experiment harness reproducing the paper's study.
//!
//! The most common entry points are re-exported at the crate root: build a
//! [`Coma`] instance, describe what to run as a flat [`MatchStrategy`] or
//! a staged [`MatchPlan`] (`CandidateIndex` / `Seq` / `Par` / `Filter` /
//! `TopK` / `Iterate` / `Reuse`), and execute it via [`Coma::match_schemas`] or
//! [`Coma::match_plan`].
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/plan_matching.rs` for a two-stage filter→refine plan.

pub use coma_core as core;
pub use coma_eval as eval;
pub use coma_graph as graph;
pub use coma_repo as repo;
pub use coma_server as server;
pub use coma_sql as sql;
pub use coma_strings as strings;
pub use coma_xml as xml;

pub use coma_core::{
    Coma, EngineConfig, IndexStats, MatchPlan, MatchResult, MatchStrategy, PlanAnalysis,
    PlanAnalyzer, PlanDiagnostic, PlanEngine, PlanError, PlanErrorKind, PlanOutcome, Severity,
    StageOutcome, TaskStats, TopKPer, Tri, VocabIndex,
};
