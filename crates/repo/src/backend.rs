//! Pluggable persistence backends for the repository.
//!
//! The paper's repository is "DBMS-based" — schemas and match results
//! outlive any single matcher execution. [`RepositoryBackend`] is the
//! seam that gives the embedded [`Repository`] the same property: a
//! backend knows how to load one full repository snapshot and how to
//! persist one, nothing more. Two implementations ship:
//!
//! * [`MemoryBackend`] — keeps the serialized snapshot in process memory.
//!   The store for tests and for callers that want repository semantics
//!   without touching the filesystem.
//! * [`FileBackend`] — a single human-readable JSON file, written
//!   atomically (temp file + rename in the same directory), so a crash
//!   mid-write never corrupts the previous good snapshot and concurrent
//!   readers of the file never observe a half-written state.
//!
//! [`PersistentRepository`] wraps a backend plus an in-memory
//! [`Repository`] behind an `RwLock`: reads are concurrent snapshots,
//! mutations are write-through (every successful [`PersistentRepository::mutate`]
//! persists before returning), so a process restart via
//! [`PersistentRepository::open`] sees everything an earlier process
//! stored.

use crate::{Repository, RepositoryError};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::path::{Path, PathBuf};

/// A repository persistence backend: loads and stores whole-repository
/// snapshots.
///
/// Implementations must be cheap to call with an empty store (first run)
/// and must never leave a partially written snapshot visible to a
/// subsequent [`RepositoryBackend::load`].
pub trait RepositoryBackend: Send + Sync {
    /// Loads the persisted repository, or an empty one when nothing has
    /// been persisted yet.
    fn load(&self) -> Result<Repository, RepositoryError>;

    /// Persists a consistent snapshot of the repository.
    fn persist(&self, repo: &Repository) -> Result<(), RepositoryError>;

    /// Human-readable description of where this backend stores data
    /// (a path for file backends, `"memory"` for the in-memory one).
    fn location(&self) -> String;
}

/// The in-memory backend: the serialized snapshot lives in the process.
///
/// Behaves exactly like a persistent store across [`load`]/[`persist`]
/// calls within one process (it round-trips through the same JSON
/// serialization the file backend uses, so format bugs surface in tests
/// that never touch a disk), but everything dies with the process.
///
/// [`load`]: RepositoryBackend::load
/// [`persist`]: RepositoryBackend::persist
#[derive(Default)]
pub struct MemoryBackend {
    snapshot: Mutex<Option<String>>,
}

impl MemoryBackend {
    /// A backend with no persisted snapshot.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }
}

impl RepositoryBackend for MemoryBackend {
    fn load(&self) -> Result<Repository, RepositoryError> {
        match &*self.snapshot.lock() {
            Some(json) => Repository::from_json(json),
            None => Ok(Repository::new()),
        }
    }

    fn persist(&self, repo: &Repository) -> Result<(), RepositoryError> {
        *self.snapshot.lock() = Some(repo.to_json()?);
        Ok(())
    }

    fn location(&self) -> String {
        "memory".to_string()
    }
}

/// The single-file JSON backend.
///
/// The whole repository is one pretty-printed JSON document (the same
/// format [`Repository::save`] always wrote). Persisting writes to a
/// temporary file *in the same directory* and renames it over the store
/// path — rename is atomic on POSIX filesystems, so the store file is
/// always either the previous snapshot or the new one, never a torn
/// write. A missing file loads as an empty repository (first run);
/// unparseable content surfaces [`RepositoryError::Format`].
pub struct FileBackend {
    path: PathBuf,
}

impl FileBackend {
    /// A backend storing the repository at `path`. The file need not
    /// exist yet; its parent directory must.
    pub fn new(path: impl Into<PathBuf>) -> FileBackend {
        FileBackend { path: path.into() }
    }

    /// The store path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn temp_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "repository.json".into());
        name.push(format!(".tmp.{}", std::process::id()));
        self.path.with_file_name(name)
    }
}

impl RepositoryBackend for FileBackend {
    fn load(&self) -> Result<Repository, RepositoryError> {
        let json = match std::fs::read_to_string(&self.path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Repository::new()),
            Err(e) => return Err(RepositoryError::Io(e)),
        };
        Repository::from_json(&json)
    }

    fn persist(&self, repo: &Repository) -> Result<(), RepositoryError> {
        use std::io::Write as _;
        let json = repo.to_json()?;
        let tmp = self.temp_path();
        // Write + fsync the temp file before the rename: after a crash the
        // store path must point at either the old snapshot or a fully
        // durable new one.
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        drop(file);
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            std::fs::remove_file(&tmp).ok();
            return Err(RepositoryError::Io(e));
        }
        Ok(())
    }

    fn location(&self) -> String {
        self.path.display().to_string()
    }
}

/// A thread-safe repository handle bound to a persistence backend.
///
/// Reads take a shared lock and see a consistent snapshot; mutations take
/// the exclusive lock, apply, then persist through the backend before
/// returning (write-through), so a successful [`PersistentRepository::mutate`]
/// means the change is on disk. Opening a handle loads whatever the
/// backend holds, which is how state survives process restarts.
pub struct PersistentRepository {
    inner: RwLock<Repository>,
    backend: Box<dyn RepositoryBackend>,
}

impl PersistentRepository {
    /// Opens a repository from `backend`, loading the persisted snapshot
    /// (empty on first run).
    pub fn open(
        backend: impl RepositoryBackend + 'static,
    ) -> Result<PersistentRepository, RepositoryError> {
        let inner = backend.load()?;
        Ok(PersistentRepository {
            inner: RwLock::new(inner),
            backend: Box::new(backend),
        })
    }

    /// An in-memory repository handle (a [`MemoryBackend`]).
    pub fn in_memory() -> PersistentRepository {
        PersistentRepository::open(MemoryBackend::new()).expect("memory backend cannot fail")
    }

    /// A shared read snapshot of the repository.
    pub fn read(&self) -> RwLockReadGuard<'_, Repository> {
        self.inner.read()
    }

    /// Applies `f` under the exclusive lock and persists the result
    /// through the backend (write-through). The mutation is kept in
    /// memory even if persisting fails — the caller can retry with
    /// [`PersistentRepository::flush`].
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Repository) -> R) -> Result<R, RepositoryError> {
        let mut repo = self.inner.write();
        let out = f(&mut repo);
        self.backend.persist(&repo)?;
        Ok(out)
    }

    /// Persists the current state through the backend.
    pub fn flush(&self) -> Result<(), RepositoryError> {
        self.backend.persist(&self.inner.read())
    }

    /// Where the backend stores data (see [`RepositoryBackend::location`]).
    pub fn location(&self) -> String {
        self.backend.location()
    }
}

impl std::fmt::Debug for PersistentRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentRepository")
            .field("location", &self.location())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mapping, MappingKind};

    fn mapping(a: &str, b: &str) -> Mapping {
        let mut m = Mapping::new(a, b, MappingKind::Automatic);
        m.push(format!("{a}.x"), format!("{b}.x"), 0.9);
        m
    }

    #[test]
    fn memory_backend_round_trips() {
        let backend = MemoryBackend::new();
        assert_eq!(backend.load().unwrap().schema_count(), 0);
        let mut repo = Repository::new();
        repo.put_mapping(mapping("A", "B"));
        backend.persist(&repo).unwrap();
        assert_eq!(backend.load().unwrap().mappings().len(), 1);
        assert_eq!(backend.location(), "memory");
    }

    #[test]
    fn persistent_repository_write_through() {
        let backend = MemoryBackend::new();
        let handle = PersistentRepository::open(backend).unwrap();
        handle.mutate(|r| r.put_mapping(mapping("A", "B"))).unwrap();
        assert_eq!(handle.read().mappings().len(), 1);
        // A mutation that returns a value passes it through.
        let n = handle.mutate(|r| r.mappings().len()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn file_backend_missing_file_is_empty() {
        let path = std::env::temp_dir().join("coma_backend_missing.json");
        std::fs::remove_file(&path).ok();
        let backend = FileBackend::new(&path);
        assert_eq!(backend.load().unwrap().schema_count(), 0);
    }
}
