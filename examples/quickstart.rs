//! Quickstart: match the paper's two running-example schemas (Figure 1) —
//! a relational purchase order (PO1, SQL DDL) against an XML purchase
//! order (PO2, XSD) — with the default COMA strategy, and print the
//! resulting correspondences.
//!
//! Run with: `cargo run --example quickstart`

use coma::core::{Coma, MatchStrategy};
use coma::graph::PathSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Import the two schemas from their native formats into COMA's
    //    internal graph representation.
    let po1 = coma::sql::import_ddl(
        r#"
        CREATE TABLE PO1.ShipTo (
            poNo INT,
            custNo INT REFERENCES PO1.Customer,
            shipToStreet VARCHAR(200),
            shipToCity VARCHAR(200),
            shipToZip VARCHAR(20),
            PRIMARY KEY (poNo)
        );
        CREATE TABLE PO1.Customer (
            custNo INT,
            custName VARCHAR(200),
            custStreet VARCHAR(200),
            custCity VARCHAR(200),
            custZip VARCHAR(20),
            PRIMARY KEY (custNo)
        );"#,
        "PO1",
    )?;
    let po2 = coma::xml::import_xsd(
        r#"
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:complexType name="PO2">
            <xsd:sequence>
              <xsd:element name="DeliverTo" type="Address"/>
              <xsd:element name="BillTo" type="Address"/>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:complexType name="Address">
            <xsd:sequence>
              <xsd:element name="Street" type="xsd:string"/>
              <xsd:element name="City" type="xsd:string"/>
              <xsd:element name="Zip" type="xsd:decimal"/>
            </xsd:sequence>
          </xsd:complexType>
        </xsd:schema>"#,
        "PO2",
    )?;

    // 2. Set up COMA. The standard matcher library is pre-registered; we
    //    add the domain synonyms the paper's evaluation used, so that e.g.
    //    Ship ↔ Deliver is recognized.
    let mut coma = Coma::new();
    coma.aux_mut().synonyms.add_synonym("ship", "deliver");
    coma.aux_mut().synonyms.add_synonym("bill", "invoice");
    coma.aux_mut().synonyms.add_synonym("customer", "buyer");

    // 3. Run the match operation: the TypeName+NamePath combination of the
    //    paper's running example (Tables 1 and 2).
    let strategy = MatchStrategy::with_matchers(["TypeName", "NamePath"]);
    let outcome = coma.match_schemas(&po1, &po2, &strategy)?;

    // 4. Report.
    let p1 = PathSet::new(&po1)?;
    let p2 = PathSet::new(&po2)?;
    println!(
        "match result PO1 ↔ PO2 ({} correspondences, schema similarity {:.2}):\n",
        outcome.result.len(),
        outcome.result.schema_similarity.unwrap_or(0.0)
    );
    for cand in &outcome.result.candidates {
        println!(
            "  {:<28} ↔ {:<28} {:.2}",
            p1.full_name(&po1, cand.source),
            p2.full_name(&po2, cand.target),
            cand.similarity
        );
    }

    // The paper's Section 3 conclusion: shipToCity is the candidate for
    // PO2.DeliverTo.Address.City.
    let city = p2
        .find_by_full_name(&po2, "PO2.DeliverTo.Address.City")
        .expect("path");
    let ship_city = p1
        .find_by_full_name(&po1, "PO1.ShipTo.shipToCity")
        .expect("path");
    assert!(outcome.result.contains(ship_city, city));
    println!("\nPO2.DeliverTo.Address.City is matched by PO1.ShipTo.shipToCity ✓");
    Ok(())
}
