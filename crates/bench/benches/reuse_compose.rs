//! Benchmarks of the reuse path: the MatchCompose natural join and the
//! repository pivot search that the Schema matcher performs.

use coma_core::{match_compose, ComposeCombine};
use coma_repo::{Mapping, MappingKind, Repository};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn synthetic_mapping(src: &str, tgt: &str, n: usize) -> Mapping {
    let mut m = Mapping::new(src, tgt, MappingKind::Manual);
    for k in 0..n {
        m.push(
            format!("{src}.block{}.field{k}", k % 7),
            format!("{tgt}.area{}.attr{k}", k % 5),
            0.5 + (k % 50) as f64 / 100.0,
        );
    }
    m
}

fn bench_compose(c: &mut Criterion) {
    let m1 = synthetic_mapping("S1", "S2", 1000);
    // m2 joins on S2 names, so rebuild it with matching sources.
    let mut m2 = Mapping::new("S2", "S3", MappingKind::Manual);
    for corr in &m1.correspondences {
        m2.push(corr.target.clone(), corr.target.replace("attr", "col"), 0.8);
    }
    let mut group = c.benchmark_group("reuse");
    group.bench_function("match_compose_1000", |b| {
        b.iter(|| {
            black_box(match_compose(
                black_box(&m1),
                black_box(&m2),
                ComposeCombine::Average,
            ))
        })
    });

    let mut repo = Repository::new();
    for pivot in 0..20 {
        repo.put_mapping(synthetic_mapping("S1", &format!("P{pivot}"), 100));
        repo.put_mapping(synthetic_mapping(&format!("P{pivot}"), "S2", 100));
    }
    group.bench_function("pivot_pairs_20_pivots", |b| {
        b.iter(|| black_box(repo.pivot_pairs(black_box("S1"), black_box("S2"), |_| true)))
    });
    group.finish();
}

criterion_group!(benches, bench_compose);
criterion_main!(benches);
