//! Domain scenario: the interactive, iterative match process (paper,
//! Section 3, Figure 2). A simulated user reviews the first iteration's
//! proposals, confirms/rejects candidates, and re-runs; the UserFeedback
//! pinning guarantees the corrections survive every later iteration and
//! improve quality against the gold standard.
//!
//! Run with: `cargo run --release --example interactive_feedback`

use coma::core::{Coma, MatchSession, MatchStrategy};
use coma::eval::{Corpus, MatchQuality};
use std::collections::BTreeSet;

fn quality(corpus: &Corpus, result: &coma::core::MatchResult) -> MatchQuality {
    let (i, j) = (0, 2); // CIDX ↔ Noris
    let proposed: BTreeSet<(String, String)> = result
        .candidates
        .iter()
        .map(|c| {
            (
                corpus.path_set(i).full_name(corpus.schema(i), c.source),
                corpus.path_set(j).full_name(corpus.schema(j), c.target),
            )
        })
        .collect();
    MatchQuality::compare(&corpus.gold_names(i, j), &proposed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::load();
    let mut coma = Coma::new();
    *coma.aux_mut() = corpus.aux().clone();
    let (source, target) = (corpus.schema(0), corpus.schema(2)); // CIDX ↔ Noris

    let mut session = MatchSession::new(&coma, source, target, MatchStrategy::paper_default())?;

    // Iteration 1: fully automatic.
    let first = session.run_iteration()?.clone();
    let q1 = quality(&corpus, &first);
    println!(
        "iteration 1: {} proposals — precision {:.2}, recall {:.2}, overall {:+.2}",
        first.len(),
        q1.precision(),
        q1.recall(),
        q1.overall()
    );

    // The "user" reviews the proposals against domain knowledge: confirm
    // everything that is right, reject everything that is wrong, and add
    // two matches the system missed. (We simulate the expert with the
    // gold standard — exactly what a careful reviewer would do.)
    let gold = corpus.gold_names(0, 2);
    let mut confirmed = 0;
    let mut rejected = 0;
    for cand in &first.candidates {
        let pair = (
            corpus.path_set(0).full_name(source, cand.source),
            corpus.path_set(2).full_name(target, cand.target),
        );
        if gold.contains(&pair) {
            session.accept(&pair.0, &pair.1);
            confirmed += 1;
        } else {
            session.reject(&pair.0, &pair.1);
            rejected += 1;
        }
    }
    // Two manual additions for matches iteration 1 missed.
    let mut added = 0;
    for (s, t) in &gold {
        if added == 2 {
            break;
        }
        if !first.candidates.iter().any(|c| {
            corpus.path_set(0).full_name(source, c.source) == *s
                && corpus.path_set(2).full_name(target, c.target) == *t
        }) {
            session.accept(s, t);
            added += 1;
        }
    }
    println!("user feedback: {confirmed} confirmed, {rejected} rejected, {added} added");

    // Iteration 2: the corrections are pinned; the rest is re-derived.
    let second = session.run_iteration()?.clone();
    let q2 = quality(&corpus, &second);
    println!(
        "iteration 2: {} proposals — precision {:.2}, recall {:.2}, overall {:+.2}",
        second.len(),
        q2.precision(),
        q2.recall(),
        q2.overall()
    );
    assert!(q2.overall() > q1.overall(), "feedback must improve quality");
    println!(
        "\nfeedback improved Overall by {:+.2}",
        q2.overall() - q1.overall()
    );
    Ok(())
}
