//! Shared-work memoization for one plan execution.
//!
//! A [`MatchMemo`] lives for the duration of one [`PlanEngine`] run and
//! caches the kinds of work that hybrid matchers and overlapping
//! sub-plans otherwise recompute:
//!
//! * **tokenizations** — the abbreviation-expanded token set of a name is
//!   independent of any matcher configuration, so one cache serves every
//!   name-based matcher;
//! * **name-pair similarities** — keyed per [`NameEngine`] configuration
//!   (its debug fingerprint), so `Name` and `TypeName` share results
//!   exactly when their engines agree;
//! * **per-matcher similarity matrices** — keyed by matcher name *and*
//!   instance identity, so `Children`/`Leaves` reuse the `TypeName` matrix
//!   the engine already computed (the standard library shares one
//!   `TypeName` instance for exactly this purpose) without ever conflating
//!   two differently-configured matchers that happen to share a name;
//! * **vocabulary inverted indexes** — the per-side token/q-gram posting
//!   structures behind `CandidateIndex` leaves, keyed by (side, gram
//!   length) so repeated candidate stages build each index once.
//!
//! All caches use interior mutability and are safe to share across the
//! engine's worker threads; matrix entries are computed at most once even
//! under concurrency (via [`OnceLock`]).
//!
//! The streaming-fused pruning path (see
//! [`EngineConfig::fuse_pruning`](super::EngineConfig)) deliberately
//! bypasses the *matrix* cache — its whole point is never materializing a
//! full per-matcher matrix — but still shares the tokenization and
//! name-pair caches, so fused and unfused stages of one run never repeat
//! string work.
//!
//! [`PlanEngine`]: super::PlanEngine
//! [`NameEngine`]: crate::matchers::name_engine::NameEngine

use super::index::VocabIndex;
use crate::cube::SimMatrix;
use crate::matchers::name_engine::NameEngine;
use crate::matchers::Matcher;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A cache of name-pair similarities for one `NameEngine` configuration.
type PairSims = Arc<RwLock<HashMap<(String, String), f64>>>;

/// A matrix slot computed at most once, keyed by (matcher name, instance
/// identity). The inner `Arc` is what [`MatchMemo::matrix`] hands out, so
/// readers share one allocation instead of cloning a potentially huge
/// dense matrix per consumer.
type MatrixSlots = HashMap<(String, usize), Arc<OnceLock<Arc<SimMatrix>>>>;

/// A per-side vocabulary index slot, keyed by (target side?, gram
/// length) and computed at most once per plan execution, so every
/// `CandidateIndex` stage of a plan shares the same two indexes.
type IndexSlots = HashMap<(bool, usize), Arc<OnceLock<Arc<VocabIndex>>>>;

/// Memoized shared work for one match task, shared by all matchers and
/// stages of a plan execution (attached to the context as
/// [`MatchContext::memo`](crate::MatchContext)).
#[derive(Default)]
pub struct MatchMemo {
    /// Name → abbreviation-expanded token set (engine-independent).
    token_sets: RwLock<HashMap<String, Arc<Vec<String>>>>,
    /// Engine fingerprint → its name-pair similarity cache.
    name_sims: Mutex<HashMap<String, PairSims>>,
    /// (matcher name, instance identity) → its full similarity matrix.
    matrices: Mutex<MatrixSlots>,
    /// (target side?, q) → that side's vocabulary inverted index.
    indexes: Mutex<IndexSlots>,
}

/// The identity of a matcher instance: the address of its (shared) `Arc`
/// allocation. Two `Arc` clones of the same matcher share an identity; two
/// separately constructed matchers never do, even under the same name.
pub fn matcher_identity(matcher: &Arc<dyn Matcher>) -> usize {
    Arc::as_ptr(matcher) as *const () as usize
}

impl MatchMemo {
    /// An empty memo.
    pub fn new() -> MatchMemo {
        MatchMemo::default()
    }

    /// The cached token set for `name`, computing it via `compute` on the
    /// first request.
    pub fn token_set(&self, name: &str, compute: impl FnOnce() -> Vec<String>) -> Arc<Vec<String>> {
        if let Some(hit) = self.token_sets.read().get(name) {
            return Arc::clone(hit);
        }
        let value = Arc::new(compute());
        self.token_sets
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&value))
            .clone()
    }

    /// A per-compute name-similarity cache bound to `engine`'s
    /// configuration: local lookups first, the shared cross-matcher cache
    /// on a local miss.
    pub fn name_sim_cache(&self, engine: &NameEngine) -> NameSimCache {
        let fingerprint = format!("{engine:?}");
        let shared = self
            .name_sims
            .lock()
            .entry(fingerprint)
            .or_default()
            .clone();
        NameSimCache {
            shared: Some(shared),
            local: HashMap::new(),
        }
    }

    /// The full similarity matrix of a matcher, computed at most once per
    /// plan execution (concurrent requests block on the first computation).
    /// Returned as a shared handle: consumers that only read (structural
    /// leaf tables, mask application) never copy the matrix.
    pub fn matrix(
        &self,
        name: &str,
        identity: usize,
        compute: impl FnOnce() -> SimMatrix,
    ) -> Arc<SimMatrix> {
        let cell = self.matrix_cell(name, identity);
        Arc::clone(cell.get_or_init(|| Arc::new(compute())))
    }

    /// The cached full matrix of a matcher, if it was already computed.
    pub fn cached_matrix(&self, name: &str, identity: usize) -> Option<Arc<SimMatrix>> {
        let slot = self
            .matrices
            .lock()
            .get(&(name.to_string(), identity))
            .cloned();
        slot.and_then(|cell| cell.get().map(Arc::clone))
    }

    /// The vocabulary inverted index of one schema side (`target_side`
    /// false = source), built at most once per (side, gram length) per
    /// plan execution — repeated `CandidateIndex` stages (e.g. inside an
    /// `Iterate` loop) reuse it.
    pub fn vocab_index(
        &self,
        target_side: bool,
        q: usize,
        compute: impl FnOnce() -> VocabIndex,
    ) -> Arc<VocabIndex> {
        let cell = self
            .indexes
            .lock()
            .entry((target_side, q))
            .or_default()
            .clone();
        Arc::clone(cell.get_or_init(|| Arc::new(compute())))
    }

    fn matrix_cell(&self, name: &str, identity: usize) -> Arc<OnceLock<Arc<SimMatrix>>> {
        self.matrices
            .lock()
            .entry((name.to_string(), identity))
            .or_default()
            .clone()
    }
}

/// A two-level name-pair similarity cache handed to one matcher compute:
/// a lock-free local map in front of the memo's shared cross-matcher map.
/// Without a memo (legacy direct `Matcher::compute` calls) it degrades to
/// the purely local cache the hybrid matchers always used.
pub struct NameSimCache {
    shared: Option<PairSims>,
    local: HashMap<(String, String), f64>,
}

impl NameSimCache {
    /// A purely local cache (no cross-matcher sharing).
    pub fn local() -> NameSimCache {
        NameSimCache {
            shared: None,
            local: HashMap::new(),
        }
    }

    /// The similarity of the name pair `(a, b)`, computing it via
    /// `compute` on a miss of both cache levels.
    pub fn get_or_compute(&mut self, a: &str, b: &str, compute: impl FnOnce() -> f64) -> f64 {
        let key = (a.to_string(), b.to_string());
        if let Some(&v) = self.local.get(&key) {
            return v;
        }
        if let Some(shared) = &self.shared {
            if let Some(&v) = shared.read().get(&key) {
                self.local.insert(key, v);
                return v;
            }
        }
        let v = compute();
        if let Some(shared) = &self.shared {
            shared.write().insert(key.clone(), v);
        }
        self.local.insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn token_sets_compute_once() {
        let memo = MatchMemo::new();
        let calls = AtomicUsize::new(0);
        let mk = || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec!["ship".to_string(), "to".to_string()]
        };
        let a = memo.token_set("shipTo", mk);
        let b = memo.token_set("shipTo", mk);
        assert_eq!(a, b);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn name_sims_share_per_engine_fingerprint() {
        let memo = MatchMemo::new();
        let engine = NameEngine::paper_default();
        let mut c1 = memo.name_sim_cache(&engine);
        assert_eq!(c1.get_or_compute("a", "b", || 0.25), 0.25);
        // A second cache for the same engine sees the shared entry.
        let mut c2 = memo.name_sim_cache(&engine);
        assert_eq!(c2.get_or_compute("a", "b", || panic!("must hit")), 0.25);
        // A differently configured engine does not.
        let other = NameEngine {
            aggregation: crate::combine::Aggregation::Min,
            ..NameEngine::paper_default()
        };
        let mut c3 = memo.name_sim_cache(&other);
        assert_eq!(c3.get_or_compute("a", "b", || 0.75), 0.75);
    }

    #[test]
    fn matrices_key_on_name_and_identity() {
        let memo = MatchMemo::new();
        let m1 = memo.matrix("X", 1, || SimMatrix::new(2, 2));
        assert_eq!(m1.rows(), 2);
        // Same key: cached, the closure must not run.
        memo.matrix("X", 1, || panic!("must hit"));
        assert!(memo.cached_matrix("X", 1).is_some());
        // Same name, different instance: a distinct entry.
        assert!(memo.cached_matrix("X", 2).is_none());
    }
}
