//! # COMA — flexible combination of schema matching approaches
//!
//! A from-scratch Rust implementation of the COMA schema matching system
//! (Hong-Hai Do, Erhard Rahm: *COMA — A system for flexible combination of
//! schema matching approaches*, VLDB 2002).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — schemas as rooted DAGs with containment/reference links,
//! * [`strings`] — approximate string matching (affix, n-gram, edit
//!   distance, soundex) and name tokenization,
//! * [`xml`] / [`sql`] — schema importers for XML Schema and SQL DDL,
//! * [`repo`] — the repository storing schemas, similarity cubes and match
//!   results for reuse,
//! * [`core`] — the matcher library, combination framework and match
//!   processing (the paper's contribution),
//! * [`eval`] — quality metrics, the purchase-order evaluation corpus and
//!   the experiment harness reproducing the paper's study.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use coma_core as core;
pub use coma_eval as eval;
pub use coma_graph as graph;
pub use coma_repo as repo;
pub use coma_sql as sql;
pub use coma_strings as strings;
pub use coma_xml as xml;
