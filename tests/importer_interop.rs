//! Integration tests of the import substrates against the graph layer:
//! both importers must produce graphs with consistent path semantics, and
//! the matchers must treat them uniformly.

use coma::graph::{DataType, PathSet, SchemaStats};

#[test]
fn relational_and_xml_imports_are_structurally_uniform() {
    let sql = coma::sql::import_ddl(
        "CREATE TABLE S.Orders (id INT PRIMARY KEY, placed DATE);
         CREATE TABLE S.Lines (no INT, ord INT REFERENCES S.Orders, qty DECIMAL(8,2));",
        "SQL",
    )
    .expect("ddl imports");
    let xml = coma::xml::import_xsd(
        r#"<schema>
             <element name="XML"><complexType><sequence>
               <element name="Orders"><complexType><sequence>
                 <element name="id" type="xsd:int"/>
                 <element name="placed" type="xsd:date"/>
               </sequence></complexType></element>
               <element name="Lines"><complexType><sequence>
                 <element name="no" type="xsd:int"/>
                 <element name="ord" type="xsd:IDREF"/>
                 <element name="qty" type="xsd:decimal"/>
               </sequence></complexType></element>
             </sequence></complexType></element>
           </schema>"#,
        "XML",
    )
    .expect("xsd imports");

    let sp = PathSet::new(&sql).expect("sql paths");
    let xp = PathSet::new(&xml).expect("xml paths");
    // Same shape: root + 2 tables/elements + 5 columns/leaves.
    assert_eq!(SchemaStats::compute(&sql, &sp).nodes, 8);
    assert_eq!(SchemaStats::compute(&xml, &xp).nodes, 8);
    assert_eq!(sp.max_depth(), 3);
    assert_eq!(xp.max_depth(), 3);

    // Generic datatypes line up across source languages.
    let sql_qty = sp.find_by_full_name(&sql, "SQL.Lines.qty").expect("path");
    let xml_qty = xp.find_by_full_name(&xml, "XML.Lines.qty").expect("path");
    assert_eq!(
        sql.node(sp.node_of(sql_qty)).datatype,
        Some(DataType::Decimal)
    );
    assert_eq!(
        xml.node(xp.node_of(xml_qty)).datatype,
        Some(DataType::Decimal)
    );
}

#[test]
fn cross_language_matching_works_out_of_the_box() {
    let sql = coma::sql::import_ddl(
        "CREATE TABLE S.Customer (custNo INT, custName VARCHAR(80));",
        "SQL",
    )
    .expect("ddl imports");
    let xml = coma::xml::import_xsd(
        r#"<schema><element name="XML"><complexType><sequence>
             <element name="Buyer"><complexType><sequence>
               <element name="buyerNumber" type="xsd:int"/>
               <element name="buyerName" type="xsd:string"/>
             </sequence></complexType></element>
           </sequence></complexType></element></schema>"#,
        "XML",
    )
    .expect("xsd imports");
    let mut coma = coma::core::Coma::new();
    coma.aux_mut().synonyms.add_synonym("customer", "buyer");
    let outcome = coma
        .match_schemas(&sql, &xml, &coma::core::MatchStrategy::paper_default())
        .expect("match runs");
    let sp = PathSet::new(&sql).expect("paths");
    let xp = PathSet::new(&xml).expect("paths");
    let cust_name = sp
        .find_by_full_name(&sql, "SQL.Customer.custName")
        .expect("path");
    let buyer_name = xp
        .find_by_full_name(&xml, "XML.Buyer.buyerName")
        .expect("path");
    assert!(outcome.result.contains(cust_name, buyer_name));
}

#[test]
fn corpus_xsd_sources_reimport_identically() {
    // The corpus is import-stable: parsing the same source twice yields
    // identical graphs (determinism of the whole import substrate).
    for i in 0..5 {
        let src = coma::eval::corpus::xsd_source(i);
        let a = coma::xml::import_xsd(src, "X").expect("imports");
        let b = coma::xml::import_xsd(src, "X").expect("imports");
        assert_eq!(a, b);
    }
}
