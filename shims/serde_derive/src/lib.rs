//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are registry crates and unavailable offline). Supports the item
//! shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (any arity),
//! * unit structs,
//! * enums whose variants are unit or tuple variants.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! hitting one is a compile error rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Map(::std::vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Seq(::std::vec![{}])\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![\
                           (::serde::Value::Str(::std::string::String::from(\"{v}\")), \
                            ::serde::Serialize::to_value(x0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                               (::serde::Value::Str(::std::string::String::from(\"{v}\")), \
                                ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let entries = value.as_map().ok_or_else(|| \
                       ::serde::DeError::custom(\"expected map for struct `{name}`\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(" ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let items = value.as_seq().ok_or_else(|| \
                       ::serde::DeError::custom(\"expected sequence for `{name}`\"))?;\n\
                     if items.len() != {arity} {{\n\
                       return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"wrong tuple arity for `{name}`\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(_value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name})\n\
               }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                               ::serde::Deserialize::from_value(payload)?)),"
                        )
                    } else {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                               let items = payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected payload sequence\"))?;\n\
                               if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                   \"wrong payload arity for `{name}::{v}`\"));\n\
                               }}\n\
                               ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match value {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                           ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                       }},\n\
                       ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, payload) = &entries[0];\n\
                         match key.as_str().unwrap_or(\"\") {{\n\
                           {}\n\
                           other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                       }}\n\
                       other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected variant of `{name}`, got {{}}\", other.kind()))),\n\
                     }}\n\
                   }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// --- item parsing --------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute: pound + bracket group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` restriction group.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        // Consume the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                // `->` in fn-pointer types: skip the arrow's `>` as a pair.
                '-' => {
                    if matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>')
                    {
                        *i += 1;
                    }
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of top-level comma-separated fields in a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// `(variant name, payload arity)` pairs of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim does not support struct variant `{name}`");
            }
            _ => 0,
        };
        variants.push((name, arity));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
