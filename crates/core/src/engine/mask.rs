//! Search-space restriction between plan stages.

use super::plan::TopKPer;
use crate::cube::SimMatrix;
use crate::result::MatchResult;

/// A bitset over the `m × n` element-pair space of a match task, used by
/// [`Seq`](super::MatchPlan::Seq) to restrict a later stage to the pairs an
/// earlier stage selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl PairMask {
    /// An all-disallowed mask for an `rows × cols` task.
    pub fn new(rows: usize, cols: usize) -> PairMask {
        PairMask {
            rows,
            cols,
            bits: vec![0; (rows * cols).div_ceil(64)],
        }
    }

    /// The mask of the pairs a stage result selected.
    pub fn from_result(rows: usize, cols: usize, result: &MatchResult) -> PairMask {
        let mut mask = PairMask::new(rows, cols);
        for c in &result.candidates {
            mask.allow(c.source.index(), c.target.index());
        }
        mask
    }

    /// The mask keeping, per row / column / both (union), only the `k`
    /// best nonzero cells of `matrix`. Ranking uses the same comparator as
    /// candidate selection (descending similarity, ties to the lower
    /// index), so the mask is deterministic and consistent with it.
    /// Storage agnostic: sparse matrices are ranked from their stored
    /// entries (zeros are never kept, so the outcome is identical to the
    /// dense scan).
    pub fn top_k_of(matrix: &SimMatrix, k: usize, per: TopKPer) -> PairMask {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut mask = PairMask::new(rows, cols);
        let mut ranked: Vec<(usize, f64)> = Vec::with_capacity(rows.max(cols));
        if per != TopKPer::Col {
            for i in 0..rows {
                ranked.clear();
                if matrix.is_sparse() {
                    ranked.extend(matrix.row_entries(i).filter(|&(_, v)| v > 0.0));
                } else {
                    ranked.extend(
                        matrix
                            .row(i)
                            .iter()
                            .enumerate()
                            .filter(|&(_, &v)| v > 0.0)
                            .map(|(j, &v)| (j, v)),
                    );
                }
                crate::combine::sort_desc(&mut ranked);
                for &(j, _) in ranked.iter().take(k) {
                    mask.allow(i, j);
                }
            }
        }
        if per != TopKPer::Row {
            if matrix.is_sparse() {
                // Column-wise ranking scans CSR rows once and buckets by
                // column (per column, rows arrive ascending — the same
                // candidate order as the dense column scan).
                let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cols];
                for i in 0..rows {
                    for (j, v) in matrix.row_entries(i).filter(|&(_, v)| v > 0.0) {
                        by_col[j].push((i, v));
                    }
                }
                for (j, mut col_ranked) in by_col.into_iter().enumerate() {
                    crate::combine::sort_desc(&mut col_ranked);
                    for &(i, _) in col_ranked.iter().take(k) {
                        mask.allow(i, j);
                    }
                }
            } else {
                // Dense: strided per-column scan with one reused buffer —
                // no transient copy of the whole matrix's nonzero cells.
                for j in 0..cols {
                    ranked.clear();
                    ranked.extend(
                        (0..rows)
                            .map(|i| (i, matrix.get(i, j)))
                            .filter(|&(_, v)| v > 0.0),
                    );
                    crate::combine::sort_desc(&mut ranked);
                    for &(i, _) in ranked.iter().take(k) {
                        mask.allow(i, j);
                    }
                }
            }
        }
        mask
    }

    /// Number of source elements (`m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target elements (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Allows the pair (source `i`, target `j`).
    pub fn allow(&mut self, i: usize, j: usize) {
        let cell = i * self.cols + j;
        self.bits[cell / 64] |= 1 << (cell % 64);
    }

    /// Whether the pair (source `i`, target `j`) is in the search space.
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        let cell = i * self.cols + j;
        self.bits[cell / 64] & (1 << (cell % 64)) != 0
    }

    /// Number of allowed pairs.
    pub fn allowed_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no pair is allowed.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The allowed column indices of row `i`, ascending.
    pub fn allowed_in_row(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.cols).filter(move |&j| self.allows(i, j))
    }

    /// The fraction of the pair space this mask allows (0 for an empty
    /// task). The engine uses it to decide between the sparse and the
    /// dense (compute-full-then-mask) execution path.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.allowed_count() as f64 / cells as f64
        }
    }

    /// The intersection with another mask of the same dimensions.
    pub fn intersect(&self, other: &PairMask) -> PairMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask dimensions must agree"
        );
        PairMask {
            rows: self.rows,
            cols: self.cols,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Zeroes every disallowed cell of `matrix` in place (storage
    /// preserving: dense cells are overwritten, sparse entries dropped).
    pub fn apply(&self, matrix: &mut SimMatrix) {
        debug_assert_eq!((matrix.rows(), matrix.cols()), (self.rows, self.cols));
        matrix.retain_cells(|i, j| self.allows(i, j));
    }

    /// A copy of `full` with every disallowed cell zeroed, keeping the
    /// input's storage mode.
    pub fn masked_clone(&self, full: &SimMatrix) -> SimMatrix {
        let mut out = full.clone();
        self.apply(&mut out);
        out
    }

    /// A **sparse-stored** copy of `full` holding only the allowed nonzero
    /// cells — mask application without ever materializing (or cloning) a
    /// dense `rows × cols` buffer. This is how the engine converts a
    /// stage's matrices to sparse storage once the stage mask's
    /// [`density`](PairMask::density) says the pair space has been pruned.
    pub fn masked_sparse(&self, full: &SimMatrix) -> SimMatrix {
        debug_assert_eq!((full.rows(), full.cols()), (self.rows, self.cols));
        // Empty pair space (a 0 × n / m × 0 task, or a zero-row shard):
        // nothing to scan, and `density()` reports 0.0 for it, so the
        // sparse path must handle it without touching `full`'s rows.
        if self.rows == 0 || self.cols == 0 {
            return SimMatrix::sparse(self.rows, self.cols);
        }
        let mut b = crate::cube::SparseBuilder::new(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in full.row_entries(i) {
                if self.allows(i, j) {
                    b.push(i, j, v);
                }
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_and_query() {
        let mut mask = PairMask::new(3, 70); // spans multiple words
        assert!(mask.is_empty());
        mask.allow(0, 0);
        mask.allow(2, 69);
        assert!(mask.allows(0, 0));
        assert!(mask.allows(2, 69));
        assert!(!mask.allows(1, 1));
        assert_eq!(mask.allowed_count(), 2);
    }

    #[test]
    fn apply_zeroes_disallowed_cells() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 0.8);
        m.set(0, 1, 0.6);
        m.set(1, 1, 0.4);
        let mut mask = PairMask::new(2, 2);
        mask.allow(0, 1);
        let masked = mask.masked_clone(&m);
        assert_eq!(masked.get(0, 0), 0.0);
        assert_eq!(masked.get(0, 1), 0.6);
        assert_eq!(masked.get(1, 1), 0.0);
        // The original is untouched.
        assert_eq!(m.get(0, 0), 0.8);
    }

    #[test]
    fn top_k_of_keeps_best_cells_per_side() {
        let mut m = SimMatrix::new(2, 3);
        m.set(0, 0, 0.9);
        m.set(0, 1, 0.5);
        m.set(0, 2, 0.7);
        m.set(1, 0, 0.8);
        m.set(1, 1, 0.6);
        // Per row, k = 1: each source keeps its single best target.
        let rows = PairMask::top_k_of(&m, 1, TopKPer::Row);
        assert!(rows.allows(0, 0) && rows.allows(1, 0));
        assert_eq!(rows.allowed_count(), 2);
        // Per column, k = 1: each target keeps its single best source.
        let cols = PairMask::top_k_of(&m, 1, TopKPer::Col);
        assert!(cols.allows(0, 0)); // col 0: 0.9 beats 0.8
        assert!(cols.allows(1, 1)); // col 1: 0.6 beats 0.5
        assert!(cols.allows(0, 2)); // col 2: only nonzero cell
        assert_eq!(cols.allowed_count(), 3);
        // Both = union: every element of either side keeps its best.
        let both = PairMask::top_k_of(&m, 1, TopKPer::Both);
        for (i, j) in [(0, 0), (1, 0), (1, 1), (0, 2)] {
            assert!(both.allows(i, j), "({i},{j})");
        }
        assert_eq!(both.allowed_count(), 4);
        // Zero cells are never kept, and k larger than the row is fine.
        let all = PairMask::top_k_of(&m, 10, TopKPer::Both);
        assert_eq!(all.allowed_count(), 5);
        assert!(!all.allows(1, 2));
    }

    #[test]
    fn row_iteration_and_density() {
        let mut mask = PairMask::new(2, 70);
        mask.allow(0, 3);
        mask.allow(0, 69);
        mask.allow(1, 0);
        assert_eq!(mask.allowed_in_row(0).collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(mask.allowed_in_row(1).collect::<Vec<_>>(), vec![0]);
        assert!((mask.density() - 3.0 / 140.0).abs() < 1e-12);
        assert_eq!(PairMask::new(0, 0).density(), 0.0);
    }

    #[test]
    fn masked_sparse_agrees_with_masked_clone() {
        let mut m = SimMatrix::new(2, 3);
        m.set(0, 0, 0.8);
        m.set(0, 2, 0.6);
        m.set(1, 1, 0.4);
        let mut mask = PairMask::new(2, 3);
        mask.allow(0, 2);
        mask.allow(1, 1);
        mask.allow(1, 2); // allowed but zero: never stored sparsely
        let sparse = mask.masked_sparse(&m);
        assert!(sparse.is_sparse());
        assert_eq!(sparse.stored_entries(), 2);
        assert_eq!(sparse, mask.masked_clone(&m));
        // Applying to an already-sparse matrix drops entries in place.
        let mut s = m.to_sparse();
        mask.apply(&mut s);
        assert!(s.is_sparse());
        assert_eq!(s, sparse);
        // Sparse input to masked_sparse works too.
        assert_eq!(mask.masked_sparse(&m.to_sparse()), sparse);
    }

    #[test]
    fn fully_dense_mask_roundtrips_losslessly() {
        // A mask allowing the whole pair space: masked_sparse is the
        // identity (up to storage), in both directions.
        let mut m = SimMatrix::new(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                m.set(i, j, 0.1 + (i * 2 + j) as f64 / 10.0);
            }
        }
        let mut all = PairMask::new(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                all.allow(i, j);
            }
        }
        assert_eq!(all.density(), 1.0);
        let sparse = all.masked_sparse(&m);
        assert!(sparse.is_sparse());
        assert_eq!(sparse.stored_entries(), 6);
        assert_eq!(sparse, m);
        assert_eq!(sparse.to_dense(), m);
        assert_eq!(all.masked_sparse(&sparse), m);
    }

    #[test]
    fn top_k_of_is_storage_agnostic() {
        let mut m = SimMatrix::new(3, 4);
        m.set(0, 0, 0.9);
        m.set(0, 2, 0.7);
        m.set(1, 0, 0.8);
        m.set(1, 3, 0.5);
        m.set(2, 2, 0.7); // tie with (0,2): lower row index wins per column
        let s = m.to_sparse();
        for per in [TopKPer::Row, TopKPer::Col, TopKPer::Both] {
            for k in 1..=3 {
                let dense_mask = PairMask::top_k_of(&m, k, per);
                let sparse_mask = PairMask::top_k_of(&s, k, per);
                assert_eq!(dense_mask, sparse_mask, "k={k} per={per}");
            }
        }
    }

    #[test]
    fn intersection_keeps_common_pairs() {
        let mut a = PairMask::new(2, 2);
        a.allow(0, 0);
        a.allow(1, 1);
        let mut b = PairMask::new(2, 2);
        b.allow(1, 1);
        b.allow(0, 1);
        let both = a.intersect(&b);
        assert!(both.allows(1, 1));
        assert!(!both.allows(0, 0));
        assert_eq!(both.allowed_count(), 1);
    }
}
