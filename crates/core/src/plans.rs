//! Canonical staged match plans shared by the benchmarks, the CI perf
//! gate, the CLI and the server's wire-level plan specs — so the numbers
//! humans read, the numbers CI gates, and the plans the service executes
//! all come from the same constructions.

use crate::combine::{CombinationStrategy, Direction, Selection};
use crate::engine::{MatchPlan, TopKPer};
use crate::process::MatchStrategy;

/// The TopK-pruned two-stage plan the sparse execution path is built
/// for: a liberal `Name` stage pruned to the `k` best candidates per
/// element, then the paper-default `All` refine on the survivors.
pub fn topk_pruned_plan(k: usize) -> MatchPlan {
    MatchPlan::seq(
        liberal_name_stage()
            .top_k(k, TopKPer::Both)
            .expect("k > 0 by construction"),
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// The liberal `Name` first stage of [`topk_pruned_plan`], standalone:
/// an unrestricted (dense) full-cross-product computation — exactly the
/// stage the engine's row-sharded execution targets, and the cheap
/// filter to put in front of an expensive refine on any large task.
pub fn liberal_name_stage() -> MatchPlan {
    let mut liberal = CombinationStrategy::paper_default();
    liberal.selection = Selection::max_n(10).with_threshold(0.3);
    MatchPlan::matchers_with(["Name"], liberal)
}

/// The inverted-index retrieve→rerank→refine plan: candidate generation
/// from shared token/q-gram postings (capped at `cap` candidates per
/// element, union over both sides), the masked liberal `Name` re-rank
/// pruned to the same per-element budget, then the paper-default `All`
/// refine on the survivors. No stage ever scores the m×n cross product.
pub fn candidate_index_plan(cap: usize) -> MatchPlan {
    MatchPlan::seq(
        candidate_index_stage(cap),
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// The first stage of [`candidate_index_plan`], standalone: inverted-
/// index retrieval (capped at `cap` per element) feeding the masked
/// liberal `Name` re-rank pruned to the `cap` best per element. This is
/// exactly the candidate set the plan's refine gets to see, which is why
/// the perf gate's recall check scores this stage against the exact
/// prefilter.
pub fn candidate_index_stage(cap: usize) -> MatchPlan {
    MatchPlan::seq(
        MatchPlan::candidate_index_with(1, 0.0, 3, Some(cap)).expect("valid parameters"),
        liberal_name_stage()
            .top_k(cap, TopKPer::Both)
            .expect("cap > 0 by construction"),
    )
}

/// Like [`topk_pruned_plan`], but skipping constructor validation:
/// degenerate parameters (`k == 0`) survive construction, so a
/// pre-execution analyzer can report them as structured diagnostics with
/// real node paths (`Seq[0].TopK`) instead of a constructor error losing
/// the position. Never execute an unvalidated plan directly.
pub fn topk_pruned_plan_raw(k: usize) -> MatchPlan {
    MatchPlan::seq(
        MatchPlan::TopK {
            input: Box::new(liberal_name_stage()),
            k,
            per: TopKPer::Both,
        },
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// Like [`candidate_index_plan`], but skipping constructor validation —
/// see [`topk_pruned_plan_raw`] for why. A `cap == 0` flows through as
/// both a zero index cap (`Seq[0].Seq[0].CandidateIndex`) and a zero
/// `TopK` (`Seq[0].Seq[1].TopK`).
pub fn candidate_index_plan_raw(cap: usize) -> MatchPlan {
    MatchPlan::seq(
        MatchPlan::seq(
            MatchPlan::CandidateIndex {
                min_shared_tokens: 1,
                min_score: 0.0,
                q: 3,
                per_element: Some(cap),
            },
            MatchPlan::TopK {
                input: Box::new(liberal_name_stage()),
                k: cap,
                per: TopKPer::Both,
            },
        ),
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// The streaming-fused pruning plan large-task memory ceilings are
/// measured on: a liberal `Name` stage whose threshold `Filter` fuses
/// with the compute, so each row shard is pruned as it is produced and
/// the full dense matrix is never allocated. A `Filter` (not `TopK`)
/// deliberately: `TopK` materializes an `m × n` pair-mask bitset, which
/// at 100k × 100k would itself be > 1 GiB.
pub fn fused_filter_plan() -> MatchPlan {
    let mut liberal = CombinationStrategy::paper_default();
    liberal.selection = Selection::max_n(10).with_threshold(0.3);
    MatchPlan::matchers_with(["Name"], liberal)
        .filtered(Direction::Both, Selection::max_n(5).with_threshold(0.3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_validate_against_the_standard_library() {
        let lib = crate::matchers::MatcherLibrary::standard();
        for plan in [
            topk_pruned_plan(5),
            liberal_name_stage(),
            candidate_index_plan(5),
            candidate_index_stage(5),
            fused_filter_plan(),
        ] {
            plan.validate(&lib).unwrap();
        }
    }

    #[test]
    fn raw_plans_let_defects_through_to_validation() {
        assert!(topk_pruned_plan_raw(5).validate_shape().is_ok());
        let err = topk_pruned_plan_raw(0).validate_shape().unwrap_err();
        assert_eq!(err.path(), "Seq[0].TopK");
        assert!(candidate_index_plan_raw(5).validate_shape().is_ok());
        let err = candidate_index_plan_raw(0).validate_shape().unwrap_err();
        assert_eq!(err.path(), "Seq[0].Seq[0].CandidateIndex");
    }
}
