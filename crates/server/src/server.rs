//! The unix-socket server loop.
//!
//! One accept loop, one scoped thread per connection, blocking I/O per
//! session: a session reads length-prefixed requests and writes one
//! response per request until the peer closes. The listener itself is
//! non-blocking so the loop can observe a `Shutdown` request between
//! accepts; [`std::thread::scope`] guarantees every in-flight session
//! finishes before [`Server::serve`] returns (graceful drain).

use crate::protocol::{read_message, write_message, Request, Response};
use crate::state::ServerState;
use parking_lot::Mutex;
use std::io;
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A bound, not-yet-serving matching service.
pub struct Server {
    listener: UnixListener,
    state: Arc<ServerState>,
    socket_path: PathBuf,
}

impl Server {
    /// Binds the service to a unix socket path, removing a stale socket
    /// file from a previous process first (connecting to it would fail
    /// anyway — the listener died with that process).
    pub fn bind(socket_path: impl AsRef<Path>, state: ServerState) -> io::Result<Server> {
        let socket_path = socket_path.as_ref().to_path_buf();
        if socket_path.exists() {
            std::fs::remove_file(&socket_path)?;
        }
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            state: Arc::new(state),
            socket_path,
        })
    }

    /// The shared state (for in-process embedding, e.g. the throughput
    /// benchmark and the integration tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Serves until a `Shutdown` request arrives, then drains in-flight
    /// sessions and removes the socket file. Accept errors other than
    /// `WouldBlock` are returned (the loop cannot recover from a dead
    /// listener).
    ///
    /// The drain must not wait on clients that are merely idle: shutdown
    /// closes the *read* half of every live session, so a session blocked
    /// waiting for its next request sees EOF and exits, while a session
    /// mid-request can still write its response (including the
    /// `ShuttingDown` reply itself) before the scope joins it.
    pub fn serve(&self) -> io::Result<()> {
        let live: Mutex<Vec<Arc<UnixStream>>> = Mutex::new(Vec::new());
        let result = std::thread::scope(|scope| loop {
            if self.state.shutdown_requested() {
                for session in live.lock().iter() {
                    session.shutdown(Shutdown::Read).ok();
                }
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let stream = Arc::new(stream);
                    live.lock().push(Arc::clone(&stream));
                    let state = Arc::clone(&self.state);
                    let live = &live;
                    scope.spawn(move || {
                        handle_connection(&stream, &state);
                        live.lock().retain(|s| !Arc::ptr_eq(s, &stream));
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        });
        std::fs::remove_file(&self.socket_path).ok();
        result
    }
}

/// One session: request frames in, response frames out, until EOF, an
/// I/O error, or a `Shutdown` request. The stream is switched back to
/// blocking mode (it inherits non-blocking from the listener on some
/// platforms).
fn handle_connection(stream: &UnixStream, state: &ServerState) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let (mut reader, mut writer) = (stream, stream);
    loop {
        let request: Request = match read_message(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF
            Err(_) => return,
        };
        let stop = matches!(request, Request::Shutdown);
        let response: Response = state.handle(request);
        if write_message(&mut writer, &response).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}
