//! The match-plan execution engine.
//!
//! [`PlanEngine`] executes a [`MatchPlan`] operator tree over one match
//! task. Compared to the legacy "loop over matcher names, then combine"
//! pipeline it adds the following, while producing identical results for
//! flat plans (see `ARCHITECTURE.md` at the repository root for the
//! system-wide picture):
//!
//! * **parallel leaf fan-out** — the independent matchers of a
//!   [`MatchPlan::Matchers`] leaf run on scoped threads (capped by the
//!   machine's available parallelism), with slices assembled in
//!   declaration order so results stay deterministic;
//! * **row-sharded dense execution** — an unrestricted (full
//!   cross-product) compute of a
//!   [`row_shardable`](crate::Matcher::row_shardable) matcher is split
//!   into contiguous row ranges ([`shard_ranges`]) computed via
//!   [`compute_rows`](crate::Matcher::compute_rows) on scoped threads and
//!   stitched back together ([`SimMatrix::from_row_shards`]) —
//!   bit-identical to the single-shard computation for any shard count
//!   ([`EngineConfig::shards`] forces one; property-tested);
//! * **streaming-fused pruning** — a prunable stage
//!   (`TopK { input: Matchers, .. }` or a thresholded
//!   `Filter { input: Matchers, .. }`) over an *unrestricted* context
//!   fuses compute→prune inside each row shard: every matcher computes
//!   one shard via `compute_rows`, the shard cube is aggregated and the
//!   leaf's selection applied immediately, and only the surviving cells
//!   are assembled (CSR fragments joined by
//!   [`SimMatrix::from_row_shards`]) — the full dense matrix is never
//!   allocated, and the result is bit-identical to the unfused path
//!   (property-tested; see [`EngineConfig::fuse_pruning`]). Fused stages
//!   report [`StageOutcome::fused`] and skip materializing the inner
//!   `Matchers` stage;
//! * **memoized shared work** — a per-execution [`MatchMemo`] caches
//!   tokenizations, name-pair similarities and per-matcher matrices, so
//!   hybrids and overlapping sub-plans stop recomputing constituents (with
//!   the standard library, the `All` strategy computes the `TypeName`
//!   matrix once instead of three times); memoized matrices are shared by
//!   `Arc`, so an unrestricted stage's cube slice aliases the memo's
//!   allocation instead of cloning it;
//! * **staged execution** — `Seq` restricts a later stage's search space
//!   to an earlier stage's survivors via [`PairMask`], `Par` aggregates
//!   independent sub-plans, `Filter` re-selects mid-pipeline, `TopK`
//!   prunes to the k best candidates per element, `Iterate` re-runs a
//!   sub-plan to a fixpoint — and every stage still materializes a
//!   [`SimCube`] so repository storage and evaluation re-combination keep
//!   working;
//! * **sparse execution** — once a restriction survives a `TopK`/`Seq`
//!   stage, [`sparse_capable`](crate::Matcher::sparse_capable) matchers
//!   (the structural `Children`/`Leaves`) compute set similarities only
//!   for the allowed pairs and their recursive dependencies instead of
//!   the full cross-product, with bit-identical results
//!   ([`EngineConfig::sparse`] switches the path off for comparison);
//! * **sub-linear candidate generation** — a
//!   [`MatchPlan::CandidateIndex`] leaf retrieves its candidate pairs
//!   from per-side vocabulary inverted indexes ([`VocabIndex`]: token
//!   postings with synonym expansion, plus q-gram postings for fuzzy
//!   recall) in time proportional to posting traffic — as the filter
//!   side of a `Seq`, the first stage never touches the `m × n` cross
//!   product at all (every other mode above still computes it at least
//!   once);
//! * **sparse storage** — the same density decision picks each restricted
//!   stage's physical [`SimMatrix`] representation: below the cutoff,
//!   matcher slices, `TopK`-pruned matrices and pair matrices are stored
//!   CSR (holding only the surviving cells) instead of as dense `m × n`
//!   buffers, which is what keeps 5k–50k-node tasks inside a sane memory
//!   budget. Storage is invisible to consumers: equality, aggregation,
//!   selection and serialization are all value-based.
//!
//! Building and executing a pruned plan end to end:
//!
//! ```
//! use coma_core::{Coma, MatchPlan, MatchStrategy, PlanEngine, TopKPer};
//! use coma_graph::PathSet;
//!
//! let po1 = coma_sql::import_ddl(
//!     "CREATE TABLE PO.Customer (custNo INT, custName VARCHAR(200));",
//!     "PO1",
//! ).unwrap();
//! let po2 = coma_sql::import_ddl(
//!     "CREATE TABLE PO.Buyer (buyerNo INT, buyerName VARCHAR(100));",
//!     "PO2",
//! ).unwrap();
//!
//! // Keep each element's 2 best Name candidates, then refine the
//! // survivors with the paper-default hybrid combination.
//! let plan = MatchPlan::seq(
//!     MatchPlan::matchers(["Name"]).top_k(2, TopKPer::Both)?,
//!     MatchPlan::from(&MatchStrategy::paper_default()),
//! );
//!
//! let mut coma = Coma::new();
//! coma.aux_mut().synonyms.add_synonym("customer", "buyer");
//! let outcome = coma.match_plan(&po1, &po2, &plan).unwrap();
//! // The TopK stage fused compute→prune per row shard, so the inner
//! // Name stage was never materialized: TopK and refine remain.
//! assert_eq!(outcome.stages.len(), 2);
//! assert!(outcome.stages[0].fused);
//!
//! // The pruned stages store their cubes sparse; the stage labels spell
//! // out the executed plan.
//! assert!(outcome.stages[1].cube.all_sparse());
//! assert!(outcome.stages[0].label.starts_with("TopK("));
//! assert!(!outcome.result.is_empty());
//! # let _ = PathSet::new(&po1).unwrap();
//! # Ok::<(), coma_core::PlanError>(())
//! ```

mod analyze;
mod cache;
mod index;
mod mask;
mod memo;
mod plan;

pub use analyze::{
    human_bytes, NodeFacts, PlanAnalysis, PlanAnalyzer, PlanDiagnostic, Severity, TaskStats, Tri,
};
pub use cache::{schema_fingerprint, CacheStats, EngineCache, ScopeWarmth};
pub use index::{CandidateParams, CandidateScorer, IndexStats, VocabIndex};
pub use mask::PairMask;
pub use memo::{matcher_identity, MatchMemo, NameSimCache};
pub use plan::{MatchPlan, PlanError, PlanErrorKind, TopKPer};

use crate::combine::{
    directional_wants, rank_entries, sort_desc, CombinationStrategy, DirectedCandidates,
};
use crate::cube::{SimCube, SimMatrix, SparseBuilder};
use crate::error::{CoreError, Result};
use crate::matchers::context::MatchContext;
use crate::matchers::{Matcher, MatcherLibrary};
use crate::process::{combine_cube_with_feedback, MatchOutcome};
use crate::result::MatchResult;
use crate::reuse::{ReuseResolver, ReuseStats};
use std::sync::Arc;

/// One materialized stage of a plan execution: the cube of similarity
/// slices the stage computed and the match result it selected.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The plan-grammar label of the node that produced this stage.
    pub label: String,
    /// The stage's similarity cube (one slice per matcher or sub-plan).
    pub cube: SimCube,
    /// The stage's selected match result.
    pub result: MatchResult,
    /// The largest number of row shards any of this stage's matcher
    /// slices was computed in (see [`EngineConfig::shards`]): `1` for
    /// unsharded, memoized-hit and non-leaf stages. Masked stages are
    /// never sharded themselves, but report the shard count of a fresh
    /// full compute they triggered (a non-cell-local matcher whose full
    /// matrix was computed, memoized, then masked). A fused stage
    /// reports the number of row shards its streaming pipeline pruned.
    /// Surfaced by `coma-cli --verbose`.
    pub shards: usize,
    /// Whether this stage executed as a fused compute→prune pipeline
    /// (see [`EngineConfig::fuse_pruning`]): the stage's input leaf was
    /// computed, aggregated and pruned shard by shard, no inner
    /// `Matchers` stage was materialized, and the full dense similarity
    /// matrix never existed. The stage's cube holds only the surviving
    /// cells (its stored-entry count is the real memory footprint).
    pub fused: bool,
    /// Index build/traffic statistics when this stage was a
    /// [`MatchPlan::CandidateIndex`] leaf (surfaced by
    /// `coma-cli --verbose`); `None` for every other stage kind.
    pub index_stats: Option<IndexStats>,
    /// Pivot-path diagnostics when this stage was a [`MatchPlan::Reuse`]
    /// leaf — which chains were found, how they scored, which was chosen
    /// (surfaced by `coma-cli --verbose`); `None` for every other stage
    /// kind. Empty `paths` means the repository held no pivot path and
    /// the stage contributed a zero slice.
    pub reuse_stats: Option<ReuseStats>,
}

/// The outcome of executing a plan: the final match result plus every
/// materialized stage (the last stage belongs to the plan's root node).
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The root node's match result.
    pub result: MatchResult,
    /// All stages in completion order; the root's stage is last.
    pub stages: Vec<StageOutcome>,
}

impl PlanOutcome {
    /// The root stage's cube (empty if the plan produced no stage).
    pub fn final_cube(&self) -> Option<&SimCube> {
        self.stages.last().map(|s| &s.cube)
    }

    /// Converts into the legacy [`MatchOutcome`] shape: the final result
    /// plus the root stage's cube.
    pub fn into_outcome(mut self) -> MatchOutcome {
        let cube = self.stages.pop().map(|s| s.cube).unwrap_or_default();
        MatchOutcome {
            result: self.result,
            cube,
        }
    }
}

/// The engine's execution configuration: every knob [`PlanEngine`]
/// honors, as one value object (constructed via [`Default`] plus the
/// `with_*` builder methods, or as a struct literal — all fields are
/// public). This is what a future plan optimizer emits per task instead
/// of a chain of engine setters; [`PlanEngine::with_config`] and
/// `Coma::match_plan_with` take it whole.
///
/// The default configuration enables everything: parallel fan-out,
/// automatic row sharding, the sparse path, and streaming-fused pruning.
///
/// ```
/// use coma_core::EngineConfig;
///
/// let cfg = EngineConfig::default().with_parallel(false).with_shards(4);
/// assert!(cfg.sparse && cfg.fuse_pruning);
/// assert_eq!(cfg.shards, Some(4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Parallel leaf fan-out and threaded row-sharded execution; results
    /// are identical either way (determinism is property-tested).
    pub parallel: bool,
    /// The sparse path: sparse *execution* of
    /// [`sparse_capable`](crate::Matcher::sparse_capable) matchers under
    /// a restriction, sparse (CSR) *storage* of pruned stages' matrices,
    /// and a prerequisite for [`fuse_pruning`](EngineConfig::fuse_pruning).
    /// Disabling it forces dense, full-cross-product execution — the
    /// comparison oracle, value-identical to the sparse path.
    pub sparse: bool,
    /// Forced row-shard count for unrestricted computes; `None` sizes
    /// shards automatically (from available parallelism for plain
    /// dense stages, from [`min_shard_rows`](EngineConfig::min_shard_rows)
    /// for fused ones). Clamped to at least 1 and at most the task's row
    /// count, so no shard is ever empty.
    pub shards: Option<usize>,
    /// Streaming-fused execution of prunable stages (`TopK` or a
    /// pruning `Filter` directly over a `Matchers` leaf, unrestricted,
    /// no feedback pinned, every matcher
    /// [`row_shardable`](crate::Matcher::row_shardable), and a leaf
    /// selection that actually prunes): compute → aggregate → select
    /// runs inside each row shard and only surviving cells are ever
    /// assembled, so peak memory is bounded by the shard size instead
    /// of the `m × n` cross-product. Requires
    /// [`sparse`](EngineConfig::sparse); results are bit-identical to
    /// unfused execution (property-tested).
    pub fuse_pruning: bool,
    /// Masks at most this dense take the sparse execution path — and
    /// their stages' matrices the sparse (CSR) *storage* — while denser
    /// ones compute the full matrix (worth memoizing), mask it, and keep
    /// it dense. One threshold drives both decisions: execution and
    /// storage switch together at the stage boundary, based on
    /// [`PairMask::density`]. Default `0.5`.
    pub sparse_density_cutoff: f64,
    /// Minimum rows per shard in automatic shard sizing: below this, the
    /// per-shard setup (spawn, per-shard similarity tables) outweighs
    /// the row work, so small tasks stay unsharded. Also the fused
    /// pipeline's shard granularity — and thereby its peak-memory unit:
    /// a fused worker holds at most one `min_shard_rows × n` dense slice
    /// per matcher (plus their aggregate) at a time. Default `192`.
    pub min_shard_rows: usize,
    /// Soft cap, in bytes, on the fused pipeline's in-flight dense shard
    /// slices across worker threads: the fused worker count is reduced
    /// (never below 1) so that `workers × shard slice bytes` stays at or
    /// under this budget, keeping fused peak memory machine-independent
    /// instead of scaling with the core count. Default 1 GiB.
    pub fuse_budget_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            parallel: true,
            sparse: true,
            shards: None,
            fuse_pruning: true,
            sparse_density_cutoff: 0.5,
            min_shard_rows: 192,
            fuse_budget_bytes: 1 << 30,
        }
    }
}

impl EngineConfig {
    /// Sets [`parallel`](EngineConfig::parallel).
    pub fn with_parallel(mut self, parallel: bool) -> EngineConfig {
        self.parallel = parallel;
        self
    }

    /// Sets [`sparse`](EngineConfig::sparse).
    pub fn with_sparse(mut self, sparse: bool) -> EngineConfig {
        self.sparse = sparse;
        self
    }

    /// Forces the row-shard count (see [`shards`](EngineConfig::shards));
    /// clamped to at least 1.
    pub fn with_shards(mut self, shards: usize) -> EngineConfig {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets [`fuse_pruning`](EngineConfig::fuse_pruning).
    pub fn with_fuse_pruning(mut self, fuse: bool) -> EngineConfig {
        self.fuse_pruning = fuse;
        self
    }

    /// Sets [`sparse_density_cutoff`](EngineConfig::sparse_density_cutoff).
    pub fn with_sparse_density_cutoff(mut self, cutoff: f64) -> EngineConfig {
        self.sparse_density_cutoff = cutoff;
        self
    }

    /// Sets [`min_shard_rows`](EngineConfig::min_shard_rows); clamped to
    /// at least 1.
    pub fn with_min_shard_rows(mut self, rows: usize) -> EngineConfig {
        self.min_shard_rows = rows.max(1);
        self
    }

    /// Sets [`fuse_budget_bytes`](EngineConfig::fuse_budget_bytes).
    pub fn with_fuse_budget_bytes(mut self, bytes: usize) -> EngineConfig {
        self.fuse_budget_bytes = bytes;
        self
    }
}

/// Splits `rows` into `shards` contiguous, non-empty ranges covering
/// every row exactly once, in row order: the first `rows % shards` ranges
/// hold one extra row. The shard count is clamped to `rows` (never a
/// zero-row shard); `rows == 0` yields no ranges at all.
///
/// This is the row partition behind the engine's sharded dense-stage and
/// fused executions (see [`EngineConfig::shards`]) and is reused by the
/// bench harness for per-shard timing.
pub fn shard_ranges(rows: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, rows);
    let base = rows / shards;
    let extra = rows % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, rows);
    ranges
}

/// The plan execution engine: borrows a matcher library and executes plans
/// against prepared match contexts, honoring an [`EngineConfig`].
pub struct PlanEngine<'l> {
    library: &'l MatcherLibrary,
    cfg: EngineConfig,
}

impl<'l> PlanEngine<'l> {
    /// An engine over the given library with the default configuration
    /// (parallel fan-out, automatic sharding, sparse path and fused
    /// pruning all enabled) — shorthand for
    /// [`with_config`](PlanEngine::with_config) of
    /// [`EngineConfig::default`].
    pub fn new(library: &'l MatcherLibrary) -> PlanEngine<'l> {
        PlanEngine::with_config(library, EngineConfig::default())
    }

    /// An engine over the given library with an explicit configuration.
    pub fn with_config(library: &'l MatcherLibrary, cfg: EngineConfig) -> PlanEngine<'l> {
        PlanEngine { library, cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Whether a stage restricted by `mask` should store its matrices
    /// sparse: the engine's sparse path is on and the mask has pruned the
    /// pair space below the density cutoff.
    fn sparse_storage(&self, mask: &PairMask) -> bool {
        self.cfg.sparse && mask.density() <= self.cfg.sparse_density_cutoff
    }

    /// How many row shards an unrestricted compute over `rows` rows
    /// should use: the forced count when [`EngineConfig::shards`] set
    /// one, otherwise the `budget` of workers this compute may occupy
    /// (`available_parallelism()` divided by the leaf's concurrent
    /// matcher fan-out, so a multi-matcher leaf never oversubscribes the
    /// machine quadratically), bounded so every shard keeps at least
    /// [`EngineConfig::min_shard_rows`] rows. Always 1 when parallelism
    /// is off, and clamped so no shard is ever empty.
    fn planned_shards(&self, rows: usize, budget: usize) -> usize {
        if !self.cfg.parallel || rows == 0 {
            return 1;
        }
        match self.cfg.shards {
            Some(forced) => forced.min(rows),
            None => budget.min(rows.div_ceil(self.cfg.min_shard_rows)).max(1),
        }
    }

    /// One matcher's full (unrestricted) matrix, row-sharded across
    /// scoped threads when the matcher supports it and the task is big
    /// enough — assembled in row order, bit-identical to a single
    /// [`Matcher::compute`] call. Returns the matrix and the number of
    /// shards actually executed. `budget` is the worker budget for
    /// automatic shard sizing (see [`PlanEngine::planned_shards`]).
    fn compute_unrestricted(
        &self,
        ctx: MatchContext<'_>,
        matcher: &Arc<dyn Matcher>,
        budget: usize,
    ) -> (SimMatrix, usize) {
        let shards = self.planned_shards(ctx.rows(), budget);
        if shards <= 1 || !matcher.row_shardable() {
            return (matcher.compute(&ctx), 1);
        }
        let ranges = shard_ranges(ctx.rows(), shards);
        let mut parts: Vec<Option<SimMatrix>> = (0..ranges.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, range) in parts.iter_mut().zip(&ranges) {
                let range = range.clone();
                scope.spawn(move || *slot = Some(matcher.compute_rows(&ctx, range)));
            }
        });
        let shards = ranges.len();
        let matrix = SimMatrix::from_row_shards(
            ctx.cols(),
            parts
                .into_iter()
                .map(|p| p.expect("every shard thread ran to completion"))
                .collect(),
        );
        (matrix, shards)
    }

    /// An `m × n` matrix holding a result's selected pair similarities
    /// (zero elsewhere) — CSR-stored when the engine's sparse path is on
    /// and the selected pairs are sparse in the pair space, dense
    /// otherwise.
    fn pair_matrix(&self, ctx: &MatchContext<'_>, result: &MatchResult) -> SimMatrix {
        let cells = ctx.rows() * ctx.cols();
        let sparse = self.cfg.sparse
            && cells > 0
            && (result.len() as f64 / cells as f64) <= self.cfg.sparse_density_cutoff;
        if sparse {
            SimMatrix::from_entries(
                ctx.rows(),
                ctx.cols(),
                result
                    .candidates
                    .iter()
                    .map(|c| (c.source.index(), c.target.index(), c.similarity)),
            )
        } else {
            pair_matrix_dense(ctx, result)
        }
    }

    /// Executes a plan on a match task. A restriction already present on
    /// `ctx` becomes the root search-space mask.
    ///
    /// Degenerate plan shapes (empty `Matchers`/`Par` nodes, `TopK` with
    /// `k = 0`, `Iterate` with `max_rounds = 0`) fail up front with
    /// [`CoreError::Plan`] instead of panicking mid-execution.
    pub fn execute(&self, ctx: &MatchContext<'_>, plan: &MatchPlan) -> Result<PlanOutcome> {
        self.execute_with_memo(ctx, plan, &MatchMemo::new())
    }

    /// Like [`PlanEngine::execute`], but memoizing through a shared
    /// cross-request [`EngineCache`]: the execution's memo is scoped to
    /// the [`schema_fingerprint`]s of the two sides, so tokenizations,
    /// name-pair similarities, pure matcher matrices and vocabulary
    /// indexes computed by earlier executions against the same schemas
    /// (by content) are reused, and this execution's artifacts are left
    /// behind for later ones.
    ///
    /// The cache is only coherent for a fixed auxiliary configuration
    /// and a stable matcher library — see the [`EngineCache`] docs. The
    /// server keys caches per tenant for this reason.
    pub fn execute_cached(
        &self,
        ctx: &MatchContext<'_>,
        plan: &MatchPlan,
        cache: &Arc<EngineCache>,
    ) -> Result<PlanOutcome> {
        let memo = MatchMemo::scoped(
            cache,
            schema_fingerprint(ctx.source, ctx.source_paths),
            schema_fingerprint(ctx.target, ctx.target_paths),
        );
        self.execute_with_memo(ctx, plan, &memo)
    }

    /// Executes a plan with an explicit, caller-owned memo — the seam
    /// under both [`PlanEngine::execute`] (fresh private memo) and
    /// [`PlanEngine::execute_cached`] (shared-cache view).
    pub fn execute_with_memo(
        &self,
        ctx: &MatchContext<'_>,
        plan: &MatchPlan,
        memo: &MatchMemo,
    ) -> Result<PlanOutcome> {
        plan.validate(self.library)?;
        let root_mask = ctx.restriction.cloned();
        let base = ctx.without_restriction().with_memo(memo);
        // The stage count is only a capacity hint; clamp it so an `Iterate`
        // with a huge (but semantically fine) round budget cannot force an
        // absurd up-front allocation.
        let mut stages = Vec::with_capacity(plan.stage_count().min(64));
        let result = self.exec(base, plan, root_mask.as_ref(), &mut stages)?;
        Ok(PlanOutcome { result, stages })
    }

    fn exec(
        &self,
        ctx: MatchContext<'_>,
        plan: &MatchPlan,
        mask: Option<&PairMask>,
        stages: &mut Vec<StageOutcome>,
    ) -> Result<MatchResult> {
        match plan {
            MatchPlan::Matchers {
                matchers,
                combination,
            } => {
                let (cube, shards) = self.execute_leaf(ctx, matchers, mask)?;
                let result =
                    combine_cube_with_feedback(&cube, &ctx, combination, &ctx.aux.feedback);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards,
                    fused: false,
                    index_stats: None,
                    reuse_stats: None,
                });
                Ok(result)
            }
            MatchPlan::Seq { filter, refine } => {
                let first = self.exec(ctx, filter, mask, stages)?;
                let survivors = PairMask::from_result(ctx.rows(), ctx.cols(), &first);
                let restricted = match mask {
                    Some(outer) => survivors.intersect(outer),
                    None => survivors,
                };
                self.exec(ctx, refine, Some(&restricted), stages)
            }
            MatchPlan::Par { plans, combination } => {
                let mut slices: Vec<(String, MatchResult)> = Vec::with_capacity(plans.len());
                for sub in plans {
                    let result = self.exec(ctx, sub, mask, stages)?;
                    slices.push((sub.label(), result));
                }
                // Canonical slice order: sub-plan order never changes the
                // aggregate (identical labels mean identical sub-plans).
                // Weighted aggregation is the exception — its weights pair
                // with sub-plans positionally, so declaration order is
                // meaningful and must be kept.
                if !matches!(
                    combination.aggregation,
                    crate::combine::Aggregation::Weighted(_)
                ) {
                    slices.sort_by(|a, b| a.0.cmp(&b.0));
                }
                let mut cube = SimCube::new();
                for (label, result) in &slices {
                    cube.push(label.clone(), self.pair_matrix(&ctx, result));
                }
                let result =
                    combine_cube_with_feedback(&cube, &ctx, combination, &ctx.aux.feedback);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards: 1,
                    fused: false,
                    index_stats: None,
                    reuse_stats: None,
                });
                Ok(result)
            }
            MatchPlan::Filter {
                input,
                direction,
                selection,
                combined_sim,
            } => {
                let fused = self.try_fuse(ctx, input, mask);
                let (inner, fused_shards) = match fused {
                    Some((inner, shards)) => (inner, Some(shards)),
                    None => (self.exec(ctx, input, mask, stages)?, None),
                };
                let matrix = self.pair_matrix(&ctx, &inner);
                let candidates = DirectedCandidates::select(&matrix, *direction, selection);
                let schema_similarity =
                    combined_sim.compute(&candidates, matrix.rows(), matrix.cols());
                let result =
                    MatchResult::from_pairs(&ctx, candidates.pairs(), Some(schema_similarity));
                let mut cube = SimCube::new();
                cube.push("Filtered", matrix);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards: fused_shards.unwrap_or(1),
                    fused: fused_shards.is_some(),
                    index_stats: None,
                    reuse_stats: None,
                });
                Ok(result)
            }
            MatchPlan::TopK { input, k, per } => {
                let fused = self.try_fuse(ctx, input, mask);
                let (inner, fused_shards) = match fused {
                    Some((inner, shards)) => (inner, Some(shards)),
                    None => (self.exec(ctx, input, mask, stages)?, None),
                };
                let matrix = self.pair_matrix(&ctx, &inner);
                let keep = PairMask::top_k_of(&matrix, *k, *per);
                let kept: Vec<(usize, usize, f64)> = inner
                    .candidates
                    .iter()
                    .filter(|c| keep.allows(c.source.index(), c.target.index()))
                    .map(|c| (c.source.index(), c.target.index(), c.similarity))
                    .collect();
                let pruned = if self.sparse_storage(&keep) {
                    keep.masked_sparse(&matrix)
                } else {
                    keep.masked_clone(&matrix).into_dense()
                };
                // The schema similarity is recomputed over the surviving
                // pairs (like `Filter` does), not carried over from the
                // pre-pruning result, so it stays consistent with the
                // candidates this stage actually reports.
                let survivors = DirectedCandidates::select(
                    &pruned,
                    crate::combine::Direction::Both,
                    &crate::combine::Selection::threshold(0.0),
                );
                let schema_similarity = crate::combine::CombinedSim::Average.compute(
                    &survivors,
                    ctx.rows(),
                    ctx.cols(),
                );
                let result = MatchResult::from_pairs(&ctx, kept, Some(schema_similarity));
                let mut cube = SimCube::new();
                cube.push("TopK", pruned);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards: fused_shards.unwrap_or(1),
                    fused: fused_shards.is_some(),
                    index_stats: None,
                    reuse_stats: None,
                });
                Ok(result)
            }
            MatchPlan::Iterate {
                plan: sub,
                max_rounds,
                epsilon,
            } => {
                // Each round re-runs the sub-plan restricted to the
                // previous round's survivors, until the selected-pair
                // matrix moves by less than epsilon (max-norm). The loop
                // runs at least once (max_rounds >= 1 is validated).
                let mut prev: Option<SimMatrix> = None;
                let mut round_mask = mask.cloned();
                let mut result: Option<MatchResult> = None;
                for _ in 0..*max_rounds {
                    let r = self.exec(ctx, sub, round_mask.as_ref(), stages)?;
                    let matrix = self.pair_matrix(&ctx, &r);
                    let converged = prev
                        .as_ref()
                        .is_some_and(|p| p.max_abs_diff(&matrix) < *epsilon);
                    let survivors = PairMask::from_result(ctx.rows(), ctx.cols(), &r);
                    result = Some(r);
                    prev = Some(matrix);
                    if converged {
                        break;
                    }
                    round_mask = Some(match mask {
                        Some(outer) => survivors.intersect(outer),
                        None => survivors,
                    });
                }
                let result = result.expect("Iterate ran at least one round");
                let mut cube = SimCube::new();
                cube.push("Iterate", prev.expect("Iterate ran at least one round"));
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards: 1,
                    fused: false,
                    index_stats: None,
                    reuse_stats: None,
                });
                Ok(result)
            }
            MatchPlan::Reuse {
                kind,
                compose,
                max_hops,
                combination,
            } => {
                let resolver = ReuseResolver {
                    kind_filter: *kind,
                    compose: *compose,
                    max_hops: *max_hops,
                };
                let (mut slice, reuse_stats) = resolver.compute(&ctx);
                if let Some(mask) = mask {
                    if self.sparse_storage(mask) {
                        slice = mask.masked_sparse(&slice);
                    } else {
                        mask.apply(&mut slice);
                    }
                }
                let mut cube = SimCube::new();
                cube.push("Reuse", slice);
                let result =
                    combine_cube_with_feedback(&cube, &ctx, combination, &ctx.aux.feedback);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards: 1,
                    fused: false,
                    index_stats: None,
                    reuse_stats: Some(reuse_stats),
                });
                Ok(result)
            }
            MatchPlan::CandidateIndex {
                min_shared_tokens,
                min_score,
                q,
                per_element,
            } => {
                let params = CandidateParams {
                    min_shared_tokens: *min_shared_tokens,
                    min_score: *min_score,
                    per_element: *per_element,
                };
                let (slice, shards, stats) = self.candidate_stage(ctx, *q, params, mask);
                // Like `TopK`: the schema similarity is the average of the
                // pairs this stage actually emits.
                let survivors = DirectedCandidates::select(
                    &slice,
                    crate::combine::Direction::Both,
                    &crate::combine::Selection::threshold(0.0),
                );
                let schema_similarity = crate::combine::CombinedSim::Average.compute(
                    &survivors,
                    ctx.rows(),
                    ctx.cols(),
                );
                let pairs: Vec<(usize, usize, f64)> = slice.nonzero().collect();
                let result = MatchResult::from_pairs(&ctx, pairs, Some(schema_similarity));
                let mut cube = SimCube::new();
                cube.push("CandidateIndex", slice);
                stages.push(StageOutcome {
                    label: plan.label(),
                    cube,
                    result: result.clone(),
                    shards,
                    fused: false,
                    index_stats: Some(stats),
                    reuse_stats: None,
                });
                Ok(result)
            }
        }
    }

    /// Executes a `CandidateIndex` leaf: fetches (or builds — once per
    /// side and gram length, through the [`MatchMemo`]) the two
    /// vocabulary inverted indexes, then generates the candidate matrix
    /// from shared-posting lookups, row-sharded across scoped threads
    /// like the fused pipeline. Returns the (CSR, or dense when the
    /// sparse path is off) candidate matrix, the shard count, and the
    /// stage's index statistics. No `m × n` buffer or full pair scan
    /// exists anywhere on this path — cost is proportional to posting
    /// traffic.
    fn candidate_stage(
        &self,
        ctx: MatchContext<'_>,
        q: usize,
        params: CandidateParams,
        mask: Option<&PairMask>,
    ) -> (SimMatrix, usize, IndexStats) {
        let (m, n) = (ctx.rows(), ctx.cols());
        let build_source = || VocabIndex::build((0..m).map(|i| ctx.source_name(i)), ctx.aux, q);
        let build_target = || VocabIndex::build((0..n).map(|j| ctx.target_name(j)), ctx.aux, q);
        let (source, target) = match ctx.memo {
            Some(memo) => (
                memo.vocab_index(false, q, build_source),
                memo.vocab_index(true, q, build_target),
            ),
            None => (Arc::new(build_source()), Arc::new(build_target())),
        };
        let stats = IndexStats {
            build_nanos: source.build_nanos() + target.build_nanos(),
            token_postings: source.token_posting_entries() + target.token_posting_entries(),
            gram_postings: source.gram_posting_entries() + target.gram_posting_entries(),
            distinct_tokens: source.distinct_tokens() + target.distinct_tokens(),
            distinct_grams: source.distinct_grams() + target.distinct_grams(),
        };
        let scorer = CandidateScorer::new(&source, &target, &ctx.aux.synonyms, params);

        let workers = if self.cfg.parallel {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
        } else {
            1
        };
        let shards = self.planned_shards(m, workers);
        let ranges = shard_ranges(m, shards);
        let shards = ranges.len().max(1);
        let threads = workers.min(shards).max(1);
        let chunk = ranges.len().div_ceil(threads).max(1);
        type WorkerOut = (Vec<SimMatrix>, Vec<(usize, usize, f64)>);
        let mut outs: Vec<Option<WorkerOut>> =
            (0..ranges.len().div_ceil(chunk)).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, range_chunk) in outs.iter_mut().zip(ranges.chunks(chunk)) {
                if threads == 1 {
                    *slot = Some(scorer.fill_ranges(range_chunk, mask));
                } else {
                    let scorer = &scorer;
                    scope.spawn(move || *slot = Some(scorer.fill_ranges(range_chunk, mask)));
                }
            }
        });
        let mut fragments: Vec<SimMatrix> = Vec::with_capacity(ranges.len());
        let mut pooled: Vec<(usize, usize, f64)> = Vec::new();
        for out in outs {
            let (frags, pool) = out.expect("every candidate worker ran to completion");
            fragments.extend(frags);
            pooled.extend(pool);
        }
        let row_side = SimMatrix::from_row_shards(n, fragments);
        let row_side = if row_side.rows() == m {
            row_side
        } else {
            debug_assert_eq!(row_side.rows(), 0, "fragments covered a partial row space");
            SimMatrix::sparse(m, n)
        };
        // Per-element cap: the row fragments already hold each source
        // element's best `cap`; the pooled per-column candidates (a
        // folded superset, like the fused pipeline's pools) are
        // re-selected globally and unioned in — `TopKPer::Both`
        // semantics, so no element of either side is stranded.
        let survivors = match params.per_element {
            Some(cap) if !pooled.is_empty() => {
                merge_pooled(&row_side, index::select_pooled(pooled, cap))
            }
            _ => row_side,
        };
        let survivors = if self.cfg.sparse {
            survivors
        } else {
            // Dense-mode oracle: same values, dense storage — keeps the
            // sparse-vs-dense comparison property meaningful for this
            // leaf too.
            survivors.into_dense()
        };
        (survivors, shards, stats)
    }

    /// Executes a leaf's matchers — in parallel when the machine and the
    /// engine configuration allow it — and assembles their slices into a
    /// cube in declaration order (deterministic under any scheduling).
    /// Also returns the stage's shard count: the largest number of row
    /// shards any fresh unrestricted slice compute used (see
    /// [`EngineConfig::shards`]).
    fn execute_leaf(
        &self,
        ctx: MatchContext<'_>,
        names: &[String],
        mask: Option<&PairMask>,
    ) -> Result<(SimCube, usize)> {
        let matchers: Vec<(String, Arc<dyn Matcher>)> = names
            .iter()
            .map(|name| {
                self.library
                    .get(name)
                    .map(|m| (name.clone(), m))
                    .ok_or_else(|| CoreError::UnknownMatcher(name.clone()))
            })
            .collect::<Result<_>>()?;

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // The worker budget each slice compute may occupy with row
        // shards: the whole machine for a single-matcher leaf, the
        // remainder after the leaf's own matcher fan-out otherwise —
        // total threads stay bounded by ~`workers` either way.
        let fan_out = if self.cfg.parallel && workers > 1 && matchers.len() > 1 {
            workers.min(matchers.len())
        } else {
            1
        };
        let budget = (workers / fan_out).max(1);
        let compute_one = |matcher: &Arc<dyn Matcher>| -> (Arc<SimMatrix>, usize) {
            self.compute_slice(ctx, matcher, mask, budget)
        };

        let mut slots: Vec<Option<(Arc<SimMatrix>, usize)>> =
            (0..matchers.len()).map(|_| None).collect();
        if self.cfg.parallel && workers > 1 && matchers.len() > 1 {
            // At most `workers` threads, each owning a contiguous chunk of
            // matcher slots.
            let chunk = matchers.len().div_ceil(workers.min(matchers.len()));
            std::thread::scope(|scope| {
                for (slot_chunk, matcher_chunk) in
                    slots.chunks_mut(chunk).zip(matchers.chunks(chunk))
                {
                    scope.spawn(move || {
                        for (slot, (_, matcher)) in slot_chunk.iter_mut().zip(matcher_chunk) {
                            *slot = Some(compute_one(matcher));
                        }
                    });
                }
            });
        } else {
            for (slot, (_, matcher)) in slots.iter_mut().zip(&matchers) {
                *slot = Some(compute_one(matcher));
            }
        }

        let mut cube = SimCube::new();
        let mut shards = 1;
        for ((name, _), slot) in matchers.iter().zip(slots) {
            let (slice, slice_shards) = slot.expect("slice computed");
            shards = shards.max(slice_shards);
            cube.push_shared(name.clone(), slice);
        }
        Ok((cube, shards))
    }

    /// One matcher's slice, through the memo and under the stage mask,
    /// plus the number of row shards the computation used (1 unless a
    /// fresh unrestricted compute was sharded). The slice's storage
    /// follows [`PlanEngine::sparse_storage`]: pruned stages keep CSR
    /// slices, unpruned (or dense-mode) stages keep dense ones — with
    /// identical logical values either way.
    fn compute_slice(
        &self,
        ctx: MatchContext<'_>,
        matcher: &Arc<dyn Matcher>,
        mask: Option<&PairMask>,
        budget: usize,
    ) -> (Arc<SimMatrix>, usize) {
        let identity = matcher_identity(matcher);
        let name = matcher.name();
        // Records the shard count of a fresh full compute; stays 1 on a
        // memo hit (the memoizing closure never runs).
        let sharded = std::cell::Cell::new(1);
        let full_compute = || {
            let (matrix, shards) = self.compute_unrestricted(ctx, matcher, budget);
            sharded.set(shards);
            matrix
        };
        match (mask, ctx.memo) {
            // Unrestricted: memoize the full matrix across stages and
            // sub-plans — the stage cube shares the memo's allocation.
            (None, Some(memo)) => {
                let slice = memo.matrix(name, identity, matcher.pure(), full_compute);
                (slice, sharded.get())
            }
            (None, None) => {
                let slice = Arc::new(full_compute());
                (slice, sharded.get())
            }
            (Some(mask), memo) => {
                let sparse_store = self.sparse_storage(mask);
                // A full matrix computed earlier is cheaper to mask than to
                // recompute.
                if let Some(full) = memo.and_then(|m| m.cached_matrix(name, identity)) {
                    let slice = Arc::new(if sparse_store {
                        mask.masked_sparse(&full)
                    } else {
                        mask.masked_clone(&full)
                    });
                    return (slice, 1);
                }
                // Cell-local matchers always honor the restriction; other
                // sparse-capable matchers (the structural ones) take the
                // sparse path only when the mask prunes enough of the pair
                // space to beat computing a full, memoizable matrix.
                let honors_restriction = matcher.cell_local()
                    || (self.cfg.sparse
                        && matcher.sparse_capable()
                        && mask.density() <= self.cfg.sparse_density_cutoff);
                if honors_restriction {
                    // The matcher skips disallowed cells itself; the final
                    // mask application is a cheap safety net for
                    // implementations that ignore the restriction (and
                    // normalizes the slice to the stage's storage mode).
                    let restricted = ctx.with_restriction(mask);
                    let out = matcher.compute(&restricted);
                    let slice = Arc::new(if sparse_store {
                        mask.masked_sparse(&out)
                    } else {
                        let mut out = out.into_dense();
                        mask.apply(&mut out);
                        out
                    });
                    (slice, 1)
                } else {
                    // Global matchers need the full search space for
                    // correct set similarities; compute (and memoize)
                    // full — row-sharded when the matcher supports it —
                    // then mask the copy.
                    let full = match memo {
                        Some(m) => m.matrix(name, identity, matcher.pure(), full_compute),
                        None => Arc::new(full_compute()),
                    };
                    let slice = Arc::new(if sparse_store {
                        mask.masked_sparse(&full)
                    } else {
                        mask.masked_clone(&full)
                    });
                    (slice, sharded.get())
                }
            }
        }
    }

    /// Attempts the streaming-fused execution of a prunable stage's
    /// *input* leaf. Fusion engages when `input` is a `Matchers` leaf
    /// whose selection actually prunes (`max_n` or `threshold` present),
    /// every leaf matcher is
    /// [`row_shardable`](crate::Matcher::row_shardable), the context is
    /// unrestricted, no feedback is pinned, and the engine's sparse path
    /// is on. Returns the leaf's exact `MatchResult` — bit-identical to
    /// unfused execution (property-tested) — plus the shard count, or
    /// `None` when fusion does not apply (the caller falls back to the
    /// regular recursive execution).
    fn try_fuse(
        &self,
        ctx: MatchContext<'_>,
        input: &MatchPlan,
        mask: Option<&PairMask>,
    ) -> Option<(MatchResult, usize)> {
        if !(self.cfg.fuse_pruning && self.cfg.sparse)
            || mask.is_some()
            || !ctx.aux.feedback.is_empty()
        {
            return None;
        }
        let MatchPlan::Matchers {
            matchers,
            combination,
        } = input
        else {
            return None;
        };
        // An unbounded selection keeps every nonzero cell: there is
        // nothing to prune inside a shard, and "fusing" would only
        // rebuild the full matrix in CSR form.
        if combination.selection.max_n.is_none() && combination.selection.threshold.is_none() {
            return None;
        }
        let resolved: Vec<(String, Arc<dyn Matcher>)> = matchers
            .iter()
            .map(|name| self.library.get(name).map(|m| (name.clone(), m)))
            .collect::<Option<_>>()?;
        if resolved.is_empty() || resolved.iter().any(|(_, m)| !m.row_shardable()) {
            return None;
        }
        Some(self.fused_leaf(ctx, &resolved, combination))
    }

    /// The fused pipeline behind [`PlanEngine::try_fuse`] — the engine's
    /// third execution mode, next to dense and sparse-restricted. Each
    /// row shard (sized by [`EngineConfig::min_shard_rows`] unless
    /// [`EngineConfig::shards`] forces a count) runs
    /// [`compute_rows`](crate::Matcher::compute_rows) for every matcher,
    /// aggregates the shard cube, and applies the leaf's selection
    /// *inside the shard*:
    ///
    /// * per-source ranking is exact shard-locally — a row never crosses
    ///   a shard boundary — and emits one CSR fragment per shard, joined
    ///   by [`SimMatrix::from_row_shards`]'s sparse fast path;
    /// * per-target ranking keeps a per-column candidate pool with
    ///   global row indices, folded through the selection whenever it
    ///   outgrows its bound — a fold can only shed cells the global
    ///   per-column selection would shed too, so the pool is always a
    ///   superset of the globally selected cells.
    ///
    /// One final [`DirectedCandidates::select`] over the joined
    /// survivor matrix (row fragments ∪ pooled cells) is then exactly
    /// the global selection: every globally selected cell is present
    /// bit-identically, and any extra cell is outranked in its row or
    /// column by the same cells that outranked it globally. The full
    /// dense `m × n` aggregate is never materialized.
    fn fused_leaf(
        &self,
        ctx: MatchContext<'_>,
        matchers: &[(String, Arc<dyn Matcher>)],
        combination: &CombinationStrategy,
    ) -> (MatchResult, usize) {
        let (m, n) = (ctx.rows(), ctx.cols());
        let shards = match self.cfg.shards {
            Some(forced) => forced.min(m.max(1)),
            None => m.div_ceil(self.cfg.min_shard_rows).max(1),
        };
        let ranges = shard_ranges(m, shards);
        let shards = ranges.len().max(1);
        let (want_for_targets, want_for_sources) = directional_wants(combination.direction, m, n);

        // Worker threads, each processing a contiguous chunk of shards
        // *sequentially* so it holds at most one shard's dense slices
        // (one per matcher, plus their aggregate) in flight. The count
        // is bounded by the machine, the shard count, and the fused
        // in-flight budget — peak memory must not scale with the core
        // count (see `EngineConfig::fuse_budget_bytes`).
        let workers = if self.cfg.parallel {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
        } else {
            1
        };
        let shard_rows = ranges.first().map_or(0, ExactSizeIterator::len);
        let inflight_bytes = shard_rows * n * 8 * (matchers.len() + 1);
        let budget_cap = match inflight_bytes {
            0 => workers,
            b => (self.cfg.fuse_budget_bytes / b).max(1),
        };
        let threads = workers.min(budget_cap).min(shards).max(1);

        let chunk = ranges.len().div_ceil(threads).max(1);
        type WorkerOut = (Vec<SimMatrix>, Vec<(usize, usize, f64)>);
        let mut outs: Vec<Option<WorkerOut>> =
            (0..ranges.len().div_ceil(chunk)).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, range_chunk) in outs.iter_mut().zip(ranges.chunks(chunk)) {
                if threads == 1 {
                    // Single worker: skip the spawn entirely.
                    *slot = Some(self.fused_worker(
                        ctx,
                        matchers,
                        combination,
                        range_chunk,
                        want_for_targets,
                        want_for_sources,
                    ));
                } else {
                    scope.spawn(move || {
                        *slot = Some(self.fused_worker(
                            ctx,
                            matchers,
                            combination,
                            range_chunk,
                            want_for_targets,
                            want_for_sources,
                        ));
                    });
                }
            }
        });

        let mut fragments: Vec<SimMatrix> = Vec::with_capacity(ranges.len());
        let mut pooled: Vec<(usize, usize, f64)> = Vec::new();
        for out in outs {
            let (frags, pool) = out.expect("every fused worker ran to completion");
            fragments.extend(frags);
            pooled.extend(pool);
        }
        // The row-side survivors, stitched in row order; `m × n` even
        // when the direction skipped the per-source ranking (the
        // fragments are then empty) or the task has no rows at all.
        let row_side = SimMatrix::from_row_shards(n, fragments);
        let row_side = if row_side.rows() == m {
            row_side
        } else {
            debug_assert_eq!(row_side.rows(), 0, "fragments covered a partial row space");
            SimMatrix::sparse(m, n)
        };
        let survivors = if pooled.is_empty() {
            row_side
        } else {
            merge_pooled(&row_side, pooled)
        };

        // Identical to `combine_cube_with_feedback` on the full
        // aggregate: feedback is empty (gated in `try_fuse`), and the
        // selection over the survivor matrix reproduces the global
        // directional candidate lists exactly.
        let candidates =
            DirectedCandidates::select(&survivors, combination.direction, &combination.selection);
        let schema_similarity = combination.combined_sim.compute(&candidates, m, n);
        let result = MatchResult::from_pairs(&ctx, candidates.pairs(), Some(schema_similarity));
        (result, shards)
    }

    /// One fused worker: runs its contiguous chunk of row shards
    /// sequentially, returning one CSR fragment per shard (the exact
    /// per-source selection of that shard's rows) plus the pooled
    /// per-column candidates (a selection-folded superset of the global
    /// per-target selection, carrying global row indices).
    fn fused_worker(
        &self,
        ctx: MatchContext<'_>,
        matchers: &[(String, Arc<dyn Matcher>)],
        combination: &CombinationStrategy,
        ranges: &[std::ops::Range<usize>],
        want_for_targets: bool,
        want_for_sources: bool,
    ) -> (Vec<SimMatrix>, Vec<(usize, usize, f64)>) {
        let n = ctx.cols();
        let selection = &combination.selection;
        // Cells at or below the threshold (and zeros) can never be
        // selected in either direction; drop them before ranking or
        // pooling, exactly like `DirectedCandidates::select` does.
        let floor = selection.threshold.unwrap_or(f64::NEG_INFINITY);
        // Fold a column pool back through the selection once it outgrows
        // this. Only `max_n` bounds the selected set's size; without it
        // the pool accumulates every above-threshold cell (the true
        // survivor count — irreducible, they all reach the output).
        let fold_at = selection.max_n.map(|k| (4 * k).max(16));
        let mut pools: Vec<Vec<(usize, f64)>> = if want_for_targets {
            vec![Vec::new(); n]
        } else {
            Vec::new()
        };
        let mut touched: Vec<usize> = Vec::new();
        let mut fragments: Vec<SimMatrix> = Vec::with_capacity(ranges.len());
        let mut row_buf: Vec<(usize, f64)> = Vec::new();
        let mut builder = SparseBuilder::new(ranges.first().map_or(0, ExactSizeIterator::len), n);
        for (which, range) in ranges.iter().enumerate() {
            let mut cube = SimCube::new();
            for (name, matcher) in matchers {
                cube.push(name.clone(), matcher.compute_rows(&ctx, range.clone()));
            }
            let agg = combination.aggregation.aggregate(&cube);
            drop(cube);
            for li in 0..range.len() {
                row_buf.clear();
                row_buf.extend(agg.row_entries(li).filter(|&(_, v)| v > floor));
                if want_for_sources {
                    let mut selected = rank_entries(row_buf.iter().copied(), selection);
                    selected.sort_unstable_by_key(|&(j, _)| j);
                    builder.push_row(li, selected);
                }
                if want_for_targets {
                    let gi = range.start + li;
                    for &(j, v) in &row_buf {
                        if v <= 0.0 {
                            continue;
                        }
                        let pool = &mut pools[j];
                        if pool.is_empty() {
                            touched.push(j);
                        }
                        pool.push((gi, v));
                        if fold_at.is_some_and(|limit| pool.len() >= limit) {
                            sort_desc(pool);
                            let folded = selection.apply(pool);
                            *pool = folded;
                        }
                    }
                }
            }
            let next_rows = ranges.get(which + 1).map_or(0, ExactSizeIterator::len);
            fragments.push(builder.finish_reset(next_rows));
        }
        // A pool emptied by a fold can re-touch its column; deduplicate
        // so no cell is emitted twice.
        touched.sort_unstable();
        touched.dedup();
        let mut pooled = Vec::new();
        for j in touched {
            for &(i, v) in &pools[j] {
                pooled.push((i, j, v));
            }
        }
        (fragments, pooled)
    }
}

/// Unions the fused row-side survivor matrix with the pooled per-column
/// survivors into one sparse matrix. A cell present on both sides comes
/// from the same aggregated value, so duplicates collapse to the
/// row-side copy.
fn merge_pooled(row_side: &SimMatrix, mut pooled: Vec<(usize, usize, f64)>) -> SimMatrix {
    pooled.sort_unstable_by_key(|&(i, j, _)| (i, j));
    let mut builder = SparseBuilder::new(row_side.rows(), row_side.cols());
    let mut p = 0;
    for i in 0..row_side.rows() {
        let mut row = row_side.row_entries(i).peekable();
        while p < pooled.len() && pooled[p].0 == i {
            let (_, pj, pv) = pooled[p];
            while let Some(&(j, v)) = row.peek() {
                if j < pj {
                    builder.push(i, j, v);
                    row.next();
                } else {
                    break;
                }
            }
            if row.peek().is_some_and(|&(j, _)| j == pj) {
                // Same cell on both sides; the row copy is emitted by a
                // later iteration (or the flush below).
            } else {
                builder.push(i, pj, pv);
            }
            p += 1;
        }
        for (j, v) in row {
            builder.push(i, j, v);
        }
    }
    builder.finish()
}

/// The dense form of [`PlanEngine::pair_matrix`].
fn pair_matrix_dense(ctx: &MatchContext<'_>, result: &MatchResult) -> SimMatrix {
    let mut matrix = SimMatrix::new(ctx.rows(), ctx.cols());
    for c in &result.candidates {
        matrix.set(c.source.index(), c.target.index(), c.similarity);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{CombinationStrategy, Direction, Selection};
    use crate::matchers::synonym::SynonymTable;
    use crate::process::{Coma, MatchStrategy};
    use coma_graph::{PathSet, Schema};

    fn po1() -> Schema {
        coma_sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (
                 poNo INT,
                 custNo INT REFERENCES PO1.Customer,
                 shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
                 PRIMARY KEY (poNo));
             CREATE TABLE PO1.Customer (
                 custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
                 custCity VARCHAR(200), custZip VARCHAR(20),
                 PRIMARY KEY (custNo));",
            "PO1",
        )
        .unwrap()
    }

    fn po2() -> Schema {
        coma_xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap()
    }

    fn coma() -> Coma {
        let mut c = Coma::new();
        c.aux_mut().synonyms = SynonymTable::purchase_order();
        c
    }

    /// A flat strategy through the engine is bit-identical to the legacy
    /// sequential pipeline — cube and combined result alike.
    #[test]
    fn flat_plan_matches_legacy_pipeline() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux()).with_repository(c.repository());
        let strategy = MatchStrategy::paper_default();

        let legacy_cube = c.execute_matchers(&ctx, &strategy.matchers).unwrap();
        let legacy_result = c.combine_cube(&legacy_cube, &ctx, &strategy.combination);

        let outcome = PlanEngine::new(c.library())
            .execute(&ctx, &MatchPlan::from(&strategy))
            .unwrap();
        assert_eq!(outcome.result, legacy_result);
        assert_eq!(outcome.stages.len(), 1);
        assert_eq!(outcome.stages[0].cube, legacy_cube);

        // Sequential engine execution agrees too (determinism under
        // parallelism).
        let serial =
            PlanEngine::with_config(c.library(), EngineConfig::default().with_parallel(false))
                .execute(&ctx, &MatchPlan::from(&strategy))
                .unwrap();
        assert_eq!(serial.result, legacy_result);
    }

    /// The tentpole scenario: a cheap name filter whose survivors restrict
    /// an expensive structural refine — inexpressible as a flat strategy.
    #[test]
    fn two_stage_filter_refine_restricts_the_search_space() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux()).with_repository(c.repository());

        // Stage 1: liberal Name-only filter. Stage 2: full hybrid refine.
        let plan = MatchPlan::two_stage(
            ["Name"],
            Selection::max_n(4).with_threshold(0.3),
            &MatchStrategy::paper_default(),
        );
        let outcome = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();
        assert_eq!(outcome.stages.len(), 2);

        // Every refined candidate survived the filter stage.
        let filter_result = &outcome.stages[0].result;
        for cand in &outcome.result.candidates {
            assert!(
                filter_result.contains(cand.source, cand.target),
                "refined pair was not a filter survivor"
            );
        }
        assert!(!outcome.result.is_empty());

        // The refine stage's cube is materialized and masked: cells the
        // filter dropped are zero in every slice.
        let refine_cube = outcome.final_cube().unwrap();
        assert_eq!(refine_cube.len(), 5);
        let survivors = PairMask::from_result(ctx.rows(), ctx.cols(), filter_result);
        for k in 0..refine_cube.len() {
            for (i, j, v) in refine_cube.slice(k).nonzero() {
                assert!(
                    survivors.allows(i, j),
                    "slice {k} kept disallowed cell ({i},{j}) = {v}"
                );
            }
        }

        // And the restriction is observable: the flat plan proposes at
        // least as many candidates as the restricted one.
        let flat = PlanEngine::new(c.library())
            .execute(&ctx, &MatchPlan::from(&MatchStrategy::paper_default()))
            .unwrap();
        assert!(flat.result.len() >= outcome.result.len());
    }

    /// A `Seq { CandidateIndex, refine }` plan: the index stage restricts
    /// the refine stage, reports its index statistics, and keeps every
    /// pair the exact Name filter would keep (recall guarantee).
    #[test]
    fn candidate_index_prefilters_like_a_name_stage() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux()).with_repository(c.repository());

        let plan = MatchPlan::seq(
            MatchPlan::candidate_index(1, 0.0).unwrap(),
            MatchPlan::from(&MatchStrategy::paper_default()),
        );
        let outcome = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();
        assert_eq!(outcome.stages.len(), 2);

        // The index stage reports its build/traffic statistics; no other
        // stage kind does.
        let stats = outcome.stages[0]
            .index_stats
            .expect("CandidateIndex stage carries IndexStats");
        assert!(stats.token_postings > 0 && stats.gram_postings > 0);
        assert!(outcome.stages[1].index_stats.is_none());
        assert!(outcome.stages[0].label.starts_with("CandidateIndex("));

        // Recall: every pair the exact liberal Name stage selects is an
        // index candidate.
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(4).with_threshold(0.3);
        let exact = PlanEngine::new(c.library())
            .execute(&ctx, &MatchPlan::matchers_with(["Name"], liberal))
            .unwrap();
        let candidates = &outcome.stages[0].result;
        for cand in &exact.result.candidates {
            assert!(
                candidates.contains(cand.source, cand.target),
                "index missed Name-selected pair {:?} -> {:?}",
                cand.source,
                cand.target
            );
        }

        // And the refine stage stayed inside the candidate mask.
        let survivors = PairMask::from_result(ctx.rows(), ctx.cols(), candidates);
        for cand in &outcome.result.candidates {
            assert!(survivors.allows(cand.source.index(), cand.target.index()));
        }
        assert!(!outcome.result.is_empty());
    }

    /// The `CandidateIndex` leaf is deterministic and storage-invariant:
    /// forced shard counts, sequential execution and the dense oracle all
    /// produce identical values, and the per-element cap bounds the mask.
    #[test]
    fn candidate_index_is_deterministic_across_configs() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());
        let plan = MatchPlan::candidate_index_with(1, 0.0, 3, Some(2)).unwrap();

        let reference = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();
        for cfg in [
            EngineConfig::default().with_parallel(false),
            EngineConfig::default().with_shards(3),
            EngineConfig::default().with_sparse(false),
        ] {
            let other = PlanEngine::with_config(c.library(), cfg.clone())
                .execute(&ctx, &plan)
                .unwrap();
            assert_eq!(other.result, reference.result, "config {cfg:?} diverged");
        }
        // Sparse path on: the stage's slice is CSR; dense oracle: dense.
        assert!(reference.stages[0].cube.slice(0).is_sparse());
        let dense =
            PlanEngine::with_config(c.library(), EngineConfig::default().with_sparse(false))
                .execute(&ctx, &plan)
                .unwrap();
        assert!(!dense.stages[0].cube.slice(0).is_sparse());

        // The Both-style cap bounds the mask at cap·(m+n) pairs total.
        assert!(reference.result.len() <= 2 * (ctx.rows() + ctx.cols()));
        assert!(!reference.result.is_empty());
    }

    /// `Par` sub-plan order never changes the outcome: slices are
    /// canonicalized by label before aggregation.
    #[test]
    fn par_is_order_invariant() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());

        let a = MatchPlan::matchers(["Name", "TypeName"]);
        let b = MatchPlan::matchers(["NamePath"]);
        let d = MatchPlan::matchers(["Leaves"]);
        let combination = CombinationStrategy::paper_default();
        let engine = PlanEngine::new(c.library());

        let fwd = engine
            .execute(
                &ctx,
                &MatchPlan::par([a.clone(), b.clone(), d.clone()], combination.clone()),
            )
            .unwrap();
        let rev = engine
            .execute(&ctx, &MatchPlan::par([d, b, a], combination))
            .unwrap();
        assert_eq!(fwd.result, rev.result);
        assert_eq!(fwd.final_cube(), rev.final_cube());
        assert!(!fwd.result.is_empty());
    }

    /// Weighted aggregation pairs weights with sub-plans in declaration
    /// order — `Par` must not reorder slices underneath it.
    #[test]
    fn par_weighted_keeps_declaration_order() {
        use crate::combine::Aggregation;
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());
        let engine = PlanEngine::new(c.library());

        let name = MatchPlan::matchers(["Name"]);
        let leaves = MatchPlan::matchers(["Leaves"]);
        let weighted = |w: Vec<f64>| CombinationStrategy {
            aggregation: Aggregation::Weighted(w),
            ..CombinationStrategy::paper_default()
        };

        // All weight on the Name sub-plan, expressed in both orders: the
        // weight must follow the sub-plan, so results agree.
        let name_first = engine
            .execute(
                &ctx,
                &MatchPlan::par([name.clone(), leaves.clone()], weighted(vec![1.0, 0.0])),
            )
            .unwrap();
        let name_second = engine
            .execute(
                &ctx,
                &MatchPlan::par([leaves.clone(), name.clone()], weighted(vec![0.0, 1.0])),
            )
            .unwrap();
        assert_eq!(name_first.result, name_second.result);

        // Flipping the weights instead changes the outcome.
        let leaves_weighted = engine
            .execute(
                &ctx,
                &MatchPlan::par([name, leaves], weighted(vec![0.0, 1.0])),
            )
            .unwrap();
        assert_ne!(name_first.result, leaves_weighted.result);
    }

    /// `Filter` tightens a result mid-pipeline.
    #[test]
    fn filter_node_tightens_selection() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());

        let base = MatchPlan::matchers(["Name", "NamePath"]);
        let engine = PlanEngine::new(c.library());
        let loose = engine.execute(&ctx, &base).unwrap();
        let tight = engine
            .execute(
                &ctx,
                &base
                    .clone()
                    .filtered(Direction::Both, Selection::max_n(1).with_threshold(0.8)),
            )
            .unwrap();
        assert!(tight.result.len() <= loose.result.len());
        assert!(tight
            .result
            .candidates
            .iter()
            .all(|cand| cand.similarity > 0.8));
        // The threshold filter fuses with its Matchers input, so the
        // inner stage is not materialized separately.
        assert_eq!(tight.stages.len(), 1);
        assert!(tight.stages[0].fused);
    }

    /// `TopK` keeps at most k candidates per element and its survivors
    /// restrict a downstream refine stage.
    #[test]
    fn top_k_prunes_and_restricts_downstream_stages() {
        use crate::engine::plan::TopKPer;
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());

        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(6).with_threshold(0.2);
        let name_plan = MatchPlan::matchers_with(["Name"], liberal);
        let pruned = name_plan.clone().top_k(2, TopKPer::Both).unwrap();
        let plan = MatchPlan::seq(pruned, MatchPlan::from(&MatchStrategy::paper_default()));

        let outcome = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();
        // The TopK stage fuses compute→prune (its input is a prunable
        // Matchers leaf over an unrestricted context), so the inner Name
        // stage is not materialized: TopK and refine remain.
        assert_eq!(outcome.stages.len(), 2);
        assert!(outcome.stages[0].fused);
        assert!(!outcome.stages[1].fused);

        // Unfused execution materializes all three stages and agrees
        // with the fused run stage for stage (matching labels) and on
        // the final result.
        let unfused = PlanEngine::with_config(
            c.library(),
            EngineConfig::default().with_fuse_pruning(false),
        )
        .execute(&ctx, &plan)
        .unwrap();
        assert_eq!(unfused.stages.len(), 3); // Name, TopK, refine
        assert!(unfused.stages.iter().all(|s| !s.fused));
        assert_eq!(outcome.result, unfused.result);
        for fused_stage in &outcome.stages {
            let twin = unfused
                .stages
                .iter()
                .find(|s| s.label == fused_stage.label)
                .expect("fused stage has an unfused twin");
            assert_eq!(fused_stage.cube, twin.cube, "stage {}", fused_stage.label);
            assert_eq!(fused_stage.result, twin.result);
        }

        let name_stage = PlanEngine::new(c.library())
            .execute(&ctx, &name_plan)
            .unwrap()
            .result;
        let name_stage = &name_stage;
        let topk_stage = &outcome.stages[0].result;
        // TopK output is a subset of its input.
        for cand in &topk_stage.candidates {
            assert!(name_stage.contains(cand.source, cand.target));
        }
        // Per-row and per-column candidate counts respect k = 2.
        for i in 0..ctx.rows() {
            let per_row = topk_stage
                .candidates
                .iter()
                .filter(|c| c.source.index() == i)
                .count();
            assert!(per_row <= 2 + 2, "row {i} kept {per_row}"); // Both = union
        }
        // The refine stage only proposes TopK survivors.
        for cand in &outcome.result.candidates {
            assert!(
                topk_stage.contains(cand.source, cand.target),
                "refined pair did not survive TopK"
            );
        }
        assert!(!outcome.result.is_empty());
    }

    /// `Iterate` terminates within `max_rounds` and converges to a stable
    /// result (a deterministic sub-plan restricted to its own survivors
    /// reaches a fixpoint in practice after two rounds).
    #[test]
    fn iterate_terminates_and_stabilizes() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());

        let sub = MatchPlan::from(&MatchStrategy::paper_default());
        let max_rounds = 5;
        let plan = sub.clone().iterate(max_rounds, 1e-9).unwrap();
        let outcome = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();

        // Rounds executed = sub-plan stages pushed; bounded by max_rounds.
        let rounds = outcome
            .stages
            .iter()
            .filter(|s| s.label == sub.label())
            .count();
        assert!(
            (1..=max_rounds).contains(&rounds),
            "{rounds} rounds for max {max_rounds}"
        );
        assert!(!outcome.result.is_empty());
        // The final result is a fixpoint: the last two rounds select the
        // same pairs with the same similarities. (The rounds' schema
        // similarities may differ — that value is derived from the
        // directional candidate lists, which the round restriction
        // shrinks — but the convergence criterion is the pair matrix.)
        if rounds >= 2 {
            let last_two: Vec<_> = outcome
                .stages
                .iter()
                .filter(|s| s.label == sub.label())
                .rev()
                .take(2)
                .collect();
            assert_eq!(last_two[0].result.candidates, last_two[1].result.candidates);
        }
    }

    /// Sparse and dense execution of the same masked plan are
    /// bit-identical; the sparse path merely skips the disallowed work.
    #[test]
    fn sparse_and_dense_masked_execution_agree() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());

        let plan = MatchPlan::two_stage(
            ["Name"],
            Selection::max_n(3).with_threshold(0.3),
            &MatchStrategy::paper_default(),
        );
        let sparse = PlanEngine::new(c.library()).execute(&ctx, &plan).unwrap();
        let dense =
            PlanEngine::with_config(c.library(), EngineConfig::default().with_sparse(false))
                .execute(&ctx, &plan)
                .unwrap();
        assert_eq!(sparse.result, dense.result);
        assert_eq!(sparse.stages.len(), dense.stages.len());
        for (a, b) in sparse.stages.iter().zip(&dense.stages) {
            assert_eq!(a.cube, b.cube, "stage {} cubes differ", a.label);
            assert_eq!(a.result, b.result);
        }
    }

    /// Degenerate plan shapes fail up front with `CoreError::Plan` instead
    /// of panicking mid-execution.
    #[test]
    fn degenerate_plans_fail_fast() {
        use crate::engine::plan::{PlanErrorKind, TopKPer};
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());
        let engine = PlanEngine::new(c.library());

        let empty_matchers = MatchPlan::matchers(Vec::<String>::new());
        assert!(matches!(
            engine.execute(&ctx, &empty_matchers),
            Err(CoreError::Plan(e)) if e.kind() == PlanErrorKind::EmptyMatchers
        ));

        let empty_par = MatchPlan::par([], CombinationStrategy::paper_default());
        assert!(matches!(
            engine.execute(&ctx, &empty_par),
            Err(CoreError::Plan(e)) if e.kind() == PlanErrorKind::EmptyPar
        ));

        // Hand-assembled degenerate nodes (bypassing the constructors).
        let zero_k = MatchPlan::TopK {
            input: Box::new(MatchPlan::matchers(["Name"])),
            k: 0,
            per: TopKPer::Both,
        };
        assert!(matches!(
            engine.execute(&ctx, &zero_k),
            Err(CoreError::Plan(e)) if e.kind() == PlanErrorKind::ZeroTopK && e.path() == "TopK"
        ));

        let zero_rounds = MatchPlan::Iterate {
            plan: Box::new(MatchPlan::matchers(["Name"])),
            max_rounds: 0,
            epsilon: 0.01,
        };
        assert!(matches!(
            engine.execute(&ctx, &zero_rounds),
            Err(CoreError::Plan(e)) if e.kind() == PlanErrorKind::ZeroIterations
        ));
    }

    /// Unknown matchers anywhere in the tree fail up front.
    #[test]
    fn unknown_matcher_fails_before_execution() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());
        let plan = MatchPlan::seq(
            MatchPlan::matchers(["Name"]),
            MatchPlan::matchers(["Bogus"]),
        );
        let err = PlanEngine::new(c.library())
            .execute(&ctx, &plan)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownMatcher(name) if name == "Bogus"));
    }

    /// Shard boundaries partition the row space: contiguous, in order,
    /// never empty, covering every row exactly once — including when
    /// `rows % shards != 0` and when more shards than rows are requested.
    #[test]
    fn shard_ranges_cover_every_row_exactly_once() {
        for rows in 0..40 {
            for shards in [1, 2, 3, 5, 7, 8, rows + 1, rows + 13] {
                let ranges = shard_ranges(rows, shards);
                if rows == 0 {
                    assert!(ranges.is_empty(), "rows=0 must shard to nothing");
                    continue;
                }
                assert!(ranges.len() <= shards.max(1), "rows={rows} shards={shards}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?} (rows={rows})");
                    assert!(!r.is_empty(), "zero-row shard {r:?} (rows={rows})");
                    next = r.end;
                }
                assert_eq!(next, rows, "rows={rows} shards={shards}");
                // Balanced: shard sizes differ by at most one row.
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced shards {sizes:?}");
            }
        }
    }

    /// Row-sharded execution is bit-identical to single-shard execution —
    /// every stage cube and result, for any forced shard count (including
    /// more shards than rows), across flat and pruned plans.
    #[test]
    fn sharded_execution_matches_unsharded() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux()).with_repository(c.repository());

        let plans = [
            MatchPlan::from(&MatchStrategy::paper_default()),
            MatchPlan::two_stage(
                ["Name"],
                Selection::max_n(4).with_threshold(0.3),
                &MatchStrategy::paper_default(),
            ),
        ];
        for plan in &plans {
            let baseline =
                PlanEngine::with_config(c.library(), EngineConfig::default().with_shards(1))
                    .execute(&ctx, plan)
                    .unwrap();
            assert!(baseline.stages.iter().all(|s| s.shards == 1));
            for shards in [2, 7, ctx.rows() + 1] {
                let sharded = PlanEngine::with_config(
                    c.library(),
                    EngineConfig::default().with_shards(shards),
                )
                .execute(&ctx, plan)
                .unwrap();
                assert_eq!(sharded.result, baseline.result, "shards={shards}");
                assert_eq!(sharded.stages.len(), baseline.stages.len());
                for (a, b) in sharded.stages.iter().zip(&baseline.stages) {
                    assert_eq!(a.cube, b.cube, "stage {} (shards={shards})", a.label);
                    assert_eq!(a.result, b.result);
                }
                // The unrestricted first stage really ran sharded (shard
                // counts clamp to the row count).
                assert_eq!(
                    sharded.stages[0].shards,
                    shards.min(ctx.rows()),
                    "shards={shards}"
                );
            }
        }
    }

    /// Empty match tasks (`0 × n` and `m × 0` pair spaces) execute
    /// without panicking in both sparse and dense modes — their masks
    /// report density 0.0, so they always pick the sparse path — and
    /// yield empty results with zero-entry stage cubes.
    #[test]
    fn empty_tasks_execute_in_both_modes() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let none = coma_graph::PathSet::empty();

        let plans = [
            MatchPlan::from(&MatchStrategy::paper_default()),
            MatchPlan::two_stage(
                ["Name"],
                Selection::max_n(4).with_threshold(0.3),
                &MatchStrategy::paper_default(),
            ),
            MatchPlan::matchers(["Name"])
                .top_k(2, TopKPer::Both)
                .unwrap(),
        ];
        // 0 × n (empty source), m × 0 (empty target) and 0 × 0.
        let contexts = [
            MatchContext::new(&s1, &s2, &none, &p2, c.aux()),
            MatchContext::new(&s1, &s2, &p1, &none, c.aux()),
            MatchContext::new(&s1, &s2, &none, &none, c.aux()),
        ];
        for (which, ctx) in contexts.iter().enumerate() {
            assert_eq!(PairMask::new(ctx.rows(), ctx.cols()).density(), 0.0);
            for plan in &plans {
                for sparse in [true, false] {
                    let outcome = PlanEngine::with_config(
                        c.library(),
                        EngineConfig::default().with_sparse(sparse),
                    )
                    .execute(ctx, plan)
                    .unwrap_or_else(|e| panic!("task {which} (sparse={sparse}) failed: {e}"));
                    assert!(outcome.result.is_empty(), "task {which} sparse={sparse}");
                    for stage in &outcome.stages {
                        assert_eq!(stage.cube.stored_entries(), 0);
                        assert!(stage.result.is_empty());
                    }
                }
            }
        }
    }

    /// The shared `TypeName` instance is computed once per execution: the
    /// `All` strategy's `TypeName`, `Children` and `Leaves` slices reuse
    /// one memoized matrix (observable through instance identity).
    #[test]
    fn all_strategy_memoizes_the_shared_leaf_matcher() {
        let c = coma();
        let lib = c.library();
        let type_name = lib.get("TypeName").unwrap();
        let memo = MatchMemo::new();
        // Prime the memo with a poisoned TypeName matrix; if Children or
        // Leaves recomputed TypeName instead of hitting the memo, their
        // slices would not reflect it.
        let (s1, s2) = (po1(), po2());
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux()).with_memo(&memo);
        let poisoned = SimMatrix::new(ctx.rows(), ctx.cols());
        memo.matrix("TypeName", matcher_identity(&type_name), true, || {
            poisoned.clone()
        });
        let children = lib.get("Children").unwrap().compute(&ctx);
        // With an all-zero leaf matrix, every source-leaf cell of the
        // Children matrix must be zero; any other value means the matcher
        // recomputed TypeName instead of hitting the memo.
        for i in 0..ctx.rows() {
            if !ctx.source_paths.is_leaf(ctx.source_elem(i)) {
                continue;
            }
            for j in 0..ctx.cols() {
                assert_eq!(children.get(i, j), 0.0, "leaf cell ({i},{j}) recomputed");
            }
        }
    }
}
