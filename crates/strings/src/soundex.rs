use crate::edit_distance::edit_distance_similarity;

/// American Soundex code of a word: an initial letter followed by three
/// digits classifying the consonant sounds, e.g. `Robert → R163`.
///
/// Non-ASCII-alphabetic characters are skipped. Returns `None` when the
/// input contains no ASCII letter at all.
pub fn soundex_code(s: &str) -> Option<String> {
    let letters: Vec<char> = s
        .chars()
        .filter(char::is_ascii_alphabetic)
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;

    fn class(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // Vowels and Y separate duplicate codes; H and W do not.
            'A' | 'E' | 'I' | 'O' | 'U' | 'Y' => 0,
            _ => 7, // H, W: transparent
        }
    }

    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_class = class(first);
    for &c in &letters[1..] {
        let cl = class(c);
        match cl {
            0 => last_class = 0, // vowel: reset, allows repeats
            7 => {}              // H/W: transparent, keep last_class
            _ => {
                if cl != last_class {
                    code.push(char::from(b'0' + cl));
                    if code.len() == 4 {
                        break;
                    }
                }
                last_class = cl;
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Phonetic similarity via Soundex codes.
///
/// "This matcher computes the phonetic similarity between names from their
/// corresponding soundex codes" (paper, Section 4.1). Equal codes give 1.0;
/// otherwise the codes are compared with the normalized edit-distance
/// similarity, so near-matching codes still score above zero.
///
/// ```
/// use coma_strings::soundex_similarity;
/// assert_eq!(soundex_similarity("Robert", "Rupert"), 1.0);
/// assert!(soundex_similarity("city", "deliver") < 0.5);
/// ```
pub fn soundex_similarity(a: &str, b: &str) -> f64 {
    match (soundex_code(a), soundex_code(b)) {
        (Some(ca), Some(cb)) => {
            if ca == cb {
                1.0
            } else {
                edit_distance_similarity(&ca, &cb)
            }
        }
        (None, None) => 1.0,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex_code("Robert").unwrap(), "R163");
        assert_eq!(soundex_code("Rupert").unwrap(), "R163");
        assert_eq!(soundex_code("Ashcraft").unwrap(), "A261");
        assert_eq!(soundex_code("Tymczak").unwrap(), "T522");
        assert_eq!(soundex_code("Pfister").unwrap(), "P236");
        assert_eq!(soundex_code("Honeyman").unwrap(), "H555");
    }

    #[test]
    fn code_is_case_insensitive() {
        assert_eq!(soundex_code("ROBERT"), soundex_code("robert"));
    }

    #[test]
    fn no_letters_gives_none() {
        assert_eq!(soundex_code("123"), None);
        assert_eq!(soundex_code(""), None);
    }

    #[test]
    fn similar_codes_get_partial_credit() {
        let sim = soundex_similarity("Robert", "Roberts"); // R163 vs R1632→R163? both R163
        assert_eq!(sim, 1.0);
        let sim2 = soundex_similarity("city", "cite"); // C300 == C300
        assert_eq!(sim2, 1.0);
        let sim3 = soundex_similarity("ship", "shop");
        assert_eq!(sim3, 1.0); // vowels don't matter in soundex
    }

    #[test]
    fn different_names_score_low() {
        assert!(soundex_similarity("zip", "street") < 0.6);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(soundex_similarity("", ""), 1.0);
        assert_eq!(soundex_similarity("", "abc"), 0.0);
    }
}
