//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no registry
//! access), so this shim provides the small surface the workspace uses:
//! `Serialize` / `Deserialize` traits with `#[derive(...)]` support, built
//! around a simple self-describing [`Value`] tree instead of serde's
//! visitor-based data model. The sibling `serde_json` shim renders that
//! tree to and from JSON text.
//!
//! The derive macros (from the `serde_derive` shim) support the shapes the
//! workspace actually uses: structs with named fields, tuple structs, and
//! enums with unit or tuple variants. Field attributes (`#[serde(...)]`)
//! are not supported.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value.
///
/// Maps are represented as ordered key/value pair lists so that non-string
/// keys (tuples, enums) round-trip; `serde_json` renders all-string-key
/// maps as JSON objects and everything else as arrays of pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; serializes `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64`).
    UInt(u64),
    /// A binary floating point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered list of key/value entries.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in a serialized map and deserializes it.
/// Used by the derive macro.
pub fn field<T: Deserialize>(entries: &[(Value, Value)], name: &str) -> Result<T, DeError> {
    for (k, v) in entries {
        if k.as_str() == Some(name) {
            return T::from_value(v);
        }
    }
    Err(DeError::custom(format!("missing field `{name}`")))
}

fn unexpected<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => unexpected("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return unexpected("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return unexpected("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => unexpected("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => unexpected("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => unexpected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => unexpected("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn map_entries(value: &Value) -> Result<Vec<(&Value, &Value)>, DeError> {
    match value {
        Value::Map(entries) => Ok(entries.iter().map(|(k, v)| (k, v)).collect()),
        // JSON renders maps with non-string keys as arrays of [key, value]
        // pairs; accept that representation symmetrically.
        Value::Seq(items) => items
            .iter()
            .map(|item| match item {
                Value::Seq(pair) if pair.len() == 2 => Ok((&pair[0], &pair[1])),
                other => unexpected("[key, value] pair", other),
            })
            .collect(),
        other => unexpected("map", other),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .into_iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .into_iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("sequence", other),
        }
    }
}
