//! The evaluation corpus: five purchase-order XML schemas in the styles of
//! the paper's biztalk.org test set (CIDX, Excel, Noris, Paragon, Apertum),
//! crafted to match Table 5's statistics exactly, plus the concept
//! annotations from which the gold standards ("manually determined real
//! matches", Section 7.1) are derived.
//!
//! Each schema ships with a sidecar `.concepts` file assigning every node
//! name a domain concept (or `-` for transparent structural nodes). The
//! **concept sequence** of a path is the sequence of concepts of its nodes
//! with transparent nodes skipped; the gold standard of a task `i↔j` is the
//! set of path pairs with equal concept sequences (paths ending at a
//! transparent node have no correspondence). This reproduces a consistent
//! human gold standard, including the context-sensitive resolution of
//! shared fragments (`ShipTo.Address.city` matches only the ship-to city).

use coma_core::Auxiliary;
use coma_graph::{PathId, PathSet, Schema, SchemaStats};
use coma_repo::{Mapping, MappingKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The five schema names, in the paper's order (referred to as 1…5).
pub const SCHEMA_NAMES: [&str; 5] = ["CIDX", "Excel", "Noris", "Paragon", "Apertum"];

/// The ten match tasks: all unordered pairs, ordered as `(source, target)`
/// with source index < target index (0-based).
pub const TASKS: [(usize, usize); 10] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 3),
    (1, 4),
    (2, 3),
    (2, 4),
    (3, 4),
];

/// A task label in the paper's notation, e.g. `1<->3`.
pub fn task_label(task: (usize, usize)) -> String {
    format!("{}<->{}", task.0 + 1, task.1 + 1)
}

const ASSETS: [(&str, &str, &str); 5] = [
    (
        "CIDX",
        include_str!("../assets/cidx.xsd"),
        include_str!("../assets/cidx.concepts"),
    ),
    (
        "Excel",
        include_str!("../assets/excel.xsd"),
        include_str!("../assets/excel.concepts"),
    ),
    (
        "Noris",
        include_str!("../assets/noris.xsd"),
        include_str!("../assets/noris.concepts"),
    ),
    (
        "Paragon",
        include_str!("../assets/paragon.xsd"),
        include_str!("../assets/paragon.concepts"),
    ),
    (
        "Apertum",
        include_str!("../assets/apertum.xsd"),
        include_str!("../assets/apertum.concepts"),
    ),
];

/// The raw XSD source of schema `i` (for importer benchmarks and tools).
pub fn xsd_source(i: usize) -> &'static str {
    ASSETS[i].1
}

/// The loaded corpus: schemas, path unfoldings, concept annotations and
/// the auxiliary information used uniformly in all experiments.
pub struct Corpus {
    schemas: Vec<Schema>,
    path_sets: Vec<PathSet>,
    concepts: Vec<HashMap<String, String>>,
    aux: Auxiliary,
}

impl Corpus {
    /// Loads and validates the embedded corpus.
    ///
    /// # Panics
    /// Panics if an asset is malformed — the corpus is embedded, so this
    /// indicates a build-time defect, covered by tests.
    pub fn load() -> Corpus {
        let mut schemas = Vec::with_capacity(5);
        let mut path_sets = Vec::with_capacity(5);
        let mut concepts = Vec::with_capacity(5);
        for (name, xsd, concept_src) in ASSETS {
            let schema = coma_xml::import_xsd(xsd, name)
                .unwrap_or_else(|e| panic!("corpus schema {name} is invalid: {e}"));
            let paths =
                PathSet::new(&schema).unwrap_or_else(|e| panic!("corpus schema {name} paths: {e}"));
            let map = parse_concepts(concept_src)
                .unwrap_or_else(|e| panic!("corpus concepts {name}: {e}"));
            // Every node must be annotated.
            for (_, node) in schema.iter() {
                assert!(
                    map.contains_key(&node.name),
                    "corpus schema {name}: node `{}` has no concept annotation",
                    node.name
                );
            }
            schemas.push(schema);
            path_sets.push(paths);
            concepts.push(map);
        }

        let mut aux = Auxiliary::standard();
        aux.synonyms = coma_core::matchers::synonym::SynonymTable::purchase_order();
        Corpus {
            schemas,
            path_sets,
            concepts,
            aux,
        }
    }

    /// The schema with 0-based index `i` (paper schema `i+1`).
    pub fn schema(&self, i: usize) -> &Schema {
        &self.schemas[i]
    }

    /// The path unfolding of schema `i`.
    pub fn path_set(&self, i: usize) -> &PathSet {
        &self.path_sets[i]
    }

    /// The auxiliary information (synonyms, abbreviations, type table)
    /// used uniformly in all experiments (Section 7.1).
    pub fn aux(&self) -> &Auxiliary {
        &self.aux
    }

    /// Table 5 statistics of schema `i`.
    pub fn stats(&self, i: usize) -> SchemaStats {
        SchemaStats::compute(&self.schemas[i], &self.path_sets[i])
    }

    /// The concept sequence of a path: concepts of its nodes, transparent
    /// nodes skipped. `None` when the path ends at a transparent node
    /// (such paths carry no gold correspondence).
    pub fn concept_seq(&self, i: usize, path: PathId) -> Option<Vec<&str>> {
        let schema = &self.schemas[i];
        let concepts = &self.concepts[i];
        let nodes = self.path_sets[i].nodes(path);
        let mut seq = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let concept = concepts[&schema.node(*node).name].as_str();
            if concept != "-" {
                seq.push(concept);
            }
        }
        let last = &schema
            .node(*nodes.last().expect("paths are non-empty"))
            .name;
        if concepts[last] == "-" {
            None
        } else {
            Some(seq)
        }
    }

    /// The gold standard for task `(i, j)` as `(source, target)` pairs of
    /// `PathId`s.
    pub fn gold_paths(&self, i: usize, j: usize) -> Vec<(PathId, PathId)> {
        let mut by_seq: BTreeMap<Vec<&str>, PathId> = BTreeMap::new();
        for p in self.path_sets[i].iter() {
            if let Some(seq) = self.concept_seq(i, p) {
                let prev = by_seq.insert(seq, p);
                assert!(
                    prev.is_none(),
                    "corpus schema {}: ambiguous concept sequence for path {}",
                    SCHEMA_NAMES[i],
                    self.path_sets[i].full_name(&self.schemas[i], p)
                );
            }
        }
        let mut gold = Vec::new();
        for q in self.path_sets[j].iter() {
            if let Some(seq) = self.concept_seq(j, q) {
                if let Some(&p) = by_seq.get(&seq) {
                    gold.push((p, q));
                }
            }
        }
        gold.sort();
        gold
    }

    /// The gold standard as full-name pairs (for quality metrics).
    pub fn gold_names(&self, i: usize, j: usize) -> BTreeSet<(String, String)> {
        self.gold_paths(i, j)
            .into_iter()
            .map(|(p, q)| {
                (
                    self.path_sets[i].full_name(&self.schemas[i], p),
                    self.path_sets[j].full_name(&self.schemas[j], q),
                )
            })
            .collect()
    }

    /// The gold standard as a repository mapping with all similarities 1.0
    /// (footnote 1 of the paper: manually derived match results set all
    /// element similarities to 1.0).
    pub fn gold_mapping(&self, i: usize, j: usize) -> Mapping {
        let mut m = Mapping::new(SCHEMA_NAMES[i], SCHEMA_NAMES[j], MappingKind::Manual);
        for (s, t) in self.gold_names(i, j) {
            m.push(s, t, 1.0);
        }
        m
    }

    /// Schema similarity of a task per the paper's Figure 8: the Dice
    /// ratio `#matched paths / #all paths` (both sides counted).
    pub fn schema_similarity(&self, i: usize, j: usize) -> f64 {
        let matches = self.gold_paths(i, j).len();
        let total = self.path_sets[i].len() + self.path_sets[j].len();
        2.0 * matches as f64 / total as f64
    }
}

/// Parses a `.concepts` sidecar: `name = concept` lines, `#` comments.
fn parse_concepts(src: &str) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    for (no, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, concept) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `name = concept`", no + 1))?;
        let (name, concept) = (name.trim(), concept.trim());
        if name.is_empty() || concept.is_empty() {
            return Err(format!("line {}: empty name or concept", no + 1));
        }
        if let Some(old) = map.insert(name.to_string(), concept.to_string()) {
            if old != concept {
                return Err(format!(
                    "line {}: conflicting concepts for `{name}`: `{old}` vs `{concept}`",
                    no + 1
                ));
            }
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_loads_and_is_fully_annotated() {
        let c = Corpus::load();
        assert_eq!(c.schema(0).name(), "CIDX");
        assert_eq!(c.schema(4).name(), "Apertum");
    }

    /// The central corpus invariant: our synthesized schemas reproduce
    /// Table 5 of the paper exactly.
    #[test]
    fn table_5_statistics_match_the_paper() {
        let c = Corpus::load();
        let expected = [
            // (max_depth, nodes, paths, inner_nodes, inner_paths, leaves, leaf_paths)
            (4, 40, 40, 7, 7, 33, 33),     // 1 CIDX
            (4, 35, 54, 9, 12, 26, 42),    // 2 Excel
            (4, 46, 65, 8, 11, 38, 54),    // 3 Noris
            (6, 74, 80, 11, 12, 63, 68),   // 4 Paragon
            (5, 80, 145, 23, 29, 57, 116), // 5 Apertum
        ];
        for (i, (depth, nodes, paths, inner_n, inner_p, leaf_n, leaf_p)) in
            expected.into_iter().enumerate()
        {
            let st = c.stats(i);
            assert_eq!(
                (
                    st.max_depth,
                    st.nodes,
                    st.paths,
                    st.inner_nodes,
                    st.inner_paths,
                    st.leaf_nodes,
                    st.leaf_paths
                ),
                (depth, nodes, paths, inner_n, inner_p, leaf_n, leaf_p),
                "schema {} ({}) deviates from Table 5: {}",
                i + 1,
                SCHEMA_NAMES[i],
                st
            );
        }
    }

    #[test]
    fn concept_sequences_are_unique_per_schema() {
        let c = Corpus::load();
        for (i, name) in SCHEMA_NAMES.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for p in c.path_set(i).iter() {
                if let Some(seq) = c.concept_seq(i, p) {
                    assert!(
                        seen.insert(seq.clone()),
                        "schema {} has a duplicate concept sequence {:?}",
                        name,
                        seq
                    );
                }
            }
        }
    }

    #[test]
    fn gold_standards_are_one_to_one() {
        let c = Corpus::load();
        for (i, j) in TASKS {
            let gold = c.gold_paths(i, j);
            let sources: BTreeSet<_> = gold.iter().map(|g| g.0).collect();
            let targets: BTreeSet<_> = gold.iter().map(|g| g.1).collect();
            assert_eq!(
                sources.len(),
                gold.len(),
                "task {} not 1:1",
                task_label((i, j))
            );
            assert_eq!(
                targets.len(),
                gold.len(),
                "task {} not 1:1",
                task_label((i, j))
            );
            assert!(!gold.is_empty());
        }
    }

    #[test]
    fn ship_to_city_matches_across_contexts() {
        // The Section 3 motif: the ship-to city corresponds across
        // structural variants, and only in the ship-to context.
        let c = Corpus::load();
        let gold = c.gold_names(0, 1); // CIDX ↔ Excel
        assert!(gold.contains(&(
            "PurchaseOrder.ShipTo.Address.city".to_string(),
            "POrder.ShipTo.Address.city".to_string()
        )));
        assert!(!gold.contains(&(
            "PurchaseOrder.ShipTo.Address.city".to_string(),
            "POrder.BillTo.Address.city".to_string()
        )));
        // Roots always correspond.
        assert!(gold.contains(&("PurchaseOrder".to_string(), "POrder".to_string())));
    }

    #[test]
    fn schema_similarity_is_moderate() {
        // Figure 8: "This similarity is mostly around 0.5, showing that the
        // schemas are much different even though they are from the same
        // domain."
        let c = Corpus::load();
        for (i, j) in TASKS {
            let sim = c.schema_similarity(i, j);
            assert!(
                (0.15..0.85).contains(&sim),
                "task {} similarity {sim} out of plausible range",
                task_label((i, j))
            );
        }
    }

    #[test]
    fn gold_mapping_has_unit_similarities() {
        let c = Corpus::load();
        let m = c.gold_mapping(0, 1);
        assert!(m.correspondences.iter().all(|x| x.similarity == 1.0));
        assert_eq!(m.kind, MappingKind::Manual);
    }

    #[test]
    fn concept_parser_rejects_garbage() {
        assert!(parse_concepts("no equals sign").is_err());
        assert!(parse_concepts("a = ").is_err());
        assert!(parse_concepts("a = x\na = y").is_err());
        assert!(parse_concepts("# comment\na = x\na = x").is_ok());
    }
}
