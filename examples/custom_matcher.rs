//! Extending the library: "New match algorithms can be included in the
//! library and used in combination with other matchers" (paper,
//! Section 1). This example registers a custom **annotation matcher**
//! (comparing `xsd:documentation` texts with trigram similarity) and runs
//! it combined with NamePath.
//!
//! Run with: `cargo run --example custom_matcher`

use coma::core::{
    Aggregation, Coma, CombinationStrategy, CombinedSim, Direction, MatchContext, MatchStrategy,
    Matcher, Selection, SimMatrix,
};
use coma::graph::PathSet;
use coma::strings::trigram_similarity;
use std::sync::Arc;

/// A matcher scoring elements by the similarity of their documentation
/// annotations; elements without annotations score 0.
struct AnnotationMatcher;

impl Matcher for AnnotationMatcher {
    fn name(&self) -> &str {
        "Annotation"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        for i in 0..ctx.rows() {
            let a = ctx
                .source
                .node(ctx.source_paths.node_of(ctx.source_elem(i)))
                .annotation
                .clone();
            let Some(a) = a else { continue };
            for j in 0..ctx.cols() {
                let b = &ctx
                    .target
                    .node(ctx.target_paths.node_of(ctx.target_elem(j)))
                    .annotation;
                if let Some(b) = b {
                    out.set(i, j, trigram_similarity(&a, b));
                }
            }
        }
        out
    }
}

const LEFT: &str = r#"
<schema>
  <element name="Order">
    <complexType><sequence>
      <element name="recipient" type="xsd:string">
        <annotation><documentation>name of the person receiving the goods</documentation></annotation>
      </element>
      <element name="total" type="xsd:decimal">
        <annotation><documentation>total order value in euro</documentation></annotation>
      </element>
    </sequence></complexType>
  </element>
</schema>"#;

const RIGHT: &str = r#"
<schema>
  <element name="Bestellung">
    <complexType><sequence>
      <element name="empfaenger" type="xsd:string">
        <annotation><documentation>name of the person receiving the shipment</documentation></annotation>
      </element>
      <element name="summe" type="xsd:decimal">
        <annotation><documentation>total order value in euro cents</documentation></annotation>
      </element>
    </sequence></complexType>
  </element>
</schema>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Names are in different languages — name matchers are hopeless here,
    // but the documentation texts align.
    let left = coma::xml::import_xsd(LEFT, "Left")?;
    let right = coma::xml::import_xsd(RIGHT, "Right")?;

    let mut coma = Coma::new();
    coma.library_mut().register(Arc::new(AnnotationMatcher));

    let with_names =
        coma.match_schemas(&left, &right, &MatchStrategy::with_matchers(["NamePath"]))?;
    // Max aggregation lets the matchers "maximally complement each other"
    // (Section 6.1) — names fail here, annotations carry the signal.
    let strategy = MatchStrategy::with_matchers(["NamePath", "Annotation"]).with_combination(
        CombinationStrategy {
            aggregation: Aggregation::Max,
            direction: Direction::Both,
            selection: Selection::max_n(1).with_threshold(0.5),
            combined_sim: CombinedSim::Average,
        },
    );
    let with_docs = coma.match_schemas(&left, &right, &strategy)?;

    let p1 = PathSet::new(&left)?;
    let p2 = PathSet::new(&right)?;
    println!(
        "NamePath alone: {} correspondences",
        with_names.result.len()
    );
    println!(
        "NamePath + custom Annotation matcher: {} correspondences",
        with_docs.result.len()
    );
    for c in &with_docs.result.candidates {
        println!(
            "  {:<22} ↔ {:<26} {:.2}",
            p1.full_name(&left, c.source),
            p2.full_name(&right, c.target),
            c.similarity
        );
    }
    let recipient = p1
        .find_by_full_name(&left, "Order.recipient")
        .expect("path");
    let empfaenger = p2
        .find_by_full_name(&right, "Bestellung.empfaenger")
        .expect("path");
    assert!(with_docs.result.contains(recipient, empfaenger));
    println!("\nthe cross-language pair recipient ↔ empfaenger is found via annotations ✓");
    Ok(())
}
