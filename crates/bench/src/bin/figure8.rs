//! Regenerates Figure 8 of the paper: the problem size of the ten match
//! tasks — number of real matches, matched paths, all paths, and the Dice
//! schema similarity ("mostly around 0.5").

use coma_eval::experiment::report::render_table;
use coma_eval::{task_label, Corpus, TASKS};

fn main() {
    let corpus = Corpus::load();
    println!("Figure 8 — problem size in schema matching tasks\n");
    let mut rows = Vec::new();
    for (i, j) in TASKS {
        let matches = corpus.gold_paths(i, j).len();
        let all_paths = corpus.path_set(i).len() + corpus.path_set(j).len();
        rows.push(vec![
            task_label((i, j)),
            matches.to_string(),
            (2 * matches).to_string(),
            all_paths.to_string(),
            format!("{:.2}", corpus.schema_similarity(i, j)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Task",
                "#Matches",
                "#Matched paths",
                "#All paths",
                "Schema similarity"
            ],
            &rows
        )
    );
    let avg: f64 = TASKS
        .iter()
        .map(|&(i, j)| corpus.schema_similarity(i, j))
        .sum::<f64>()
        / TASKS.len() as f64;
    println!("Average schema similarity: {avg:.2} (paper: mostly around 0.5)");
}
