//! # coma-repo — repository substrate for COMA
//!
//! "The flexibility of COMA is made possible by the use of a DBMS-based
//! repository for storing schemas, intermediate similarity results of
//! individual matchers, and complete (possibly user-confirmed) match results
//! for later reuse" (paper, Section 1).
//!
//! This crate is that repository, embedded: typed stores for
//!
//! * **schemas** ([`Repository::put_schema`]),
//! * **mappings** in the relational representation of Figure 3c — one tuple
//!   per 1:1 correspondence with its similarity ([`Mapping`]),
//! * **similarity cubes** produced by matcher executions ([`StoredCube`]),
//!
//! plus the queries the reuse matchers need: [`Repository::mappings_between`]
//! and [`Repository::pivot_pairs`] (the "search repository" step of
//! Figure 5), and the natural-join primitive [`Mapping::compose`] that
//! underlies the MatchCompose operation (Section 5.1).
//!
//! Persistence is pluggable behind [`RepositoryBackend`] — the embedded
//! stand-in for the paper's external DBMS (see DESIGN.md, substitution 3):
//! [`MemoryBackend`] for in-process stores, [`FileBackend`] for a single
//! human-readable JSON file written atomically (temp file + rename), and
//! [`PersistentRepository`] as the thread-safe write-through handle the
//! long-running `coma-server` serves requests from. The plain
//! [`Repository::save`] / [`Repository::load`] convenience pair remains
//! for one-shot use.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod cube;
mod mapping;
mod store;

pub use backend::{FileBackend, MemoryBackend, PersistentRepository, RepositoryBackend};
pub use cube::StoredCube;
pub use mapping::{Correspondence, Mapping, MappingKind};
pub use store::{shared, PivotChain, Repository, RepositoryError, SharedRepository};
