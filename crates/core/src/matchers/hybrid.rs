//! The hybrid element-level matchers of Section 4.2: `Name`, `NamePath`
//! and `TypeName`. (The hybrid structural matchers `Children` and `Leaves`
//! live in [`super::structural`].)

use crate::cube::SimMatrix;
use crate::matchers::context::MatchContext;
use crate::matchers::name_engine::NameEngine;
use crate::matchers::Matcher;
use std::sync::Arc;

/// The hybrid `Name` matcher: tokenization, abbreviation expansion and a
/// combination of simple matchers over the token sets (Table 4 defaults:
/// Trigram + Synonym, Max aggregation, Both/Max1, Average).
#[derive(Debug, Clone, Default)]
pub struct NameMatcher {
    /// The token-set engine (constituents + combination strategy).
    pub engine: NameEngine,
}

impl NameMatcher {
    /// `Name` with the paper's default engine.
    pub fn new() -> NameMatcher {
        NameMatcher::default()
    }

    /// `Name` with a custom engine.
    pub fn with_engine(engine: NameEngine) -> NameMatcher {
        NameMatcher { engine }
    }
}

impl Matcher for NameMatcher {
    fn name(&self) -> &str {
        "Name"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        let mut cache = ctx.name_sim_cache(&self.engine);
        for i in 0..ctx.rows() {
            let a = ctx.source_name(i);
            for j in 0..ctx.cols() {
                if !ctx.allows(i, j) {
                    continue;
                }
                let b = ctx.target_name(j);
                let sim = cache.get_or_compute(a, b, || self.engine.similarity(a, b, ctx.aux));
                out.set(i, j, sim);
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }
}

/// The hybrid `NamePath` matcher: concatenates all element names along the
/// path into a long name and applies `Name` to it. "Considering the
/// complete name path of an element provides additional tokens […] it is
/// possible to distinguish between different contexts of the same element,
/// e.g. ShipTo.Street and BillTo.Street" (Section 4.2).
#[derive(Debug, Clone, Default)]
pub struct NamePathMatcher {
    /// The token-set engine applied to the concatenated path names.
    pub engine: NameEngine,
}

impl NamePathMatcher {
    /// `NamePath` with the paper's default engine.
    pub fn new() -> NamePathMatcher {
        NamePathMatcher::default()
    }

    /// `NamePath` with a custom engine.
    pub fn with_engine(engine: NameEngine) -> NamePathMatcher {
        NamePathMatcher { engine }
    }
}

impl Matcher for NamePathMatcher {
    fn name(&self) -> &str {
        "NamePath"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        // Pre-compute the token set of every path's long name once (shared
        // through the memo when one is attached).
        let src_tokens: Vec<(String, Arc<Vec<String>>)> = (0..ctx.rows())
            .map(|i| {
                let long = ctx
                    .source_paths
                    .join_names(ctx.source, ctx.source_elem(i), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let tgt_tokens: Vec<(String, Arc<Vec<String>>)> = (0..ctx.cols())
            .map(|j| {
                let long = ctx
                    .target_paths
                    .join_names(ctx.target, ctx.target_elem(j), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        let mut cache = ctx.name_sim_cache(&self.engine);
        for (i, (a, t1)) in src_tokens.iter().enumerate() {
            for (j, (b, t2)) in tgt_tokens.iter().enumerate() {
                if !ctx.allows(i, j) {
                    continue;
                }
                let sim = cache
                    .get_or_compute(a, b, || self.engine.token_set_similarity(t1, t2, ctx.aux));
                out.set(i, j, sim);
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }
}

/// The hybrid `TypeName` matcher: a weighted combination of `DataType` and
/// `Name` similarity. "The default weights of the name and data type
/// similarity, 0.7 and 0.3, respectively, permit to match attributes with
/// similar names but different data types" (Section 6.4, Table 4).
#[derive(Debug, Clone)]
pub struct TypeNameMatcher {
    /// The name engine used for the `Name` constituent.
    pub engine: NameEngine,
    /// Weight of the name similarity (default 0.7).
    pub name_weight: f64,
    /// Weight of the data-type similarity (default 0.3).
    pub type_weight: f64,
}

impl TypeNameMatcher {
    /// `TypeName` with the paper's defaults.
    pub fn new() -> TypeNameMatcher {
        TypeNameMatcher::default()
    }

    /// `TypeName` with custom weights (normalized internally).
    pub fn with_weights(name_weight: f64, type_weight: f64) -> TypeNameMatcher {
        assert!(name_weight >= 0.0 && type_weight >= 0.0 && name_weight + type_weight > 0.0);
        TypeNameMatcher {
            engine: NameEngine::paper_default(),
            name_weight,
            type_weight,
        }
    }
}

impl Default for TypeNameMatcher {
    fn default() -> Self {
        TypeNameMatcher {
            engine: NameEngine::paper_default(),
            name_weight: 0.7,
            type_weight: 0.3,
        }
    }
}

impl Matcher for TypeNameMatcher {
    fn name(&self) -> &str {
        "TypeName"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let total = self.name_weight + self.type_weight;
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        let mut cache = ctx.name_sim_cache(&self.engine);
        for i in 0..ctx.rows() {
            let a_name = ctx.source_name(i);
            let a_type = ctx
                .source
                .node(ctx.source_paths.node_of(ctx.source_elem(i)))
                .datatype;
            for j in 0..ctx.cols() {
                if !ctx.allows(i, j) {
                    continue;
                }
                let b_name = ctx.target_name(j);
                let b_type = ctx
                    .target
                    .node(ctx.target_paths.node_of(ctx.target_elem(j)))
                    .datatype;
                let name_sim = cache.get_or_compute(a_name, b_name, || {
                    self.engine.similarity(a_name, b_name, ctx.aux)
                });
                let type_sim = ctx.aux.type_compat.similarity_opt(a_type, b_type);
                out.set(
                    i,
                    j,
                    (self.name_weight * name_sim + self.type_weight * type_sim) / total,
                );
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use crate::matchers::synonym::SynonymTable;
    use coma_graph::{PathSet, Schema};

    fn po1() -> Schema {
        coma_sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (poNo INT, shipToStreet VARCHAR(200), shipToCity VARCHAR(200));
             CREATE TABLE PO1.Customer (custNo INT, custCity VARCHAR(200));",
            "PO1",
        )
        .unwrap()
    }

    fn po2() -> Schema {
        coma_xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap()
    }

    fn aux() -> Auxiliary {
        let mut a = Auxiliary::standard();
        a.synonyms = SynonymTable::purchase_order();
        a
    }

    fn sim_of(
        matcher: &dyn Matcher,
        s1: &Schema,
        s2: &Schema,
        aux: &Auxiliary,
        src: &str,
        tgt: &str,
    ) -> f64 {
        let p1 = PathSet::new(s1).unwrap();
        let p2 = PathSet::new(s2).unwrap();
        let ctx = MatchContext::new(s1, s2, &p1, &p2, aux);
        let m = matcher.compute(&ctx);
        let i = p1.find_by_full_name(s1, src).unwrap().index();
        let j = p2.find_by_full_name(s2, tgt).unwrap().index();
        m.get(i, j)
    }

    /// The Table 1 scenario: TypeName and NamePath similarities of three
    /// PO1 elements against PO2.DeliverTo.Address.City. We reproduce the
    /// *ordering* structure, not the exact decimals (the paper's matcher
    /// internals differ in unspecified details).
    #[test]
    fn table_1_orderings_hold() {
        let (s1, s2, aux) = (po1(), po2(), aux());
        let tn = TypeNameMatcher::new();
        let np = NamePathMatcher::new();
        let city = "PO2.DeliverTo.Address.City";

        // TypeName: custCity > shipToCity > shipToStreet (Table 1).
        let tn_ship_city = sim_of(&tn, &s1, &s2, &aux, "PO1.ShipTo.shipToCity", city);
        let tn_cust_city = sim_of(&tn, &s1, &s2, &aux, "PO1.Customer.custCity", city);
        let tn_ship_street = sim_of(&tn, &s1, &s2, &aux, "PO1.ShipTo.shipToStreet", city);
        assert!(
            tn_cust_city > tn_ship_street,
            "{tn_cust_city} vs {tn_ship_street}"
        );
        assert!(
            tn_ship_city > tn_ship_street,
            "{tn_ship_city} vs {tn_ship_street}"
        );

        // NamePath: shipToCity > shipToStreet > custCity (Table 1): the
        // path context (ShipTo ≈ DeliverTo via synonym) outweighs.
        let np_ship_city = sim_of(&np, &s1, &s2, &aux, "PO1.ShipTo.shipToCity", city);
        let np_ship_street = sim_of(&np, &s1, &s2, &aux, "PO1.ShipTo.shipToStreet", city);
        let np_cust_city = sim_of(&np, &s1, &s2, &aux, "PO1.Customer.custCity", city);
        assert!(
            np_ship_city > np_ship_street,
            "{np_ship_city} vs {np_ship_street}"
        );
        assert!(
            np_ship_city > np_cust_city,
            "{np_ship_city} vs {np_cust_city}"
        );
    }

    #[test]
    fn namepath_distinguishes_contexts_of_shared_elements() {
        // ShipTo.Street should be closer to DeliverTo.Address.Street than
        // to BillTo.Address.Street.
        let (s1, s2, aux) = (po1(), po2(), aux());
        let np = NamePathMatcher::new();
        let deliver = sim_of(
            &np,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToStreet",
            "PO2.DeliverTo.Address.Street",
        );
        let bill = sim_of(
            &np,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToStreet",
            "PO2.BillTo.Address.Street",
        );
        assert!(deliver > bill, "{deliver} vs {bill}");
    }

    #[test]
    fn name_matcher_ignores_context() {
        // Name sees only the last element name, so the two City paths are
        // indistinguishable — the instability Section 7.3 reports.
        let (s1, s2, aux) = (po1(), po2(), aux());
        let nm = NameMatcher::new();
        let a = sim_of(
            &nm,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToCity",
            "PO2.DeliverTo.Address.City",
        );
        let b = sim_of(
            &nm,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToCity",
            "PO2.BillTo.Address.City",
        );
        assert_eq!(a, b);
        assert!(a > 0.4);
    }

    #[test]
    fn typename_prefers_compatible_datatypes_on_name_ties() {
        // Section 6.4: "When several attributes exhibit about the same name
        // similarity, candidates with higher data type compatibility are
        // preferred."
        let s1 = coma_sql::import_ddl("CREATE TABLE T.a (amount DECIMAL(10,2));", "S1").unwrap();
        let s2 = coma_sql::import_ddl(
            "CREATE TABLE T.b (amount DECIMAL(12,2), amounts VARCHAR(99));",
            "S2",
        )
        .unwrap();
        let aux = Auxiliary::standard();
        let tn = TypeNameMatcher::new();
        let same_type = sim_of(&tn, &s1, &s2, &aux, "S1.a.amount", "S2.b.amount");
        let diff_type = sim_of(&tn, &s1, &s2, &aux, "S1.a.amount", "S2.b.amounts");
        assert!(same_type > diff_type, "{same_type} vs {diff_type}");
    }

    #[test]
    #[should_panic]
    fn typename_rejects_zero_weights() {
        let _ = TypeNameMatcher::with_weights(0.0, 0.0);
    }
}
