//! Import of XML Schemas into COMA's internal graph representation,
//! following the semantics of Figure 1 in the paper:
//!
//! * every element declaration becomes a node;
//! * an element typed with a **named complex type** contains a single shared
//!   node for that type (so `DeliverTo` and `BillTo`, both of type
//!   `Address`, contain the *same* `Address` subtree and produce paths
//!   `PO2.DeliverTo.Address.City` and `PO2.BillTo.Address.City`);
//! * an element with an **anonymous** complex type gets the type's content
//!   directly as children;
//! * `ref=` references to global elements share the referenced node;
//! * attributes become leaf children;
//! * elements with built-in or simple types become typed leaves.

use crate::error::{Result, XmlError};
use crate::parser::{local, parse_document};
use crate::xsd::{parse_xsd, ComplexType, ElementDecl, XsdSchema};
use coma_graph::{DataType, Node, NodeId, Schema, SchemaBuilder};
use std::collections::HashMap;

/// Parses XSD source text and imports it as a COMA schema named `name`.
///
/// The graph root is chosen as follows:
/// 1. if exactly one global element is never `ref=`-referenced, it is the
///    root;
/// 2. otherwise, if there are no global elements and exactly one complex
///    type is never used as another declaration's type, that type is the
///    root (the paper's PO2 case);
/// 3. otherwise a synthetic root named `name` is created containing every
///    unreferenced global element.
pub fn import_xsd(source: &str, name: &str) -> Result<Schema> {
    let doc = parse_document(source)?;
    let xsd = parse_xsd(&doc)?;
    import_parsed(&xsd, name)
}

/// Imports an already-parsed [`XsdSchema`].
pub fn import_parsed(xsd: &XsdSchema, name: &str) -> Result<Schema> {
    let mut importer = Importer::new(xsd, name);
    importer.run()?;
    Ok(importer.builder.build()?)
}

struct Importer<'a> {
    xsd: &'a XsdSchema,
    name: String,
    builder: SchemaBuilder,
    complex_types: HashMap<&'a str, &'a ComplexType>,
    simple_types: HashMap<&'a str, Option<&'a str>>,
    global_elements: HashMap<&'a str, &'a ElementDecl>,
    /// Nodes already built for named complex types (shared fragments).
    type_nodes: HashMap<String, NodeId>,
    /// Nodes already built for global elements (shared via `ref=`).
    element_nodes: HashMap<String, NodeId>,
    /// Named types currently being expanded, for recursion detection.
    building: Vec<String>,
}

impl<'a> Importer<'a> {
    fn new(xsd: &'a XsdSchema, name: &str) -> Importer<'a> {
        let complex_types = xsd
            .complex_types
            .iter()
            .filter_map(|ct| ct.name.as_deref().map(|n| (n, ct)))
            .collect();
        let simple_types = xsd
            .simple_types
            .iter()
            .map(|st| (st.name.as_str(), st.base.as_deref()))
            .collect();
        let global_elements = xsd
            .elements
            .iter()
            .filter_map(|e| e.name.as_deref().map(|n| (n, e)))
            .collect();
        Importer {
            xsd,
            name: name.to_string(),
            builder: SchemaBuilder::new(name),
            complex_types,
            simple_types,
            global_elements,
            type_nodes: HashMap::new(),
            element_nodes: HashMap::new(),
            building: Vec::new(),
        }
    }

    fn run(&mut self) -> Result<()> {
        let roots = self.root_candidates();
        match roots.as_slice() {
            [] => Err(XmlError::xsd(
                "schema declares no global element or unused complex type to use as root",
            )),
            [RootCandidate::Element(decl)] => {
                let decl = *decl;
                self.build_global_element(decl)?;
                Ok(())
            }
            [RootCandidate::Type(ct)] => {
                // The paper's PO2 case: the type itself is the root node.
                let ct = *ct;
                let type_name = ct.name.clone().expect("top-level types are named");
                let node = self
                    .builder
                    .add_node(Node::new(type_name.clone()).with_type_name(type_name.clone()));
                self.type_nodes.insert(type_name.clone(), node);
                self.building.push(type_name);
                self.add_type_content(node, ct)?;
                self.building.pop();
                Ok(())
            }
            many => {
                // Synthetic root containing all unreferenced global elements.
                let root = self.builder.add_node(Node::new(self.name.clone()));
                let decls: Vec<&ElementDecl> = many
                    .iter()
                    .filter_map(|c| match c {
                        RootCandidate::Element(d) => Some(*d),
                        RootCandidate::Type(_) => None,
                    })
                    .collect();
                if decls.is_empty() {
                    return Err(XmlError::xsd(
                        "cannot choose a root: multiple unused complex types and no global elements",
                    ));
                }
                for decl in decls {
                    let child = self.build_global_element(decl)?;
                    self.builder.add_child(root, child)?;
                }
                Ok(())
            }
        }
    }

    fn root_candidates(&self) -> Vec<RootCandidate<'a>> {
        // Global elements never referenced via ref=.
        let mut referenced: Vec<&str> = Vec::new();
        fn walk<'b>(decls: &'b [ElementDecl], out: &mut Vec<&'b str>) {
            for d in decls {
                if let Some(r) = d.reference.as_deref() {
                    out.push(r);
                }
                if let Some(t) = &d.inline_type {
                    walk(&t.elements, out);
                }
            }
        }
        walk(&self.xsd.elements, &mut referenced);
        for ct in &self.xsd.complex_types {
            walk(&ct.elements, &mut referenced);
        }

        let element_candidates: Vec<RootCandidate<'a>> = self
            .xsd
            .elements
            .iter()
            .filter(|e| {
                e.name
                    .as_deref()
                    .is_some_and(|n| !referenced.iter().any(|r| local(r) == n))
            })
            .map(RootCandidate::Element)
            .collect();
        if !element_candidates.is_empty() {
            return element_candidates;
        }

        // No global elements: find complex types not used as a type anywhere.
        let mut used_types: Vec<&str> = Vec::new();
        fn walk_types<'b>(decls: &'b [ElementDecl], out: &mut Vec<&'b str>) {
            for d in decls {
                if let Some(t) = d.type_ref.as_deref() {
                    out.push(local(t));
                }
                if let Some(t) = &d.inline_type {
                    walk_types(&t.elements, out);
                }
            }
        }
        walk_types(&self.xsd.elements, &mut used_types);
        for ct in &self.xsd.complex_types {
            walk_types(&ct.elements, &mut used_types);
        }
        self.xsd
            .complex_types
            .iter()
            .filter(|ct| ct.name.as_deref().is_some_and(|n| !used_types.contains(&n)))
            .map(RootCandidate::Type)
            .collect()
    }

    /// Builds (or reuses) the node for a global element declaration.
    fn build_global_element(&mut self, decl: &'a ElementDecl) -> Result<NodeId> {
        let name = decl
            .name
            .clone()
            .ok_or_else(|| XmlError::xsd("global element without a name"))?;
        if let Some(&node) = self.element_nodes.get(&name) {
            return Ok(node);
        }
        let node = self.build_element_node(decl)?;
        self.element_nodes.insert(name, node);
        Ok(node)
    }

    /// Builds the node for an element declaration and its subtree, returning
    /// the element's node id. `ref=` declarations resolve to the shared
    /// global element node.
    fn build_element(&mut self, decl: &'a ElementDecl) -> Result<NodeId> {
        if let Some(r) = decl.reference.clone() {
            let target = local(&r).to_string();
            if let Some(&node) = self.element_nodes.get(&target) {
                return Ok(node);
            }
            let global = self
                .global_elements
                .get(target.as_str())
                .copied()
                .ok_or_else(|| {
                    XmlError::xsd(format!("ref=\"{r}\" does not name a global element"))
                })?;
            return self.build_global_element(global);
        }
        self.build_element_node(decl)
    }

    fn build_element_node(&mut self, decl: &'a ElementDecl) -> Result<NodeId> {
        let name = decl
            .name
            .clone()
            .ok_or_else(|| XmlError::xsd("element without name or ref"))?;
        let mut node = Node::new(name);
        if let Some(a) = &decl.annotation {
            node = node.with_annotation(a.clone());
        }

        // Case 1: inline anonymous complex type — content attaches directly.
        if let Some(inline) = &decl.inline_type {
            let id = self.builder.add_node(node);
            self.add_type_content(id, inline)?;
            return Ok(id);
        }

        // Case 2: named type.
        if let Some(type_ref) = decl.type_ref.clone() {
            let type_local = local(&type_ref).to_string();
            if let Some(ct) = self.complex_types.get(type_local.as_str()).copied() {
                let id = self
                    .builder
                    .add_node(node.with_type_name(type_local.clone()));
                let type_node = self.type_node(&type_local, ct)?;
                self.builder.add_child(id, type_node)?;
                return Ok(id);
            }
            // Simple type (named) or XSD built-in → typed leaf.
            let datatype = match self.simple_types.get(type_local.as_str()) {
                Some(Some(base)) => DataType::from_xsd(base),
                Some(None) => DataType::Any,
                None => DataType::from_xsd(&type_ref),
            };
            return Ok(self
                .builder
                .add_node(node.with_datatype(datatype).with_type_name(type_ref)));
        }

        // Case 3: untyped — an untyped leaf.
        Ok(self.builder.add_node(node))
    }

    /// Returns the shared node of a named complex type, building its subtree
    /// on first use.
    fn type_node(&mut self, type_name: &str, ct: &'a ComplexType) -> Result<NodeId> {
        if self.building.iter().any(|t| t == type_name) {
            return Err(XmlError::xsd(format!(
                "recursive complex type `{type_name}` cannot be represented as a DAG"
            )));
        }
        if let Some(&node) = self.type_nodes.get(type_name) {
            return Ok(node);
        }
        let mut node = Node::new(type_name.to_string()).with_type_name(type_name.to_string());
        if let Some(a) = &ct.annotation {
            node = node.with_annotation(a.clone());
        }
        let id = self.builder.add_node(node);
        self.type_nodes.insert(type_name.to_string(), id);
        self.building.push(type_name.to_string());
        self.add_type_content(id, ct)?;
        self.building.pop();
        Ok(id)
    }

    /// Adds a complex type's attributes and element content under `parent`.
    fn add_type_content(&mut self, parent: NodeId, ct: &'a ComplexType) -> Result<()> {
        for attr in &ct.attributes {
            let datatype = attr
                .type_ref
                .as_deref()
                .map(|t| match self.simple_types.get(local(t)) {
                    Some(Some(base)) => DataType::from_xsd(base),
                    Some(None) => DataType::Any,
                    None => DataType::from_xsd(t),
                })
                .unwrap_or(DataType::Text);
            let mut node = Node::new(attr.name.clone()).with_datatype(datatype);
            if let Some(t) = &attr.type_ref {
                node = node.with_type_name(t.clone());
            }
            if let Some(a) = &attr.annotation {
                node = node.with_annotation(a.clone());
            }
            let id = self.builder.add_node(node);
            self.builder.add_child(parent, id)?;
        }
        for el in &ct.elements {
            let child = self.build_element(el)?;
            self.builder.add_child(parent, child)?;
        }
        Ok(())
    }
}

enum RootCandidate<'a> {
    Element(&'a ElementDecl),
    Type(&'a ComplexType),
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_graph::{PathSet, SchemaStats};

    const PO2_XSD: &str = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

    #[test]
    fn po2_import_matches_figure_1() {
        let s = import_xsd(PO2_XSD, "PO2").unwrap();
        let ps = PathSet::new(&s).unwrap();
        let st = SchemaStats::compute(&s, &ps);
        // Figure 1b: PO2, DeliverTo, BillTo, shared Address, Street, City,
        // Zip = 7 nodes, 11 paths, depth 4.
        assert_eq!(st.nodes, 7);
        assert_eq!(st.paths, 11);
        assert_eq!(st.max_depth, 4);
        assert!(ps
            .find_by_full_name(&s, "PO2.DeliverTo.Address.City")
            .is_some());
        assert!(ps.find_by_full_name(&s, "PO2.BillTo.Address.Zip").is_some());
        let zip = ps.find_by_full_name(&s, "PO2.BillTo.Address.Zip").unwrap();
        assert_eq!(s.node(ps.node_of(zip)).datatype, Some(DataType::Decimal));
    }

    #[test]
    fn global_element_root() {
        let s = import_xsd(
            r#"<schema>
                 <element name="PurchaseOrder">
                   <complexType><sequence>
                     <element name="poNo" type="xsd:int"/>
                   </sequence></complexType>
                 </element>
               </schema>"#,
            "S",
        )
        .unwrap();
        assert_eq!(s.node(s.root()).name, "PurchaseOrder");
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn ref_shares_global_element_node() {
        let s = import_xsd(
            r#"<schema>
                 <element name="root">
                   <complexType><sequence>
                     <element name="a"><complexType><sequence>
                       <element ref="shared"/>
                     </sequence></complexType></element>
                     <element name="b"><complexType><sequence>
                       <element ref="shared"/>
                     </sequence></complexType></element>
                   </sequence></complexType>
                 </element>
                 <element name="shared" type="xsd:string"/>
               </schema>"#,
            "S",
        )
        .unwrap();
        let ps = PathSet::new(&s).unwrap();
        // root, a, b, shared = 4 nodes; paths: root, a, b, a.shared, b.shared = 5.
        assert_eq!(s.node_count(), 4);
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn attributes_become_leaves() {
        let s = import_xsd(
            r#"<schema>
                 <element name="item">
                   <complexType>
                     <sequence><element name="price" type="xsd:decimal"/></sequence>
                     <attribute name="sku" type="xsd:ID"/>
                   </complexType>
                 </element>
               </schema>"#,
            "S",
        )
        .unwrap();
        let ps = PathSet::new(&s).unwrap();
        let sku = ps.find_by_full_name(&s, "item.sku").unwrap();
        assert!(ps.is_leaf(sku));
        assert_eq!(s.node(ps.node_of(sku)).datatype, Some(DataType::Id));
    }

    #[test]
    fn named_simple_type_resolves_to_base() {
        let s = import_xsd(
            r#"<schema>
                 <simpleType name="zipType"><restriction base="xsd:decimal"/></simpleType>
                 <element name="root">
                   <complexType><sequence>
                     <element name="zip" type="zipType"/>
                   </sequence></complexType>
                 </element>
               </schema>"#,
            "S",
        )
        .unwrap();
        let ps = PathSet::new(&s).unwrap();
        let zip = ps.find_by_full_name(&s, "root.zip").unwrap();
        assert_eq!(s.node(ps.node_of(zip)).datatype, Some(DataType::Decimal));
    }

    #[test]
    fn recursive_type_is_rejected() {
        let err = import_xsd(
            r#"<schema>
                 <element name="root" type="T"/>
                 <complexType name="T">
                   <sequence><element name="child" type="T"/></sequence>
                 </complexType>
               </schema>"#,
            "S",
        )
        .unwrap_err();
        assert!(matches!(err, XmlError::Xsd { .. }), "{err}");
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert!(import_xsd("<schema/>", "S").is_err());
    }

    #[test]
    fn multiple_global_elements_get_synthetic_root() {
        let s = import_xsd(
            r#"<schema>
                 <element name="header" type="xsd:string"/>
                 <element name="body" type="xsd:string"/>
               </schema>"#,
            "Msg",
        )
        .unwrap();
        assert_eq!(s.node(s.root()).name, "Msg");
        assert_eq!(s.children(s.root()).len(), 2);
    }

    #[test]
    fn annotations_are_imported() {
        let s = import_xsd(
            r#"<schema>
                 <element name="root">
                   <annotation><documentation>the order</documentation></annotation>
                   <complexType><sequence>
                     <element name="x" type="xsd:string"/>
                   </sequence></complexType>
                 </element>
               </schema>"#,
            "S",
        )
        .unwrap();
        assert_eq!(s.node(s.root()).annotation.as_deref(), Some("the order"));
    }
}
