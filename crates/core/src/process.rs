//! Match processing (paper, Section 3, Figure 2): matcher execution over
//! the similarity cube, combination into a match result, optional user
//! interaction across iterations.

use crate::combine::{CombinationStrategy, DirectedCandidates};
use crate::cube::SimCube;
use crate::engine::{EngineCache, EngineConfig, MatchPlan, PlanEngine, PlanOutcome};
use crate::error::{CoreError, Result};
use crate::matchers::context::{Auxiliary, MatchContext};
use crate::matchers::feedback::Feedback;
use crate::matchers::MatcherLibrary;
use crate::result::MatchResult;
use coma_graph::{PathSet, Schema};
use coma_repo::{MappingKind, Repository, StoredCube};
use serde::{Deserialize, Serialize};

/// A match strategy: which matchers to execute and how to combine their
/// results. "COMA thus allows us to tailor match strategies by selecting
/// the match algorithms and their combination for a given match problem"
/// (Section 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchStrategy {
    /// Library names of the matchers to execute.
    pub matchers: Vec<String>,
    /// The combination strategy for the final step.
    pub combination: CombinationStrategy,
}

/// The five hybrid no-reuse matchers whose combination the paper calls
/// `All` (Section 7.2).
pub const ALL_HYBRIDS: [&str; 5] = ["Name", "NamePath", "TypeName", "Children", "Leaves"];

impl MatchStrategy {
    /// The paper's default operation: the `All` combination of the five
    /// hybrid matchers with `(Average, Both, Threshold(0.5)+Delta(0.02))`.
    pub fn paper_default() -> MatchStrategy {
        MatchStrategy {
            matchers: ALL_HYBRIDS.iter().map(|s| s.to_string()).collect(),
            combination: CombinationStrategy::paper_default(),
        }
    }

    /// A strategy executing the given matchers with the default
    /// combination.
    pub fn with_matchers<S: Into<String>>(matchers: impl IntoIterator<Item = S>) -> MatchStrategy {
        MatchStrategy {
            matchers: matchers.into_iter().map(Into::into).collect(),
            combination: CombinationStrategy::paper_default(),
        }
    }

    /// Builder-style combination override.
    pub fn with_combination(mut self, combination: CombinationStrategy) -> MatchStrategy {
        self.combination = combination;
        self
    }

    /// The equivalent one-stage [`MatchPlan`]: a strategy is the
    /// degenerate plan `Matchers(matchers)[combination]`.
    pub fn into_plan(self) -> MatchPlan {
        MatchPlan::from(self)
    }
}

impl Default for MatchStrategy {
    fn default() -> Self {
        MatchStrategy::paper_default()
    }
}

/// The outcome of one match operation: the combined result plus the
/// underlying similarity cube (kept for inspection, storage and re-combination).
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// The combined match result.
    pub result: MatchResult,
    /// The `k × m × n` cube of matcher-specific similarities.
    pub cube: SimCube,
}

/// The COMA system: a matcher library, auxiliary information, and the
/// repository of schemas and previous match results.
pub struct Coma {
    library: MatcherLibrary,
    aux: Auxiliary,
    repository: Repository,
}

impl Coma {
    /// A COMA instance with the standard library and auxiliary tables and
    /// an empty repository.
    pub fn new() -> Coma {
        Coma {
            library: MatcherLibrary::standard(),
            aux: Auxiliary::standard(),
            repository: Repository::new(),
        }
    }

    /// Read access to the matcher library.
    pub fn library(&self) -> &MatcherLibrary {
        &self.library
    }

    /// Mutable access to the matcher library (to register custom matchers).
    pub fn library_mut(&mut self) -> &mut MatcherLibrary {
        &mut self.library
    }

    /// Read access to the auxiliary information.
    pub fn aux(&self) -> &Auxiliary {
        &self.aux
    }

    /// Mutable access to the auxiliary information (synonyms, feedback, …).
    pub fn aux_mut(&mut self) -> &mut Auxiliary {
        &mut self.aux
    }

    /// Read access to the repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Mutable access to the repository.
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repository
    }

    /// Executes the named matchers on a prepared context, producing the
    /// similarity cube (the "matcher execution" phase of Figure 2).
    pub fn execute_matchers(&self, ctx: &MatchContext<'_>, names: &[String]) -> Result<SimCube> {
        let mut cube = SimCube::new();
        for name in names {
            let matcher = self
                .library
                .get(name)
                .ok_or_else(|| CoreError::UnknownMatcher(name.clone()))?;
            cube.push(name.clone(), matcher.compute(ctx));
        }
        Ok(cube)
    }

    /// Combines a similarity cube into a match result (the "combination of
    /// match results" phase): aggregation, feedback pinning, direction +
    /// selection, schema similarity.
    pub fn combine_cube(
        &self,
        cube: &SimCube,
        ctx: &MatchContext<'_>,
        combination: &CombinationStrategy,
    ) -> MatchResult {
        combine_cube_with_feedback(cube, ctx, combination, &self.aux.feedback)
    }

    /// Runs a complete automatic match operation on two schemas.
    ///
    /// Since the plan-engine refactor this executes the strategy's
    /// one-stage plan: independent matchers run in parallel and shared
    /// work is memoized, with results identical to the legacy sequential
    /// pipeline ([`Coma::execute_matchers`] + [`Coma::combine_cube`]).
    pub fn match_schemas(
        &self,
        source: &Schema,
        target: &Schema,
        strategy: &MatchStrategy,
    ) -> Result<MatchOutcome> {
        let source_paths = PathSet::new(source)?;
        let target_paths = PathSet::new(target)?;
        let ctx = MatchContext::new(source, target, &source_paths, &target_paths, &self.aux)
            .with_repository(&self.repository);
        let plan = MatchPlan::from(strategy);
        let outcome = PlanEngine::new(&self.library).execute(&ctx, &plan)?;
        Ok(outcome.into_outcome())
    }

    /// Runs an arbitrary [`MatchPlan`] on two schemas — the plan-aware
    /// counterpart of [`Coma::match_schemas`], for staged processes like
    /// `Seq(name filter → structural refine)` that a flat strategy cannot
    /// express.
    pub fn match_plan(
        &self,
        source: &Schema,
        target: &Schema,
        plan: &MatchPlan,
    ) -> Result<PlanOutcome> {
        self.match_plan_with(EngineConfig::default(), source, target, plan)
    }

    /// Like [`Coma::match_plan`], but with an explicit [`EngineConfig`]
    /// — the entry point for callers that tune the engine (parallelism,
    /// sharding, the sparse path, fused pruning, density/shard-size
    /// thresholds) instead of taking the defaults.
    pub fn match_plan_with(
        &self,
        cfg: EngineConfig,
        source: &Schema,
        target: &Schema,
        plan: &MatchPlan,
    ) -> Result<PlanOutcome> {
        let source_paths = PathSet::new(source)?;
        let target_paths = PathSet::new(target)?;
        let ctx = MatchContext::new(source, target, &source_paths, &target_paths, &self.aux)
            .with_repository(&self.repository);
        PlanEngine::with_config(&self.library, cfg).execute(&ctx, plan)
    }

    /// Like [`Coma::match_plan_with`], but memoizing through a shared
    /// cross-request [`EngineCache`]
    /// (see [`PlanEngine::execute_cached`]): repeat calls against the
    /// same schemas — by content, not allocation — skip tokenization,
    /// name-pair scoring, pure matcher matrices and vocabulary-index
    /// builds. The cache must be dedicated to this instance's auxiliary
    /// configuration and matcher library.
    pub fn match_plan_cached(
        &self,
        cfg: EngineConfig,
        source: &Schema,
        target: &Schema,
        plan: &MatchPlan,
        cache: &std::sync::Arc<EngineCache>,
    ) -> Result<PlanOutcome> {
        let source_paths = PathSet::new(source)?;
        let target_paths = PathSet::new(target)?;
        let ctx = MatchContext::new(source, target, &source_paths, &target_paths, &self.aux)
            .with_repository(&self.repository);
        PlanEngine::with_config(&self.library, cfg).execute_cached(&ctx, plan, cache)
    }

    /// Like [`Coma::match_schemas`], but additionally stores the schemas,
    /// the similarity cube and the resulting mapping in the repository for
    /// later reuse (the paper's standard mode of operation).
    ///
    /// The path sets and context are prepared once for the whole
    /// operation (matching, mapping conversion and cube storage).
    pub fn match_and_store(
        &mut self,
        source: &Schema,
        target: &Schema,
        strategy: &MatchStrategy,
    ) -> Result<MatchResult> {
        let source_paths = PathSet::new(source)?;
        let target_paths = PathSet::new(target)?;
        let ctx = MatchContext::new(source, target, &source_paths, &target_paths, &self.aux)
            .with_repository(&self.repository);
        let plan = MatchPlan::from(strategy);
        let outcome = PlanEngine::new(&self.library).execute(&ctx, &plan)?;
        let MatchOutcome { result, cube } = outcome.into_outcome();
        let mapping = result.to_mapping(&ctx, MappingKind::Automatic);
        let stored = stored_cube(&cube, &ctx);
        self.repository.put_schema(source.clone());
        self.repository.put_schema(target.clone());
        self.repository.put_cube(stored);
        self.repository.put_mapping(mapping);
        Ok(result)
    }
}

impl Default for Coma {
    fn default() -> Self {
        Coma::new()
    }
}

/// Converts an in-memory cube into the repository's storage form (a dense
/// row-major value block, whatever storage the in-memory slices use).
pub fn stored_cube(cube: &SimCube, ctx: &MatchContext<'_>) -> StoredCube {
    let mut values = Vec::with_capacity(cube.len() * cube.rows() * cube.cols());
    let mut row = vec![0.0; cube.cols()];
    for k in 0..cube.len() {
        for i in 0..cube.rows() {
            cube.slice(k).copy_row_into(i, &mut row);
            values.extend_from_slice(&row);
        }
    }
    StoredCube {
        source_schema: ctx.source.name().to_string(),
        target_schema: ctx.target.name().to_string(),
        matchers: cube.matcher_names().to_vec(),
        source_paths: (0..ctx.rows()).map(|i| ctx.source_full_name(i)).collect(),
        target_paths: (0..ctx.cols()).map(|j| ctx.target_full_name(j)).collect(),
        values,
    }
}

/// The combination pipeline with explicit feedback (used directly by the
/// evaluation harness, which re-combines cached cubes under many
/// strategies).
pub fn combine_cube_with_feedback(
    cube: &SimCube,
    ctx: &MatchContext<'_>,
    combination: &CombinationStrategy,
    feedback: &Feedback,
) -> MatchResult {
    let mut matrix = combination.aggregation.aggregate(cube);
    feedback.pin(&mut matrix, ctx);
    let candidates =
        DirectedCandidates::select(&matrix, combination.direction, &combination.selection);
    let schema_similarity =
        combination
            .combined_sim
            .compute(&candidates, matrix.rows(), matrix.cols());
    MatchResult::from_pairs(ctx, candidates.pairs(), Some(schema_similarity))
}

/// An interactive match session (Figure 2): iterations of matcher
/// execution and combination, with user feedback in between.
///
/// "In interactive mode, the user can interact with COMA for each iteration
/// to specify the match strategy […], define match or mismatch
/// relationships, and accept or reject match candidates proposed in the
/// previous iteration."
pub struct MatchSession<'a> {
    coma: &'a Coma,
    source: &'a Schema,
    target: &'a Schema,
    source_paths: PathSet,
    target_paths: PathSet,
    /// The strategy for the next iteration — may be changed between
    /// iterations.
    pub strategy: MatchStrategy,
    feedback: Feedback,
    iterations: Vec<MatchResult>,
}

impl<'a> MatchSession<'a> {
    /// Opens a session for one match task.
    pub fn new(
        coma: &'a Coma,
        source: &'a Schema,
        target: &'a Schema,
        strategy: MatchStrategy,
    ) -> Result<MatchSession<'a>> {
        Ok(MatchSession {
            coma,
            source,
            target,
            source_paths: PathSet::new(source)?,
            target_paths: PathSet::new(target)?,
            strategy,
            feedback: coma.aux().feedback.clone(),
            iterations: Vec::new(),
        })
    }

    /// Accepts a proposed candidate (by dotted full names) as a match.
    pub fn accept(&mut self, source_path: &str, target_path: &str) {
        self.feedback.add_match(source_path, target_path);
    }

    /// Rejects a proposed candidate as a mismatch.
    pub fn reject(&mut self, source_path: &str, target_path: &str) {
        self.feedback.add_mismatch(source_path, target_path);
    }

    /// The accumulated session feedback.
    pub fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    /// Runs one match iteration with the current strategy and feedback.
    pub fn run_iteration(&mut self) -> Result<&MatchResult> {
        // The session's feedback overrides the system-wide feedback.
        let mut aux = self.coma.aux().clone();
        aux.feedback = self.feedback.clone();
        let ctx = MatchContext::new(
            self.source,
            self.target,
            &self.source_paths,
            &self.target_paths,
            &aux,
        )
        .with_repository(self.coma.repository());
        let plan = MatchPlan::from(&self.strategy);
        let outcome = PlanEngine::new(self.coma.library()).execute(&ctx, &plan)?;
        self.iterations.push(outcome.result);
        Ok(self.iterations.last().expect("just pushed"))
    }

    /// The most recent iteration's result.
    pub fn last(&self) -> Option<&MatchResult> {
        self.iterations.last()
    }

    /// Number of iterations run so far.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{Aggregation, Direction, Selection};
    use crate::matchers::synonym::SynonymTable;

    fn po1() -> Schema {
        coma_sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (
                 poNo INT,
                 custNo INT REFERENCES PO1.Customer,
                 shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
                 PRIMARY KEY (poNo));
             CREATE TABLE PO1.Customer (
                 custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
                 custCity VARCHAR(200), custZip VARCHAR(20),
                 PRIMARY KEY (custNo));",
            "PO1",
        )
        .unwrap()
    }

    fn po2() -> Schema {
        coma_xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap()
    }

    fn coma() -> Coma {
        let mut c = Coma::new();
        c.aux_mut().synonyms = SynonymTable::purchase_order();
        c
    }

    /// The Section 3 running example (Tables 1 and 2): combining TypeName
    /// and NamePath with Average aggregation selects PO1.ShipTo.shipToCity
    /// as the match candidate of PO2.DeliverTo.Address.City.
    #[test]
    fn default_operation_matches_ship_to_city() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let outcome = c
            .match_schemas(
                &s1,
                &s2,
                &MatchStrategy::with_matchers(["TypeName", "NamePath"]),
            )
            .unwrap();
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let city = p2
            .find_by_full_name(&s2, "PO2.DeliverTo.Address.City")
            .unwrap();
        let ship_city = p1.find_by_full_name(&s1, "PO1.ShipTo.shipToCity").unwrap();
        assert!(
            outcome.result.contains(ship_city, city),
            "expected shipToCity↔DeliverTo.Address.City among {:?}",
            outcome
                .result
                .candidates
                .iter()
                .map(|cand| format!(
                    "{}↔{}",
                    p1.full_name(&s1, cand.source),
                    p2.full_name(&s2, cand.target)
                ))
                .collect::<Vec<_>>()
        );
        assert!(outcome.result.schema_similarity.is_some());
        assert_eq!(outcome.cube.len(), 2);
    }

    #[test]
    fn unknown_matcher_is_an_error() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let err = c
            .match_schemas(&s1, &s2, &MatchStrategy::with_matchers(["Bogus"]))
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownMatcher(name) if name == "Bogus"));
    }

    #[test]
    fn match_and_store_populates_repository() {
        let mut c = coma();
        let (s1, s2) = (po1(), po2());
        let result = c
            .match_and_store(&s1, &s2, &MatchStrategy::paper_default())
            .unwrap();
        assert!(!result.is_empty());
        assert_eq!(c.repository().schema_count(), 2);
        assert_eq!(c.repository().mappings().len(), 1);
        assert_eq!(c.repository().cube_count(), 1);
        let cube = &c.repository().cubes_for("PO1", "PO2")[0];
        assert!(cube.is_consistent());
        assert_eq!(cube.matchers.len(), 5);
    }

    #[test]
    fn feedback_pins_survive_combination() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let mut session = MatchSession::new(&c, &s1, &s2, MatchStrategy::paper_default()).unwrap();
        session.run_iteration().unwrap();

        // Force an absurd match and a mismatch of the good one.
        session.accept("PO1.ShipTo.poNo", "PO2.DeliverTo.Address.Street");
        session.reject("PO1.ShipTo.shipToCity", "PO2.DeliverTo.Address.City");
        let result = session.run_iteration().unwrap();

        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let po_no = p1.find_by_full_name(&s1, "PO1.ShipTo.poNo").unwrap();
        let street = p2
            .find_by_full_name(&s2, "PO2.DeliverTo.Address.Street")
            .unwrap();
        let ship_city = p1.find_by_full_name(&s1, "PO1.ShipTo.shipToCity").unwrap();
        let city = p2
            .find_by_full_name(&s2, "PO2.DeliverTo.Address.City")
            .unwrap();
        assert_eq!(result.similarity_of(po_no, street), Some(1.0));
        assert!(!result.contains(ship_city, city));
        assert_eq!(session.iteration_count(), 2);
    }

    #[test]
    fn single_matcher_strategy_works() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let strategy =
            MatchStrategy::with_matchers(["NamePath"]).with_combination(CombinationStrategy {
                aggregation: Aggregation::Average,
                direction: Direction::Both,
                selection: Selection::max_n(1).with_threshold(0.5),
                combined_sim: crate::combine::CombinedSim::Average,
            });
        let outcome = c.match_schemas(&s1, &s2, &strategy).unwrap();
        assert!(!outcome.result.is_empty());
        // All proposed similarities exceed the 0.5 threshold.
        assert!(outcome.result.candidates.iter().all(|c| c.similarity > 0.5));
    }

    #[test]
    fn results_convert_to_mappings() {
        let c = coma();
        let (s1, s2) = (po1(), po2());
        let outcome = c
            .match_schemas(&s1, &s2, &MatchStrategy::paper_default())
            .unwrap();
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, c.aux());
        let mapping = outcome.result.to_mapping(&ctx, MappingKind::Automatic);
        assert_eq!(mapping.len(), outcome.result.len());
        assert_eq!(mapping.source_schema, "PO1");
        assert!(mapping
            .correspondences
            .iter()
            .all(|cor| cor.source.starts_with("PO1") && cor.target.starts_with("PO2")));
    }
}
