use std::fmt;

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while building or traversing a schema graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A containment edge would introduce a cycle, violating the rooted-DAG
    /// invariant of COMA's internal representation.
    CycleDetected {
        /// Human-readable description of the offending edge.
        edge: String,
    },
    /// A node id did not belong to the schema it was used with.
    InvalidNode {
        /// The raw index of the invalid node id.
        index: usize,
    },
    /// The schema has no root: every node has an incoming containment edge.
    NoRoot,
    /// The schema has more than one root; COMA schemas are single-rooted.
    MultipleRoots {
        /// Names of the candidate roots found.
        roots: Vec<String>,
    },
    /// Unfolding the DAG into paths exceeded the configured limit. DAG
    /// sharing can blow up exponentially; the limit keeps imports safe.
    TooManyPaths {
        /// The configured path limit that was exceeded.
        limit: usize,
    },
    /// A duplicate containment edge between the same parent and child.
    DuplicateEdge {
        /// Human-readable description of the offending edge.
        edge: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected { edge } => {
                write!(f, "containment edge {edge} would create a cycle")
            }
            GraphError::InvalidNode { index } => {
                write!(f, "node id {index} does not belong to this schema")
            }
            GraphError::NoRoot => write!(f, "schema has no root node"),
            GraphError::MultipleRoots { roots } => {
                write!(f, "schema has multiple roots: {}", roots.join(", "))
            }
            GraphError::TooManyPaths { limit } => {
                write!(f, "path unfolding exceeded the limit of {limit} paths")
            }
            GraphError::DuplicateEdge { edge } => {
                write!(f, "duplicate containment edge {edge}")
            }
        }
    }
}

impl std::error::Error for GraphError {}
