#!/usr/bin/env bash
# Repo-specific lint gates that rustc/clippy do not express, run by the
# CI lint job next to rustfmt and clippy. Two rules:
#
# 1. No `.unwrap()` / `.expect(` in the server's session/drain paths
#    (crates/server/src/server.rs and state.rs, non-test code). A panic
#    in a session thread kills that connection's drain loop; every error
#    there must flow back to the client as a `Response::Error` or
#    structured diagnostic frame instead. Test modules (everything after
#    a `#[cfg(test)]` line) are exempt.
#
# 2. No `Instant::now` lexically inside a `measure_peak(...)` argument in
#    the bench crate. The counting allocator tracks every allocation in
#    the window; a timing call in the measured closure would charge its
#    formatting/syscall allocations to the workload under measurement.
#    Time around the window, allocate inside it — never both at once.
#
# Exits nonzero with one line per violation.
set -u

cd "$(dirname "$0")/.."

status=0

# --- rule 1: panicking calls in the server session/drain paths --------
for file in crates/server/src/server.rs crates/server/src/state.rs; do
    violations=$(awk '
        /^#\[cfg\(test\)\]/ { in_tests = 1 }
        !in_tests && /\.unwrap\(\)|\.expect\(/ {
            printf "%s:%d: panicking call in a session/drain path: %s\n", FILENAME, FNR, $0
        }
    ' "$file")
    if [ -n "$violations" ]; then
        printf '%s\n' "$violations"
        status=1
    fi
done

# --- rule 2: Instant::now inside a measure_peak window ----------------
# Lexical scan: once `measure_peak(` opens, count parentheses until the
# call closes; any `Instant::now` seen while the call is open is a
# violation. Handles multi-line closures; does not try to parse strings
# or comments (neither occurs in measurement windows today — keep it
# that way).
violations=$(find crates/bench/src -name '*.rs' -print | sort | xargs awk '
    {
        line = $0
        if (depth == 0) {
            idx = index(line, "measure_peak(")
            if (idx > 0) {
                # Start counting at the opening parenthesis of the call.
                line = substr(line, idx + length("measure_peak"))
            } else {
                next
            }
        }
        if (depth > 0 && index($0, "Instant::now") > 0) {
            printf "%s:%d: Instant::now inside a measure_peak window: %s\n", FILENAME, FNR, $0
        }
        n = split(line, chars, "")
        for (i = 1; i <= n; i++) {
            if (chars[i] == "(") depth++
            else if (chars[i] == ")") {
                depth--
                if (depth == 0) {
                    # The call closed mid-line; a second window opening
                    # on the same line would be missed — none do.
                    break
                }
            }
        }
    }
' 2>/dev/null)
if [ -n "$violations" ]; then
    printf '%s\n' "$violations"
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "lint.sh: violations found" >&2
else
    echo "lint.sh: ok"
fi
exit "$status"
