//! Property-based integration tests over the combination framework: for
//! random similarity cubes, the COMA combination steps must satisfy the
//! semantic guarantees the paper relies on.

use coma::core::{
    Aggregation, CombinedSim, DirectedCandidates, Direction, Selection, SimCube, SimMatrix,
};
use proptest::prelude::*;

fn arb_cube() -> impl Strategy<Value = SimCube> {
    (1usize..4, 1usize..8, 1usize..8).prop_flat_map(|(k, m, n)| {
        proptest::collection::vec(0.0f64..=1.0, k * m * n).prop_map(move |vals| {
            let mut cube = SimCube::new();
            for s in 0..k {
                let mut mat = SimMatrix::new(m, n);
                for i in 0..m {
                    for j in 0..n {
                        mat.set(i, j, vals[(s * m + i) * n + j]);
                    }
                }
                cube.push(format!("m{s}"), mat);
            }
            cube
        })
    })
}

proptest! {
    /// Min ≤ Weighted/Average ≤ Max, cell-wise.
    #[test]
    fn aggregation_ordering(cube in arb_cube()) {
        let min = Aggregation::Min.aggregate(&cube);
        let avg = Aggregation::Average.aggregate(&cube);
        let max = Aggregation::Max.aggregate(&cube);
        for i in 0..cube.rows() {
            for j in 0..cube.cols() {
                prop_assert!(min.get(i, j) <= avg.get(i, j) + 1e-12);
                prop_assert!(avg.get(i, j) <= max.get(i, j) + 1e-12);
            }
        }
    }

    /// `Both` is the intersection of the two directional selections.
    #[test]
    fn both_is_subset_of_each_direction(cube in arb_cube()) {
        let matrix = Aggregation::Average.aggregate(&cube);
        let sel = Selection::max_n(2);
        let both: Vec<_> =
            DirectedCandidates::select(&matrix, Direction::Both, &sel).pairs();
        let ls: Vec<_> =
            DirectedCandidates::select(&matrix, Direction::LargeSmall, &sel).pairs();
        let sl: Vec<_> =
            DirectedCandidates::select(&matrix, Direction::SmallLarge, &sel).pairs();
        for pair in &both {
            prop_assert!(ls.contains(pair) || sl.contains(pair));
        }
        // Every Both pair is mutually selected, so it appears in the union
        // of the directional results and its similarity is positive.
        for &(_, _, sim) in &both {
            prop_assert!(sim > 0.0);
        }
    }

    /// Raising the threshold never adds candidates.
    #[test]
    fn threshold_is_monotone(cube in arb_cube(), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let matrix = Aggregation::Average.aggregate(&cube);
        let loose = DirectedCandidates::select(&matrix, Direction::Both, &Selection::threshold(lo)).pairs();
        let strict = DirectedCandidates::select(&matrix, Direction::Both, &Selection::threshold(hi)).pairs();
        prop_assert!(strict.len() <= loose.len());
        for pair in &strict {
            prop_assert!(loose.contains(pair));
        }
    }

    /// MaxN(n) respects its per-element budget in both directions.
    #[test]
    fn maxn_budget_holds(cube in arb_cube(), n in 1usize..4) {
        let matrix = Aggregation::Average.aggregate(&cube);
        let pairs = DirectedCandidates::select(&matrix, Direction::Both, &Selection::max_n(n)).pairs();
        for i in 0..matrix.rows() {
            prop_assert!(pairs.iter().filter(|p| p.0 == i).count() <= n);
        }
        for j in 0..matrix.cols() {
            prop_assert!(pairs.iter().filter(|p| p.1 == j).count() <= n);
        }
    }

    /// Combined similarity stays in [0, 1] and Dice dominates Average.
    #[test]
    fn combined_similarity_bounds(cube in arb_cube()) {
        let matrix = Aggregation::Average.aggregate(&cube);
        let candidates =
            DirectedCandidates::select(&matrix, Direction::Both, &Selection::max_n(1));
        let avg = CombinedSim::Average.compute(&candidates, matrix.rows(), matrix.cols());
        let dice = CombinedSim::Dice.compute(&candidates, matrix.rows(), matrix.cols());
        prop_assert!((0.0..=1.0).contains(&avg));
        prop_assert!((0.0..=1.0).contains(&dice));
        prop_assert!(dice >= avg - 1e-12, "Dice {dice} < Average {avg}");
    }

    /// Stable marriage yields an injective matching within the threshold.
    #[test]
    fn stable_marriage_is_injective(cube in arb_cube()) {
        let matrix = Aggregation::Average.aggregate(&cube);
        let pairs = coma::core::stable_marriage(&matrix, 0.3);
        let mut sources: Vec<_> = pairs.iter().map(|p| p.0).collect();
        let mut targets: Vec<_> = pairs.iter().map(|p| p.1).collect();
        sources.sort_unstable();
        targets.sort_unstable();
        let s_len = sources.len();
        let t_len = targets.len();
        sources.dedup();
        targets.dedup();
        prop_assert_eq!(sources.len(), s_len);
        prop_assert_eq!(targets.len(), t_len);
        for &(_, _, sim) in &pairs {
            prop_assert!(sim > 0.3);
        }
    }
}
