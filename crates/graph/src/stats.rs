use crate::{PathSet, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-schema statistics as reported in Table 5 of the paper: maximum path
/// depth plus node and path counts, split into inner and leaf elements.
///
/// "Except for schema 1, the number of paths is different from the number of
/// nodes, indicating the use of shared fragments in the schemas."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Longest root-to-node path, counting the root as depth 1.
    pub max_depth: usize,
    /// Total number of graph nodes.
    pub nodes: usize,
    /// Total number of paths in the unfolding.
    pub paths: usize,
    /// Nodes with containment children.
    pub inner_nodes: usize,
    /// Paths ending at inner nodes.
    pub inner_paths: usize,
    /// Nodes without containment children.
    pub leaf_nodes: usize,
    /// Paths ending at leaf nodes.
    pub leaf_paths: usize,
}

impl SchemaStats {
    /// Computes the statistics for a schema and its unfolding.
    pub fn compute(schema: &Schema, paths: &PathSet) -> SchemaStats {
        let leaf_nodes = schema.node_ids().filter(|&id| schema.is_leaf(id)).count();
        let leaf_paths = paths.iter().filter(|&p| paths.is_leaf(p)).count();
        SchemaStats {
            max_depth: paths.max_depth(),
            nodes: schema.node_count(),
            paths: paths.len(),
            inner_nodes: schema.node_count() - leaf_nodes,
            inner_paths: paths.len() - leaf_paths,
            leaf_nodes,
            leaf_paths,
        }
    }
}

impl fmt::Display for SchemaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth {} | nodes/paths {}/{} | inner {}/{} | leaf {}/{}",
            self.max_depth,
            self.nodes,
            self.paths,
            self.inner_nodes,
            self.inner_paths,
            self.leaf_nodes,
            self.leaf_paths
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, PathSet, SchemaBuilder};

    #[test]
    fn stats_for_figure1_po2() {
        let mut b = SchemaBuilder::new("PO2");
        let root = b.add_node(Node::new("PO2"));
        let deliver = b.add_node(Node::new("DeliverTo"));
        let bill = b.add_node(Node::new("BillTo"));
        let address = b.add_node(Node::new("Address"));
        let street = b.add_node(Node::new("Street"));
        let city = b.add_node(Node::new("City"));
        let zip = b.add_node(Node::new("Zip"));
        b.add_child(root, deliver).unwrap();
        b.add_child(root, bill).unwrap();
        b.add_child(deliver, address).unwrap();
        b.add_child(bill, address).unwrap();
        b.add_child(address, street).unwrap();
        b.add_child(address, city).unwrap();
        b.add_child(address, zip).unwrap();
        let s = b.build().unwrap();
        let ps = PathSet::new(&s).unwrap();
        let st = SchemaStats::compute(&s, &ps);
        assert_eq!(
            st,
            SchemaStats {
                max_depth: 4,
                nodes: 7,
                paths: 11,
                inner_nodes: 4,
                inner_paths: 5,
                leaf_nodes: 3,
                leaf_paths: 6,
            }
        );
    }
}
