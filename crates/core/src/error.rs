use std::fmt;

/// Convenience result alias for COMA core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors from match processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A strategy named a matcher that is not in the library.
    UnknownMatcher(String),
    /// A plan tree has a structurally degenerate shape.
    Plan(crate::engine::PlanError),
    /// Building the path unfolding of an input schema failed.
    Graph(coma_graph::GraphError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownMatcher(name) => {
                write!(f, "matcher `{name}` is not registered in the library")
            }
            CoreError::Plan(e) => write!(f, "invalid match plan: {e}"),
            CoreError::Graph(e) => write!(f, "schema preparation failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<coma_graph::GraphError> for CoreError {
    fn from(e: coma_graph::GraphError) -> CoreError {
        CoreError::Graph(e)
    }
}

impl From<crate::engine::PlanError> for CoreError {
    fn from(e: crate::engine::PlanError) -> CoreError {
        CoreError::Plan(e)
    }
}
