//! Workspace wiring smoke test: every `coma::` re-export is reachable and
//! the default pipeline runs end-to-end through the facade alone — two
//! small schemas in, non-empty correspondences out. Guards the Cargo
//! workspace itself (crate names, re-export paths, feature of each
//! substrate crate) rather than matcher quality.

use coma::core::{Coma, MatchContext, MatchStrategy};
use coma::graph::{PathSet, SchemaStats};
use std::collections::BTreeSet;

#[test]
fn facade_reexports_cover_the_pipeline() {
    // strings: the approximate matchers are callable through the facade.
    assert!(coma::strings::trigram_similarity("shipToCity", "shipCity") > 0.5);
    assert_eq!(
        coma::strings::tokenize("shipToCity"),
        vec!["ship", "to", "city"]
    );

    // sql: import one side from DDL.
    let source = coma::sql::import_ddl(
        "CREATE TABLE PO.Customer (
             custNo INT, custName VARCHAR(200), custCity VARCHAR(100));",
        "SqlPO",
    )
    .expect("DDL imports");

    // xml: import the other side from XSD.
    let target = coma::xml::import_xsd(
        r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
             <xsd:element name="Buyer">
               <xsd:complexType><xsd:sequence>
                 <xsd:element name="buyerNo" type="xsd:integer"/>
                 <xsd:element name="buyerName" type="xsd:string"/>
                 <xsd:element name="buyerCity" type="xsd:string"/>
               </xsd:sequence></xsd:complexType>
             </xsd:element>
           </xsd:schema>"#,
        "XmlPO",
    )
    .expect("XSD imports");

    // graph: both importers produced well-formed graphs.
    let source_paths = PathSet::new(&source).expect("source unfolds");
    let target_paths = PathSet::new(&target).expect("target unfolds");
    assert!(SchemaStats::compute(&source, &source_paths).nodes >= 4);
    assert!(SchemaStats::compute(&target, &target_paths).nodes >= 4);

    // core: the default combined matcher finds correspondences.
    let mut coma = Coma::new();
    coma.aux_mut().synonyms = coma::core::matchers::synonym::SynonymTable::purchase_order();
    let outcome = coma
        .match_schemas(&source, &target, &MatchStrategy::paper_default())
        .expect("default match operation runs");
    assert!(
        !outcome.result.is_empty(),
        "default matcher found no correspondences between trivially related schemas"
    );

    // repo: results round-trip through the repository (JSON persistence).
    let ctx = MatchContext::new(&source, &target, &source_paths, &target_paths, coma.aux());
    let mapping = outcome
        .result
        .to_mapping(&ctx, coma::repo::MappingKind::Automatic);
    let mut repository = coma::repo::Repository::new();
    repository.put_schema(source.clone());
    repository.put_schema(target.clone());
    repository.put_mapping(mapping);
    let json = repository.to_json().expect("repository serializes");
    let restored = coma::repo::Repository::from_json(&json).expect("repository deserializes");
    assert_eq!(restored.schema_count(), 2);
    assert_eq!(restored.mappings().len(), 1);

    // eval: quality metrics are reachable and sane.
    let pair: BTreeSet<(String, String)> =
        [("a".to_string(), "b".to_string())].into_iter().collect();
    let quality = coma::eval::MatchQuality::compare(&pair, &pair);
    assert_eq!(quality.precision(), 1.0);
    assert_eq!(quality.recall(), 1.0);
}
