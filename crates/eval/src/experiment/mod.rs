//! The experiment harness reproducing the paper's evaluation (Section 7):
//! the Table 6 strategy [`grid`], the cube-caching sweep [`runner`], and
//! the [`report`] helpers that shape results into the paper's figures.

pub mod grid;
pub mod report;
pub mod runner;

pub use grid::{
    aggregations, all_series, directions, no_reuse_matcher_sets, no_reuse_series,
    reuse_matcher_sets, reuse_series, selections, SeriesSpec, HYBRIDS, REUSE,
};
pub use runner::{Harness, SeriesResult, TaskData};
