use crate::{GraphError, Node, NodeId, Reference, Result, Schema};

/// Incremental constructor for [`Schema`] graphs.
///
/// The builder enforces COMA's representation invariants when
/// [`build`](SchemaBuilder::build) is called:
///
/// * containment links form a DAG (no cycles),
/// * exactly one root exists (a node without containment parents),
/// * every node is reachable from the root,
/// * no duplicate containment edge between the same pair.
///
/// ```
/// use coma_graph::{Node, SchemaBuilder, DataType};
///
/// let mut b = SchemaBuilder::new("PO2");
/// let root = b.add_node(Node::new("PO2"));
/// let deliver = b.add_node(Node::new("DeliverTo"));
/// let address = b.add_node(Node::new("Address"));
/// let city = b.add_node(Node::new("City").with_datatype(DataType::Text));
/// b.add_child(root, deliver).unwrap();
/// b.add_child(deliver, address).unwrap();
/// b.add_child(address, city).unwrap();
/// let schema = b.build().unwrap();
/// assert_eq!(schema.node_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
    references: Vec<Reference>,
}

impl SchemaBuilder {
    /// Starts a new schema with the given name.
    pub fn new(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            references: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to an already-added node (e.g. to check its name).
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Adds a containment edge `parent → child`.
    ///
    /// Errors on foreign ids, self-containment, or a duplicate edge. Cycle
    /// detection across multiple edges happens in [`build`](Self::build).
    pub fn add_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check(parent)?;
        self.check(child)?;
        if parent == child {
            return Err(GraphError::CycleDetected {
                edge: self.edge_name(parent, child),
            });
        }
        if self.edges.contains(&(parent, child)) {
            return Err(GraphError::DuplicateEdge {
                edge: self.edge_name(parent, child),
            });
        }
        self.edges.push((parent, child));
        Ok(())
    }

    /// Adds a referential link `from → to` with an optional label.
    pub fn add_reference(&mut self, from: NodeId, to: NodeId, label: Option<String>) -> Result<()> {
        self.check(from)?;
        self.check(to)?;
        self.references.push(Reference { from, to, label });
        Ok(())
    }

    /// Validates the invariants and produces the immutable [`Schema`].
    pub fn build(self) -> Result<Schema> {
        let n = self.nodes.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(p, c) in &self.edges {
            children[p.index()].push(c);
            parents[c.index()].push(p);
        }

        // Single root: exactly one node without containment parents.
        let roots: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|id| parents[id.index()].is_empty())
            .collect();
        let root = match roots.as_slice() {
            [] => return Err(GraphError::NoRoot),
            [r] => *r,
            many => {
                return Err(GraphError::MultipleRoots {
                    roots: many
                        .iter()
                        .map(|id| self.nodes[id.index()].name.clone())
                        .collect(),
                })
            }
        };

        // Acyclicity via Kahn's algorithm.
        let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for c in &children[i] {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    queue.push(c.index());
                }
            }
        }
        if visited != n {
            // Some node kept a nonzero indegree: it sits on a cycle.
            let on_cycle = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(GraphError::CycleDetected {
                edge: format!("involving node `{on_cycle}`"),
            });
        }

        // Reachability: with a DAG and a single parentless node, every node
        // is reachable from that node iff the graph is connected from it.
        // (A parentless node is reachable only from itself, so any
        // unreachable node would imply a second root or a cycle — both
        // already excluded. Kept as a debug assertion.)
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; n];
            let mut stack = vec![root];
            seen[root.index()] = true;
            while let Some(id) = stack.pop() {
                for &c in &children[id.index()] {
                    if !seen[c.index()] {
                        seen[c.index()] = true;
                        stack.push(c);
                    }
                }
            }
            debug_assert!(seen.iter().all(|&s| s), "all nodes reachable from root");
        }

        Ok(Schema {
            name: self.name,
            nodes: self.nodes,
            children,
            parents,
            references: self.references,
            root,
        })
    }

    fn check(&self, id: NodeId) -> Result<()> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::InvalidNode { index: id.index() })
        }
    }

    fn edge_name(&self, p: NodeId, c: NodeId) -> String {
        format!(
            "{} -> {}",
            self.nodes[p.index()].name,
            self.nodes[c.index()].name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> Node {
        Node::new(name)
    }

    #[test]
    fn builds_simple_tree() {
        let mut b = SchemaBuilder::new("S");
        let r = b.add_node(node("r"));
        let a = b.add_node(node("a"));
        b.add_child(r, a).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.root(), r);
        assert_eq!(s.children(r), &[a]);
        assert_eq!(s.parents(a), &[r]);
    }

    #[test]
    fn rejects_self_containment() {
        let mut b = SchemaBuilder::new("S");
        let r = b.add_node(node("r"));
        assert!(matches!(
            b.add_child(r, r),
            Err(GraphError::CycleDetected { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = SchemaBuilder::new("S");
        let r = b.add_node(node("r"));
        let a = b.add_node(node("a"));
        b.add_child(r, a).unwrap();
        assert!(matches!(
            b.add_child(r, a),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = SchemaBuilder::new("S");
        let r = b.add_node(node("r"));
        let a = b.add_node(node("a"));
        let c = b.add_node(node("c"));
        b.add_child(r, a).unwrap();
        b.add_child(a, c).unwrap();
        b.add_child(c, a).unwrap();
        assert!(matches!(b.build(), Err(GraphError::CycleDetected { .. })));
    }

    #[test]
    fn rejects_multiple_roots() {
        let mut b = SchemaBuilder::new("S");
        b.add_node(node("r1"));
        b.add_node(node("r2"));
        let err = b.build().unwrap_err();
        assert!(matches!(err, GraphError::MultipleRoots { .. }));
    }

    #[test]
    fn rejects_empty_schema() {
        let b = SchemaBuilder::new("S");
        assert_eq!(b.build().unwrap_err(), GraphError::NoRoot);
    }

    #[test]
    fn rejects_foreign_node_id() {
        let mut other = SchemaBuilder::new("other");
        let _ = other.add_node(node("x"));
        let foreign = {
            let mut b2 = SchemaBuilder::new("b2");
            let a = b2.add_node(node("a"));
            let _ = b2.add_node(node("b"));
            let _ = b2.add_node(node("c"));
            let c = b2.add_node(node("d"));
            b2.add_child(a, c).unwrap();
            c
        };
        // `foreign` has index 3, `other` has 1 node.
        assert!(matches!(
            other.add_child(foreign, foreign),
            Err(GraphError::InvalidNode { .. })
        ));
    }

    #[test]
    fn shared_fragment_allows_multiple_parents() {
        let mut b = SchemaBuilder::new("PO2");
        let root = b.add_node(node("PO2"));
        let deliver = b.add_node(node("DeliverTo"));
        let bill = b.add_node(node("BillTo"));
        let address = b.add_node(node("Address"));
        b.add_child(root, deliver).unwrap();
        b.add_child(root, bill).unwrap();
        b.add_child(deliver, address).unwrap();
        b.add_child(bill, address).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.parents(address).len(), 2);
    }
}
