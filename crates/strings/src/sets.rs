//! Set-overlap coefficients used by both the string layer (n-gram sets) and
//! the combination layer (Dice over matched element sets, paper Section 6.3).

use std::collections::BTreeSet;

/// Dice coefficient: `2·|A∩B| / (|A| + |B|)`. Two empty sets score 1.
pub fn dice_coefficient<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Jaccard coefficient: `|A∩B| / |A∪B|`. Two empty sets score 1.
pub fn jaccard_coefficient<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Overlap coefficient: `|A∩B| / min(|A|, |B|)`. Two empty sets score 1;
/// one empty set scores 0.
pub fn overlap_coefficient<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dice_basics() {
        assert_eq!(dice_coefficient(&set(&["a", "b"]), &set(&["a", "b"])), 1.0);
        assert_eq!(dice_coefficient(&set(&["a"]), &set(&["b"])), 0.0);
        // |A∩B|=1, |A|=2, |B|=2 → 2/4
        assert_eq!(dice_coefficient(&set(&["a", "b"]), &set(&["a", "c"])), 0.5);
    }

    #[test]
    fn jaccard_is_never_above_dice() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d", "e"]);
        assert!(jaccard_coefficient(&a, &b) <= dice_coefficient(&a, &b));
    }

    #[test]
    fn overlap_is_1_for_subset() {
        let a = set(&["a", "b"]);
        let b = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
    }

    #[test]
    fn empty_set_conventions() {
        let e: BTreeSet<String> = BTreeSet::new();
        assert_eq!(dice_coefficient(&e, &e), 1.0);
        assert_eq!(jaccard_coefficient(&e, &e), 1.0);
        assert_eq!(overlap_coefficient(&e, &e), 1.0);
        assert_eq!(dice_coefficient(&e, &set(&["x"])), 0.0);
        assert_eq!(overlap_coefficient(&e, &set(&["x"])), 0.0);
    }
}
