//! # coma-xml — XML Schema import substrate for COMA
//!
//! COMA imports schemas "from external sources, e.g. relational databases
//! or XML files, into the internal format on which all match algorithms
//! operate" (paper, Section 3). This crate provides that import path for
//! XML Schema documents, built from scratch:
//!
//! * [`parser`] — a small well-formed-XML parser (elements, attributes,
//!   text, comments, CDATA, entities),
//! * [`xsd`] — an object model for the XSD subset schema matching needs
//!   (global elements, named/anonymous complex types, compositors,
//!   attributes, `ref=`, simple types, annotations),
//! * [`import_xsd`] — conversion into a [`coma_graph::Schema`] following
//!   the semantics of Figure 1: named complex types become **shared
//!   fragments** (one node, many paths).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod import;
pub mod parser;
pub mod xsd;

pub use error::{Result, XmlError};
pub use import::{import_parsed, import_xsd};
pub use parser::{parse_document, Element, XmlNode};
pub use xsd::{parse_xsd, AttributeDecl, ComplexType, ElementDecl, SimpleType, XsdSchema};
