//! The cross-request engine cache: schema-fingerprint-keyed reuse of
//! expensive artifacts *across* plan executions.
//!
//! A per-execution [`MatchMemo`](super::MatchMemo) already deduplicates
//! work *within* one plan run; an [`EngineCache`] extends the same idea
//! across runs, which is what a long-running matching service needs —
//! repeat traffic against a hot schema pair should skip tokenization,
//! name-pair scoring, matcher matrices and inverted-index construction
//! entirely. The memo becomes a *view* over this cache: every memo is
//! bound to one `Arc<EngineCache>` (its own private one by default, a
//! shared one under [`PlanEngine::execute_cached`]), and its lookups
//! read/write the cache directly.
//!
//! Keying: artifacts that depend on a schema are keyed by its
//! [`schema_fingerprint`] — a deterministic hash over the schema name and
//! every path's full name plus type information — so "the same schema"
//! means *same content*, not same allocation: a client re-sending an
//! identical schema, or the server reloading it from the persistent
//! repository, hits the cache. Tokenizations and name-pair similarity
//! tables are keyed by the strings themselves (schema-independent);
//! matcher matrices are keyed by (schema-pair scope, matcher name,
//! matcher instance identity); vocabulary indexes by (schema
//! fingerprint, gram length).
//!
//! Validity: a cache is only coherent for a fixed [`Auxiliary`]
//! configuration and a stable [`MatcherLibrary`] (matrix keys include
//! the matcher *instance* identity, so the library's `Arc`s must outlive
//! the cache). The server keys caches per tenant for exactly this
//! reason. Matchers that read mutable state beyond the schemas — the
//! reuse matchers, which consult the repository — report
//! [`Matcher::pure`] `= false` and are kept out of the shared matrix
//! store (they still share tokenizations and name-pair sims, which only
//! depend on strings).
//!
//! Memory: matrix entries are the big artifacts, so they are bounded by
//! a schema-pair scope cap (default [`EngineCache::DEFAULT_MAX_PAIRS`]):
//! registering a scope beyond the cap evicts the least-recently-used
//! pair's matrices, and any vocabulary index whose schema no longer
//! appears in a live scope. String-level tables are unbounded (they grow
//! with the distinct-name vocabulary, not with traffic).
//!
//! [`PlanEngine::execute_cached`]: super::PlanEngine::execute_cached
//! [`Auxiliary`]: crate::Auxiliary
//! [`MatcherLibrary`]: crate::MatcherLibrary
//! [`Matcher::pure`]: crate::Matcher::pure

use super::index::VocabIndex;
use crate::cube::SimMatrix;
use coma_graph::{PathSet, Schema};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A cache of name-pair similarities for one `NameEngine` configuration.
pub(crate) type PairSims = Arc<RwLock<HashMap<(String, String), f64>>>;

/// The schema-pair scope of one plan execution: (source fingerprint,
/// target fingerprint). Matrix entries are valid only within one scope.
pub(crate) type PairScope = (u64, u64);

type MatrixSlots = HashMap<(PairScope, String, usize), Arc<OnceLock<Arc<SimMatrix>>>>;
type IndexSlots = HashMap<(u64, usize), Arc<OnceLock<Arc<VocabIndex>>>>;

/// A content fingerprint of a schema as a match object: FNV-1a over the
/// schema name and, for every path in DFS preorder, its full dotted name
/// and the underlying node's type information.
///
/// Two schemas with equal fingerprints produce identical inputs to every
/// schema-level matcher (the matchers see names, paths and types — this
/// is exactly what they consume), so fingerprint equality is what makes
/// cross-request reuse sound. Deterministic across processes: safe to
/// use as a persistent cache key.
pub fn schema_fingerprint(schema: &Schema, paths: &PathSet) -> u64 {
    let mut h = Fnv1a::new();
    h.write(schema.name().as_bytes());
    h.write_u64(schema.node_count() as u64);
    h.write_u64(paths.len() as u64);
    for id in paths.iter() {
        h.write(paths.full_name(schema, id).as_bytes());
        let node = schema.node(paths.node_of(id));
        if let Some(dt) = node.datatype {
            h.write(format!("{dt:?}").as_bytes());
        }
        if let Some(t) = &node.type_name {
            h.write(t.as_bytes());
        }
        h.write(&[0xFF]);
    }
    h.finish()
}

/// 64-bit FNV-1a. Hand-rolled so fingerprints are stable across
/// processes and Rust versions (`DefaultHasher` guarantees neither).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Counters describing an [`EngineCache`]'s effectiveness and size,
/// reported by the server's `Stats` request and asserted by the
/// repeat-request tests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Shared matrix lookups answered from the cache.
    pub matrix_hits: u64,
    /// Shared matrix lookups that had to compute.
    pub matrix_misses: u64,
    /// Vocabulary-index lookups answered from the cache.
    pub index_hits: u64,
    /// Vocabulary-index lookups that had to build.
    pub index_misses: u64,
    /// Distinct cached tokenizations.
    pub token_entries: u64,
    /// Cached name-pair similarity tables (one per engine configuration).
    pub sim_tables: u64,
    /// Live shared matrix entries.
    pub matrix_entries: u64,
    /// Live vocabulary-index entries.
    pub index_entries: u64,
}

/// How warm an [`EngineCache`] is for one schema-pair scope (see
/// [`EngineCache::scope_warmth`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeWarmth {
    /// Computed stage matrices cached under the scope.
    pub matrices: usize,
    /// Vocabulary indexes cached for either side of the scope.
    pub indexes: usize,
}

/// The shared cross-request cache (module docs above). Create one per
/// (auxiliary configuration, matcher library) — e.g. per server tenant —
/// and pass it to [`PlanEngine::execute_cached`] on every request.
///
/// [`PlanEngine::execute_cached`]: super::PlanEngine::execute_cached
pub struct EngineCache {
    /// Name → abbreviation-expanded token set (schema-independent).
    token_sets: RwLock<HashMap<String, Arc<Vec<String>>>>,
    /// Engine fingerprint → its name-pair similarity table.
    name_sims: Mutex<HashMap<String, PairSims>>,
    /// (pair scope, matcher name, instance identity) → full matrix.
    matrices: Mutex<MatrixSlots>,
    /// (schema fingerprint, gram length) → vocabulary inverted index.
    indexes: Mutex<IndexSlots>,
    /// Pair scopes in least-recently-used order (front = coldest).
    scopes: Mutex<VecDeque<PairScope>>,
    /// Maximum live pair scopes before matrix eviction.
    max_pairs: usize,
    matrix_hits: AtomicU64,
    matrix_misses: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
}

impl EngineCache {
    /// Default bound on live schema-pair scopes.
    pub const DEFAULT_MAX_PAIRS: usize = 32;

    /// A cache bounded to [`EngineCache::DEFAULT_MAX_PAIRS`] pair scopes.
    pub fn new() -> EngineCache {
        EngineCache::with_capacity(EngineCache::DEFAULT_MAX_PAIRS)
    }

    /// A cache bounded to `max_pairs` live schema-pair scopes (minimum 1).
    pub fn with_capacity(max_pairs: usize) -> EngineCache {
        EngineCache {
            token_sets: RwLock::default(),
            name_sims: Mutex::default(),
            matrices: Mutex::default(),
            indexes: Mutex::default(),
            scopes: Mutex::default(),
            max_pairs: max_pairs.max(1),
            matrix_hits: AtomicU64::new(0),
            matrix_misses: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            index_misses: AtomicU64::new(0),
        }
    }

    /// Current effectiveness and size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            matrix_hits: self.matrix_hits.load(Ordering::Relaxed),
            matrix_misses: self.matrix_misses.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
            token_entries: self.token_sets.read().len() as u64,
            sim_tables: self.name_sims.lock().len() as u64,
            matrix_entries: self.matrices.lock().len() as u64,
            index_entries: self.indexes.lock().len() as u64,
        }
    }

    /// How warm this cache is for the `(source, target)` fingerprint
    /// scope: the number of fully computed stage matrices cached under
    /// that scope and the number of vocabulary indexes cached for either
    /// side. A pure query — hit/miss counters and the LRU order are
    /// untouched. The [`PlanAnalyzer`](super::PlanAnalyzer) uses this for
    /// its expected-cache-warmth facts.
    pub fn scope_warmth(&self, source: u64, target: u64) -> ScopeWarmth {
        let scope: PairScope = (source, target);
        let matrices = self
            .matrices
            .lock()
            .iter()
            .filter(|((s, _, _), cell)| *s == scope && cell.get().is_some())
            .count();
        let indexes = self
            .indexes
            .lock()
            .iter()
            .filter(|((fp, _), cell)| (*fp == source || *fp == target) && cell.get().is_some())
            .count();
        ScopeWarmth { matrices, indexes }
    }

    /// Drops every cached artifact (counters are kept). For callers that
    /// change auxiliary tables or rebuild their matcher library mid-life.
    pub fn purge(&self) {
        self.token_sets.write().clear();
        self.name_sims.lock().clear();
        self.matrices.lock().clear();
        self.indexes.lock().clear();
        self.scopes.lock().clear();
    }

    /// Marks a pair scope as most-recently used, evicting the coldest
    /// scope's matrices (and orphaned indexes) beyond the capacity bound.
    pub(crate) fn register_scope(&self, scope: PairScope) {
        let evicted: Vec<PairScope> = {
            let mut scopes = self.scopes.lock();
            if let Some(pos) = scopes.iter().position(|s| *s == scope) {
                scopes.remove(pos);
            }
            scopes.push_back(scope);
            let excess = scopes.len().saturating_sub(self.max_pairs);
            scopes.drain(..excess).collect()
        };
        if evicted.is_empty() {
            return;
        }
        let live: Vec<PairScope> = self.scopes.lock().iter().copied().collect();
        self.matrices
            .lock()
            .retain(|(scope, _, _), _| !evicted.contains(scope));
        self.indexes.lock().retain(|(fp, _), _| {
            live.iter().any(|(s, t)| s == fp || t == fp)
                || !evicted.iter().any(|(s, t)| s == fp || t == fp)
        });
    }

    pub(crate) fn token_set(
        &self,
        name: &str,
        compute: impl FnOnce() -> Vec<String>,
    ) -> Arc<Vec<String>> {
        if let Some(hit) = self.token_sets.read().get(name) {
            return Arc::clone(hit);
        }
        let value = Arc::new(compute());
        self.token_sets
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&value))
            .clone()
    }

    pub(crate) fn name_sims(&self, fingerprint: String) -> PairSims {
        self.name_sims
            .lock()
            .entry(fingerprint)
            .or_default()
            .clone()
    }

    pub(crate) fn matrix(
        &self,
        scope: PairScope,
        name: &str,
        identity: usize,
        compute: impl FnOnce() -> SimMatrix,
    ) -> Arc<SimMatrix> {
        let cell = self
            .matrices
            .lock()
            .entry((scope, name.to_string(), identity))
            .or_default()
            .clone();
        let mut computed = false;
        let out = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        }));
        if computed {
            self.matrix_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.matrix_hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn cached_matrix(
        &self,
        scope: PairScope,
        name: &str,
        identity: usize,
    ) -> Option<Arc<SimMatrix>> {
        let slot = self
            .matrices
            .lock()
            .get(&(scope, name.to_string(), identity))
            .cloned();
        slot.and_then(|cell| cell.get().map(Arc::clone))
    }

    /// Whether a built vocabulary index is already cached for the given
    /// schema fingerprint and gram length. Pure query: never builds.
    pub(crate) fn has_vocab_index(&self, fingerprint: u64, q: usize) -> bool {
        self.indexes
            .lock()
            .get(&(fingerprint, q))
            .is_some_and(|cell| cell.get().is_some())
    }

    pub(crate) fn vocab_index(
        &self,
        fingerprint: u64,
        q: usize,
        compute: impl FnOnce() -> VocabIndex,
    ) -> Arc<VocabIndex> {
        let cell = self
            .indexes
            .lock()
            .entry((fingerprint, q))
            .or_default()
            .clone();
        let mut computed = false;
        let out = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        }));
        if computed {
            self.index_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

impl Default for EngineCache {
    fn default() -> Self {
        EngineCache::new()
    }
}

impl std::fmt::Debug for EngineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCache")
            .field("stats", &self.stats())
            .field("max_pairs", &self.max_pairs)
            .finish()
    }
}

/// A fresh scope no real fingerprint pair will ever equal *within one
/// private cache* — used by memos that are not bound to a shared cache,
/// so their entries can never be confused with fingerprint-keyed ones.
pub(crate) fn private_scope() -> PairScope {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(2, Ordering::Relaxed);
    (n, n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_graph::{Node, SchemaBuilder};

    fn schema(name: &str, leaves: &[&str]) -> (Schema, PathSet) {
        let mut b = SchemaBuilder::new(name);
        let root = b.add_node(Node::new(name));
        for leaf in leaves {
            let c = b.add_node(Node::new(*leaf));
            b.add_child(root, c).unwrap();
        }
        let s = b.build().unwrap();
        let p = PathSet::new(&s).unwrap();
        (s, p)
    }

    #[test]
    fn fingerprint_is_content_keyed() {
        let (s1, p1) = schema("PO", &["shipTo", "billTo"]);
        let (s2, p2) = schema("PO", &["shipTo", "billTo"]);
        assert_eq!(schema_fingerprint(&s1, &p1), schema_fingerprint(&s2, &p2));
        // Different content, different fingerprint.
        let (s3, p3) = schema("PO", &["shipTo", "deliverTo"]);
        assert_ne!(schema_fingerprint(&s1, &p1), schema_fingerprint(&s3, &p3));
        // Same nodes, different schema name: distinct.
        let (s4, p4) = schema("PO2", &["shipTo", "billTo"]);
        assert_ne!(schema_fingerprint(&s1, &p1), schema_fingerprint(&s4, &p4));
    }

    #[test]
    fn matrix_hits_are_counted() {
        let cache = EngineCache::new();
        let scope = (1, 2);
        cache.register_scope(scope);
        cache.matrix(scope, "Name", 7, || SimMatrix::new(2, 2));
        cache.matrix(scope, "Name", 7, || panic!("must hit"));
        let stats = cache.stats();
        assert_eq!(stats.matrix_misses, 1);
        assert_eq!(stats.matrix_hits, 1);
        assert_eq!(stats.matrix_entries, 1);
    }

    #[test]
    fn scope_eviction_drops_cold_matrices() {
        let cache = EngineCache::with_capacity(2);
        for i in 0..3u64 {
            let scope = (10 + i, 20 + i);
            cache.register_scope(scope);
            cache.matrix(scope, "Name", 1, || SimMatrix::new(1, 1));
            let aux = crate::matchers::Auxiliary::standard();
            cache.vocab_index(10 + i, 3, || VocabIndex::build(std::iter::empty(), &aux, 3));
        }
        // Scope (10, 20) was coldest and is gone; the two recent ones live.
        assert!(cache.cached_matrix((10, 20), "Name", 1).is_none());
        assert!(cache.cached_matrix((11, 21), "Name", 1).is_some());
        assert!(cache.cached_matrix((12, 22), "Name", 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.matrix_entries, 2);
        assert_eq!(stats.index_entries, 2);
    }

    #[test]
    fn cross_request_cache_reuses_work_and_preserves_results() {
        let coma = crate::process::Coma::new();
        let (s1, _) = schema("PO1", &["shipTo", "billTo", "poNo", "city"]);
        let (s2, _) = schema("PO2", &["deliverTo", "invoiceTo", "orderNum", "town"]);
        let plan = crate::engine::MatchPlan::from(&crate::process::MatchStrategy::paper_default());
        let cfg = crate::engine::EngineConfig::default;
        let cache = Arc::new(EngineCache::new());

        let uncached = coma.match_plan_with(cfg(), &s1, &s2, &plan).unwrap();
        let first = coma
            .match_plan_cached(cfg(), &s1, &s2, &plan, &cache)
            .unwrap();
        assert_eq!(
            first.result, uncached.result,
            "caching must not change results"
        );
        let after_first = cache.stats();
        assert!(after_first.matrix_misses > 0);

        // A *different allocation* with identical content hits the cache:
        // no new matrix is ever computed.
        let (s1b, _) = schema("PO1", &["shipTo", "billTo", "poNo", "city"]);
        let second = coma
            .match_plan_cached(cfg(), &s1b, &s2, &plan, &cache)
            .unwrap();
        assert_eq!(second.result, first.result);
        let after_second = cache.stats();
        assert_eq!(
            after_second.matrix_misses, after_first.matrix_misses,
            "repeat request must compute no new matrices"
        );
        assert!(after_second.matrix_hits > after_first.matrix_hits);
    }

    #[test]
    fn purge_clears_everything() {
        let cache = EngineCache::new();
        cache.register_scope((1, 2));
        cache.matrix((1, 2), "Name", 1, || SimMatrix::new(1, 1));
        cache.token_set("shipTo", || vec!["ship".into(), "to".into()]);
        cache.purge();
        let stats = cache.stats();
        assert_eq!(stats.matrix_entries, 0);
        assert_eq!(stats.token_entries, 0);
    }
}
