//! `coma-cli` — match two schema files from the command line, or talk to
//! a running `coma-server`.
//!
//! ```text
//! coma-cli <source-file> <target-file> [--matchers Name,NamePath,…]
//!          [--threshold T] [--synonyms FILE] [--dot] [--json] [--verbose]
//!          [--prefilter M1,M2,…] [--prefilter-threshold T] [--prefilter-max N]
//!          [--candidate-index] [--min-shared-tokens N] [--min-score S]
//!          [--top-k K] [--iterate R] [--epsilon E]
//!          [--repository FILE] [--reuse] [--max-hops N]
//!
//! coma-cli --server SOCKET <command> [--tenant T] …
//!   put <schema-file> [--name NAME]   store a schema in the repository
//!   match <source> <target> [--store] [--top-k K] [--candidate-cap N] [--json]
//!                                     match two schemas (each a stored
//!                                     schema name, or a file to send
//!                                     inline); --store persists the result
//!   fetch <NAME>                      show a stored schema's shape
//!   list                              list stored schema names
//!   stats                             repository and cache statistics
//!   ping                              liveness check
//!   shutdown                          graceful server shutdown
//! ```
//!
//! File formats are detected by extension: `.sql`/`.ddl` are parsed as SQL
//! DDL, everything else as XML Schema. A synonyms file holds lines
//! `word = word` (synonym) or `word < word` (hypernym). `--dot` prints the
//! two graphs in Graphviz format instead of matching; `--json` emits the
//! mapping in the repository's relational JSON representation.
//!
//! `--prefilter` switches to a two-stage plan: the given (cheap) matchers
//! run first under a liberal selection — per element, the best
//! `--prefilter-max` candidates (default 4) exceeding
//! `--prefilter-threshold` (default 0.3) — and the main `--matchers`
//! stage refines only the surviving pairs (the plan engine's `Seq`
//! operator).
//!
//! `--candidate-index` replaces the prefilter's matcher stage with the
//! engine's inverted-index `CandidateIndex` leaf: the first stage
//! retrieves candidates from shared token/q-gram postings (capped at
//! `--prefilter-max` per element) instead of scoring the m×n cross
//! product — sub-linear candidate generation for large schemas. A pair
//! needs `--min-shared-tokens` shared tokens (default 1; a shared
//! trigram always qualifies) and an index score of at least
//! `--min-score` (default 0) to survive.
//!
//! `--top-k K` prunes the prefilter stage to the `K` best candidates per
//! element before refining (the `TopK` operator; implies a `Name`
//! prefilter when `--prefilter` is not given), putting the refine stage
//! on the engine's sparse execution path. `--iterate R` wraps the whole
//! plan in the `Iterate` operator: it re-runs, each round restricted to
//! the previous round's survivors, until the result moves by less than
//! `--epsilon` (default 1e-6) or `R` rounds have run.
//!
//! `--reuse` skips fresh matching entirely and answers from previous
//! match results: `--repository FILE` loads a repository JSON (the format
//! `coma-server` persists and `--json` emits), and the engine's `Reuse`
//! leaf walks its stored-mapping graph for pivot chains
//! `source → P1 → … → Pk → target` of up to `--max-hops` mappings
//! (default 3), MatchComposes each chain, and merges the paths into one
//! candidate mapping. With `--verbose` the stage report explains the
//! pivot selection: every path's hop count, coverage, vocabulary overlap
//! and score, best first.
//!
//! `--explain` runs the static plan analyzer instead of matching: it
//! prints the predicted per-node facts (storage mode, fusion, shard
//! counts, a peak-allocation upper bound) and every diagnostic, then
//! exits without executing (nonzero when the plan has errors).
//! `--deny-plan-warnings` runs the same analysis before matching and
//! refuses to execute a plan with any warning — for scripts that want
//! statically-clean plans only.
//!
//! `--verbose` reports, per executed stage, the similarity-cube shape,
//! its physical storage (dense, sparse/CSR, or mixed — see
//! `ARCHITECTURE.md` on how the engine picks per stage) and the number of
//! physically stored cells, so you can see exactly when and where sparse
//! storage engages. For a `CandidateIndex` stage it additionally prints
//! the index build time, posting counts and candidate-mask density.

use coma::core::{
    Coma, EngineConfig, MatchContext, MatchPlan, MatchStrategy, PlanAnalyzer, Selection, TaskStats,
    TopKPer,
};
use coma::graph::{PathSet, Schema};
use coma::repo::MappingKind;
use std::path::Path;
use std::process::ExitCode;

mod client_mode;

struct Options {
    source: String,
    target: String,
    matchers: Vec<String>,
    threshold: Option<f64>,
    synonyms: Option<String>,
    dot: bool,
    json: bool,
    prefilter: Option<Vec<String>>,
    prefilter_threshold: f64,
    prefilter_max: usize,
    candidate_index: bool,
    min_shared_tokens: usize,
    min_score: f64,
    top_k: Option<usize>,
    iterate: Option<usize>,
    epsilon: f64,
    repository: Option<String>,
    reuse: bool,
    max_hops: usize,
    verbose: bool,
    explain: bool,
    deny_plan_warnings: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: coma-cli <source-file> <target-file> \
         [--matchers M1,M2,…] [--threshold T] [--synonyms FILE] [--dot] [--json] [--verbose] \
         [--prefilter M1,M2,…] [--prefilter-threshold T] [--prefilter-max N] \
         [--candidate-index] [--min-shared-tokens N] [--min-score S] \
         [--top-k K] [--iterate R] [--epsilon E] \
         [--repository FILE] [--reuse] [--max-hops N] \
         [--explain] [--deny-plan-warnings]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut opts = Options {
        source: String::new(),
        target: String::new(),
        matchers: coma::core::ALL_HYBRIDS
            .iter()
            .map(|m| m.to_string())
            .collect(),
        threshold: None,
        synonyms: None,
        dot: false,
        json: false,
        prefilter: None,
        prefilter_threshold: 0.3,
        prefilter_max: 4,
        candidate_index: false,
        min_shared_tokens: 1,
        min_score: 0.0,
        top_k: None,
        iterate: None,
        epsilon: 1e-6,
        repository: None,
        reuse: false,
        max_hops: 3,
        verbose: false,
        explain: false,
        deny_plan_warnings: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--matchers" => {
                let v = args.next().ok_or_else(usage)?;
                opts.matchers = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--threshold" => {
                let v = args.next().ok_or_else(usage)?;
                opts.threshold = Some(v.parse().map_err(|_| usage())?);
            }
            "--prefilter" => {
                let v = args.next().ok_or_else(usage)?;
                opts.prefilter = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--prefilter-threshold" => {
                let v = args.next().ok_or_else(usage)?;
                opts.prefilter_threshold = v.parse().map_err(|_| usage())?;
            }
            "--prefilter-max" => {
                let v = args.next().ok_or_else(usage)?;
                opts.prefilter_max = v.parse().map_err(|_| usage())?;
            }
            "--candidate-index" => opts.candidate_index = true,
            "--min-shared-tokens" => {
                let v = args.next().ok_or_else(usage)?;
                opts.min_shared_tokens = v.parse().map_err(|_| usage())?;
            }
            "--min-score" => {
                let v = args.next().ok_or_else(usage)?;
                opts.min_score = v.parse().map_err(|_| usage())?;
            }
            "--top-k" => {
                let v = args.next().ok_or_else(usage)?;
                opts.top_k = Some(v.parse().map_err(|_| usage())?);
            }
            "--iterate" => {
                let v = args.next().ok_or_else(usage)?;
                opts.iterate = Some(v.parse().map_err(|_| usage())?);
            }
            "--epsilon" => {
                let v = args.next().ok_or_else(usage)?;
                opts.epsilon = v.parse().map_err(|_| usage())?;
            }
            "--repository" => opts.repository = Some(args.next().ok_or_else(usage)?),
            "--reuse" => opts.reuse = true,
            "--max-hops" => {
                let v = args.next().ok_or_else(usage)?;
                opts.max_hops = v.parse().map_err(|_| usage())?;
            }
            "--explain" => opts.explain = true,
            "--deny-plan-warnings" => opts.deny_plan_warnings = true,
            "--synonyms" => opts.synonyms = Some(args.next().ok_or_else(usage)?),
            "--dot" => opts.dot = true,
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => return Err(usage()),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(usage());
    }
    opts.source = positional.remove(0);
    opts.target = positional.remove(0);
    Ok(opts)
}

/// Builds the staged plan the CLI flags describe: optional prefilter
/// (inverted-index candidate generation or a cheap matcher stage, with
/// optional TopK pruning), refine on the survivors, optionally iterated
/// to a fixpoint.
fn build_staged_plan(opts: &Options, strategy: &MatchStrategy) -> Result<MatchPlan, String> {
    let refine = MatchPlan::from(strategy);
    let mut plan = if opts.reuse {
        // Answer from stored match results alone: the `Reuse` leaf walks
        // the repository's mapping graph for pivot chains up to
        // --max-hops mappings long and composes them.
        MatchPlan::reuse_chains(None, coma::core::ComposeCombine::Average, opts.max_hops)
            .map_err(|e| e.to_string())?
    } else if opts.candidate_index {
        // Inverted-index first stage: candidates come from shared
        // token/q-gram postings, capped per element by --prefilter-max —
        // the m×n cross product is never scored.
        let mut filter = MatchPlan::candidate_index_with(
            opts.min_shared_tokens,
            opts.min_score,
            3,
            Some(opts.prefilter_max),
        )
        .map_err(|e| e.to_string())?;
        if let Some(k) = opts.top_k {
            filter = filter.top_k(k, TopKPer::Both).map_err(|e| e.to_string())?;
        }
        MatchPlan::seq(filter, refine)
    } else if opts.prefilter.is_some() || opts.top_k.is_some() {
        // `--top-k` without `--prefilter` implies a cheap Name filter.
        let filter_matchers = opts
            .prefilter
            .clone()
            .unwrap_or_else(|| vec!["Name".to_string()]);
        let pool = opts.prefilter_max.max(opts.top_k.unwrap_or(0));
        let mut combination = strategy.combination.clone();
        combination.selection = Selection::max_n(pool).with_threshold(opts.prefilter_threshold);
        let mut filter = MatchPlan::matchers_with(filter_matchers, combination);
        if let Some(k) = opts.top_k {
            filter = filter.top_k(k, TopKPer::Both).map_err(|e| e.to_string())?;
        }
        MatchPlan::seq(filter, refine)
    } else {
        refine
    };
    if let Some(rounds) = opts.iterate {
        plan = plan
            .iterate(rounds, opts.epsilon)
            .map_err(|e| e.to_string())?;
    }
    Ok(plan)
}

fn import(path: &str) -> Result<Schema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("schema")
        .to_string();
    let ext = Path::new(path)
        .extension()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    match ext.as_str() {
        "sql" | "ddl" => coma::sql::import_ddl(&text, &stem).map_err(|e| format!("{path}: {e}")),
        _ => coma::xml::import_xsd(&text, &stem).map_err(|e| format!("{path}: {e}")),
    }
}

fn main() -> ExitCode {
    // Client mode: `--server SOCKET <command> …` talks to a running
    // coma-server instead of matching locally.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = raw.iter().position(|a| a == "--server") {
        let Some(socket) = raw.get(pos + 1).cloned() else {
            eprintln!("error: --server needs a socket path");
            return ExitCode::from(2);
        };
        let mut rest = raw;
        rest.drain(pos..=pos + 1);
        return client_mode::run(&socket, rest);
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let (source, target) = match (import(&opts.source), import(&opts.target)) {
        (Ok(s), Ok(t)) => (s, t),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.dot {
        print!("{}", coma::graph::dot::to_dot(&source));
        print!("{}", coma::graph::dot::to_dot(&target));
        return ExitCode::SUCCESS;
    }

    let mut coma = Coma::new();
    coma.aux_mut().synonyms = coma::core::matchers::synonym::SynonymTable::purchase_order();
    if let Some(file) = &opts.synonyms {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("error: cannot read synonyms file {file}");
            return ExitCode::FAILURE;
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((a, b)) = line.split_once('<') {
                coma.aux_mut().synonyms.add_hypernym(a.trim(), b.trim());
            } else if let Some((a, b)) = line.split_once('=') {
                coma.aux_mut().synonyms.add_synonym(a.trim(), b.trim());
            }
        }
    }

    if let Some(file) = &opts.repository {
        match coma::repo::Repository::load(file) {
            Ok(repo) => *coma.repository_mut() = repo,
            Err(e) => {
                eprintln!("error: cannot load repository {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut strategy = MatchStrategy::with_matchers(opts.matchers.clone());
    if let Some(t) = opts.threshold {
        strategy.combination.selection.threshold = Some(t);
    }
    let staged = opts.reuse
        || opts.candidate_index
        || opts.prefilter.is_some()
        || opts.top_k.is_some()
        || opts.iterate.is_some();
    // The plan the engine would execute — a flat strategy converts to a
    // single Matchers leaf. Built up front so static analysis
    // (--explain / --deny-plan-warnings) sees exactly what would run.
    let plan = if staged {
        match build_staged_plan(&opts, &strategy) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        MatchPlan::from(&strategy)
    };

    if opts.explain || opts.deny_plan_warnings {
        let sp = PathSet::new(&source).expect("validated on import");
        let tp = PathSet::new(&target).expect("validated on import");
        let ctx = MatchContext::new(&source, &target, &sp, &tp, coma.aux())
            .with_repository(coma.repository());
        let stats = TaskStats::gather(&ctx);
        let analysis =
            PlanAnalyzer::new(coma.library(), EngineConfig::default()).analyze(&plan, &stats);
        if opts.explain {
            // Report only — nothing executes.
            print!("{}", analysis.render());
            return if analysis.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        if analysis.has_errors() || analysis.has_warnings() {
            for d in &analysis.diagnostics {
                eprintln!("# {d}");
            }
            eprintln!("error: plan analysis reported problems (--deny-plan-warnings)");
            return ExitCode::FAILURE;
        }
    }

    let result = if staged {
        match coma.match_plan_with(EngineConfig::default(), &source, &target, &plan) {
            Ok(outcome) => {
                for stage in &outcome.stages {
                    if opts.verbose {
                        let cube = &stage.cube;
                        eprintln!(
                            "# stage {} -> {} pair(s); cube {}x{}x{}, {} storage, \
                             {} stored entr{} ({} dense cells), {} row shard{}{}",
                            stage.label,
                            stage.result.len(),
                            cube.len(),
                            cube.rows(),
                            cube.cols(),
                            cube.storage_summary(),
                            cube.stored_entries(),
                            if cube.stored_entries() == 1 {
                                "y"
                            } else {
                                "ies"
                            },
                            cube.len() * cube.rows() * cube.cols(),
                            stage.shards,
                            if stage.shards == 1 { "" } else { "s" },
                            if stage.fused { ", fused" } else { "" },
                        );
                        if let Some(stats) = stage.index_stats {
                            let cells = (cube.rows() * cube.cols()).max(1);
                            eprintln!(
                                "#   index: built in {:.2} ms; {} token + {} gram posting \
                                 entries ({} tokens, {} grams); candidate density {:.4}",
                                stats.build_nanos as f64 / 1e6,
                                stats.token_postings,
                                stats.gram_postings,
                                stats.distinct_tokens,
                                stats.distinct_grams,
                                stage.result.len() as f64 / cells as f64,
                            );
                        }
                        if let Some(stats) = &stage.reuse_stats {
                            if stats.paths.is_empty() {
                                eprintln!(
                                    "#   reuse: no pivot path in repository \
                                     (max {} hops)",
                                    stats.max_hops
                                );
                            } else {
                                eprintln!(
                                    "#   reuse: {} pivot path(s) within {} hops, \
                                     merged {} correspondence(s); chose via {}",
                                    stats.paths.len(),
                                    stats.max_hops,
                                    stats.merged_correspondences,
                                    stats.paths[0].via,
                                );
                                for p in &stats.paths {
                                    eprintln!(
                                        "#     via {}: score {:.3} ({} hops, \
                                         {} correspondence(s), coverage {:.2}, \
                                         vocab overlap {:.2})",
                                        p.via,
                                        p.score,
                                        p.hops,
                                        p.correspondences,
                                        p.coverage,
                                        p.vocab_overlap,
                                    );
                                }
                            }
                        }
                    } else {
                        eprintln!("# stage {} -> {} pair(s)", stage.label, stage.result.len());
                    }
                }
                outcome.result
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match coma.match_schemas(&source, &target, &strategy) {
            Ok(o) => {
                if opts.verbose {
                    eprintln!(
                        "# cube {}x{}x{}, {} storage, {} stored entries",
                        o.cube.len(),
                        o.cube.rows(),
                        o.cube.cols(),
                        o.cube.storage_summary(),
                        o.cube.stored_entries(),
                    );
                }
                o.result
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let sp = PathSet::new(&source).expect("validated on import");
    let tp = PathSet::new(&target).expect("validated on import");
    if opts.json {
        let ctx = MatchContext::new(&source, &target, &sp, &tp, coma.aux());
        let mapping = result.to_mapping(&ctx, MappingKind::Automatic);
        match serde_json::to_string_pretty(&mapping) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!(
            "# {} correspondences (schema similarity {:.2}, matchers: {})",
            result.len(),
            result.schema_similarity.unwrap_or(0.0),
            opts.matchers.join(",")
        );
        for c in &result.candidates {
            println!(
                "{:.3}\t{}\t{}",
                c.similarity,
                sp.full_name(&source, c.source),
                tp.full_name(&target, c.target)
            );
        }
    }
    ExitCode::SUCCESS
}
