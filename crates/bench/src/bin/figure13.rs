//! Regenerates Figure 13 of the paper: match sensitivity — for every task,
//! the best Overall achieved by any no-reuse strategy and by any (manual)
//! reuse strategy, against problem size (#paths) and schema similarity.

use coma_eval::experiment::report::render_table;
use coma_eval::experiment::{no_reuse_series, reuse_series, Harness};
use coma_eval::{task_label, MatchQuality, TASKS};

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();
    let no_reuse = no_reuse_series();
    let manual_reuse: Vec<_> = reuse_series()
        .into_iter()
        .filter(|s| s.matchers.iter().any(|m| m == "SchemaM"))
        .collect();
    eprintln!(
        "running {} no-reuse and {} manual-reuse series…",
        no_reuse.len(),
        manual_reuse.len()
    );
    let no_reuse_results = harness.run(&no_reuse);
    let reuse_results = harness.run(&manual_reuse);

    // Order tasks as the paper's Figure 13 x-axis (by total path count).
    let corpus = harness.corpus();
    let mut order: Vec<usize> = (0..TASKS.len()).collect();
    order.sort_by_key(|&t| corpus.path_set(TASKS[t].0).len() + corpus.path_set(TASKS[t].1).len());

    println!("Figure 13 — impact of schema characteristics on match quality\n");
    let mut rows = Vec::new();
    for &t in &order {
        let (i, j) = TASKS[t];
        let best = |results: &[coma_eval::experiment::SeriesResult]| {
            results
                .iter()
                .map(|r| MatchQuality::overall(&r.per_task[t]))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        rows.push(vec![
            task_label((i, j)),
            (corpus.path_set(i).len() + corpus.path_set(j).len()).to_string(),
            format!("{:.2}", corpus.schema_similarity(i, j)),
            format!("{:.2}", best(&no_reuse_results)),
            format!("{:.2}", best(&reuse_results)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Task",
                "#All paths",
                "Schema similarity",
                "Overall (no reuse)",
                "Overall (manual reuse)",
            ],
            &rows
        )
    );
    println!("Paper: reuse clearly outperforms no-reuse on every task; quality");
    println!("degrades as schemas grow and as schema similarity drops (hardest:");
    println!("3<->4, 4<->5).");
}
