use std::fmt;

/// Convenience result alias for DDL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Errors from DDL parsing or graph import.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical or syntactic problem at a byte offset.
    Syntax {
        /// Byte offset into the DDL text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// The DDL parsed but cannot be imported (e.g. duplicate table names).
    Semantic {
        /// Description of the problem.
        message: String,
    },
    /// Importing into the graph representation failed.
    Graph(coma_graph::GraphError),
}

impl SqlError {
    pub(crate) fn syntax(offset: usize, message: impl Into<String>) -> SqlError {
        SqlError::Syntax {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn semantic(message: impl Into<String>) -> SqlError {
        SqlError::Semantic {
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Syntax { offset, message } => {
                write!(f, "SQL syntax error at byte {offset}: {message}")
            }
            SqlError::Semantic { message } => write!(f, "SQL semantic error: {message}"),
            SqlError::Graph(e) => write!(f, "schema import error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<coma_graph::GraphError> for SqlError {
    fn from(e: coma_graph::GraphError) -> SqlError {
        SqlError::Graph(e)
    }
}
