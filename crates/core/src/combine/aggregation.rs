use crate::cube::{SimCube, SimMatrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Step 1 of the combination scheme: aggregating the matcher-specific
/// similarity values of the cube into one combined value per element pair
/// (paper, Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// The maximal similarity of any matcher — optimistic; matchers
    /// "can maximally complement each other".
    Max,
    /// The minimal similarity of any matcher — pessimistic.
    Min,
    /// The unweighted mean — "a special case of Weighted \[that\] considers
    /// them equally important".
    Average,
    /// A weighted sum; weights "should correspond to the expected
    /// importance of the matchers". Weights are normalized to sum 1; the
    /// vector length must equal the number of cube slices.
    Weighted(Vec<f64>),
}

impl Aggregation {
    /// Aggregates the cube into a single similarity matrix.
    ///
    /// Storage aware: a cube whose slices are all sparse is aggregated by
    /// merging the stored entries row by row into a sparse output — no
    /// `m × n` buffer is ever materialized — while dense (or mixed) cubes
    /// take the dense row-sweep path. Both paths fold each cell's values
    /// in slice order, so the result is value-identical whatever the
    /// storage (absent sparse cells contribute the `0.0` an explicit dense
    /// zero would).
    ///
    /// # Panics
    /// Panics if the cube is empty, or if a `Weighted` vector's length does
    /// not match the slice count.
    pub fn aggregate(&self, cube: &SimCube) -> SimMatrix {
        assert!(!cube.is_empty(), "cannot aggregate an empty cube");
        let (m, n, k) = (cube.rows(), cube.cols(), cube.len());
        if let Aggregation::Weighted(weights) = self {
            assert_eq!(
                weights.len(),
                k,
                "Weighted aggregation needs one weight per matcher slice"
            );
            let total: f64 = weights.iter().sum();
            assert!(total > 0.0, "weights must not sum to zero");
        }
        if cube.all_sparse() {
            return self.aggregate_sparse(cube);
        }
        let mut out = SimMatrix::new(m, n);
        match self {
            Aggregation::Max => row_wise(&mut out, cube, None, &mut |acc, row| {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a = a.max(v);
                }
            }),
            Aggregation::Min => row_wise(&mut out, cube, None, &mut |acc, row| {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a = a.min(v);
                }
            }),
            Aggregation::Average => row_wise(&mut out, cube, Some(k as f64), &mut |acc, row| {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }),
            Aggregation::Weighted(weights) => {
                let total: f64 = weights.iter().sum();
                for i in 0..m {
                    for j in 0..n {
                        let v: f64 = (0..k)
                            .map(|s| cube.slice(s).get(i, j) * weights[s])
                            .sum::<f64>()
                            / total;
                        out.set(i, j, v);
                    }
                }
            }
        }
        out
    }

    /// The sparse path: per row, the slices' stored entries are gathered
    /// and grouped by column (a stable sort keeps slice order within each
    /// group, matching the dense per-cell fold order); cells stored by no
    /// slice stay implicit zeros. `Min` needs special care — a cell some
    /// slice left at zero aggregates to zero, which the per-group entry
    /// count detects without consulting absent entries.
    fn aggregate_sparse(&self, cube: &SimCube) -> SimMatrix {
        let (m, k) = (cube.rows(), cube.len());
        let mut b = crate::cube::SparseBuilder::new(m, cube.cols());
        // Weighted needs the originating slice per entry; the total is
        // loop-invariant. Absent cells contribute `0.0 · weight`, which
        // never changes a partial sum, so folding only the stored entries
        // (kept in slice order within a cell by the stable sort) equals
        // the dense per-cell sum over all k slices.
        let weight_total: f64 = match self {
            Aggregation::Weighted(weights) => weights.iter().sum(),
            _ => 0.0,
        };
        // (column, slice, value) entries of one row across all slices,
        // slice order preserved within a column by the stable sort.
        let mut scratch: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..m {
            scratch.clear();
            for s in 0..k {
                scratch.extend(cube.slice(s).row_entries(i).map(|(j, v)| (j, s, v)));
            }
            scratch.sort_by_key(|&(j, _, _)| j);
            let mut group = scratch.as_slice();
            while let Some(&(j, _, _)) = group.first() {
                let len = group.iter().take_while(|&&(gj, _, _)| gj == j).count();
                let (cell, rest) = group.split_at(len);
                group = rest;
                let value = match self {
                    Aggregation::Max => cell.iter().map(|&(_, _, v)| v).fold(0.0_f64, f64::max),
                    Aggregation::Min => {
                        if cell.len() < k {
                            0.0 // at least one slice holds an implicit zero
                        } else {
                            cell.iter()
                                .map(|&(_, _, v)| v)
                                .fold(f64::INFINITY, f64::min)
                        }
                    }
                    Aggregation::Average => cell.iter().map(|&(_, _, v)| v).sum::<f64>() / k as f64,
                    Aggregation::Weighted(weights) => {
                        cell.iter().map(|&(_, s, v)| v * weights[s]).sum::<f64>() / weight_total
                    }
                };
                b.push(i, j, value);
            }
        }
        b.finish()
    }
}

/// Max/Min/Average sweep the slices row by row (sequential reads and
/// writes) instead of gathering each cell across all slices; the per-cell
/// fold order over slices is unchanged, so results are identical to the
/// cell-wise formulation. `divisor` is applied by division so Average keeps
/// the exact floating-point result of the cell-wise `sum / k`. Rows are
/// staged through a per-slice buffer, so occasional sparse slices in an
/// otherwise dense cube are handled transparently.
fn row_wise(
    out: &mut SimMatrix,
    cube: &SimCube,
    divisor: Option<f64>,
    row_op: &mut dyn FnMut(&mut [f64], &[f64]),
) {
    let (m, k) = (cube.rows(), cube.len());
    let mut acc = vec![0.0_f64; cube.cols()];
    let mut row_buf = vec![0.0_f64; cube.cols()];
    for i in 0..m {
        cube.slice(0).copy_row_into(i, &mut acc);
        for s in 1..k {
            let slice = cube.slice(s);
            if slice.is_sparse() {
                slice.copy_row_into(i, &mut row_buf);
                row_op(&mut acc, &row_buf);
            } else {
                // Dense slices feed their row storage directly — no copy.
                row_op(&mut acc, slice.row(i));
            }
        }
        if let Some(d) = divisor {
            for a in acc.iter_mut() {
                *a /= d;
            }
        }
        out.fill_row(i, &acc);
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregation::Max => f.write_str("Max"),
            Aggregation::Min => f.write_str("Min"),
            Aggregation::Average => f.write_str("Average"),
            Aggregation::Weighted(w) => {
                write!(f, "Weighted(")?;
                for (i, x) in w.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> SimCube {
        let mut a = SimMatrix::new(1, 2);
        a.set(0, 0, 0.8);
        a.set(0, 1, 0.2);
        let mut b = SimMatrix::new(1, 2);
        b.set(0, 0, 0.4);
        b.set(0, 1, 0.6);
        let mut c = SimCube::new();
        c.push("A", a);
        c.push("B", b);
        c
    }

    #[test]
    fn max_min_average() {
        let c = cube();
        assert_eq!(Aggregation::Max.aggregate(&c).get(0, 0), 0.8);
        assert_eq!(Aggregation::Min.aggregate(&c).get(0, 0), 0.4);
        assert!((Aggregation::Average.aggregate(&c).get(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weighted_uses_normalized_weights() {
        let c = cube();
        // TypeName's default: 0.7 name + 0.3 datatype (Table 4).
        let m = Aggregation::Weighted(vec![0.7, 0.3]).aggregate(&c);
        assert!((m.get(0, 0) - (0.7 * 0.8 + 0.3 * 0.4)).abs() < 1e-12);
        // Non-normalized weights give the same result after normalization.
        let m2 = Aggregation::Weighted(vec![7.0, 3.0]).aggregate(&c);
        assert!((m.get(0, 0) - m2.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn table_2_average_of_table_1() {
        // Table 1 → Table 2 of the paper: TypeName and NamePath values for
        // three pairs, Average aggregation.
        let pairs = [(0.65, 0.78, 0.72), (0.3, 0.73, 0.52), (0.80, 0.53, 0.67)];
        for (tn, np, expect) in pairs {
            let mut s1 = SimMatrix::new(1, 1);
            s1.set(0, 0, tn);
            let mut s2 = SimMatrix::new(1, 1);
            s2.set(0, 0, np);
            let mut c = SimCube::new();
            c.push("TypeName", s1);
            c.push("NamePath", s2);
            let got = Aggregation::Average.aggregate(&c).get(0, 0);
            assert!((got - expect).abs() < 0.0051, "{got} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "empty cube")]
    fn empty_cube_panics() {
        Aggregation::Average.aggregate(&SimCube::new());
    }

    #[test]
    #[should_panic(expected = "one weight per matcher")]
    fn wrong_weight_count_panics() {
        Aggregation::Weighted(vec![1.0]).aggregate(&cube());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Aggregation::Max.to_string(), "Max");
        assert_eq!(
            Aggregation::Weighted(vec![0.7, 0.3]).to_string(),
            "Weighted(0.7,0.3)"
        );
    }
}
