//! Benchmarks of the `TopK` / `Iterate` plan operators and the sparse
//! execution path on generated large-schema workloads: the same
//! TopK-pruned two-stage plan executed dense (structural matchers compute
//! the full cross-product, then mask) versus sparse (they iterate only
//! the allowed pairs), plus the iterate-until-stable loop. Results are
//! bit-identical between the two paths; only the work differs.

use coma_bench::topk_pruned_plan;
use coma_bench::workload::{generate_task, WorkloadShape, WorkloadSpec};
use coma_core::{Coma, EngineConfig, MatchContext, PlanEngine};
use coma_graph::PathSet;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_plan_operators(c: &mut Criterion) {
    let coma = Coma::new();
    // The same plan the perf-smoke gate measures (shared constructor).
    let plan = topk_pruned_plan();

    for spec in [
        WorkloadSpec::new(WorkloadShape::Deep, 1200, 42),
        WorkloadSpec::new(WorkloadShape::Star, 1000, 42),
    ] {
        let (source, target) = generate_task(&spec);
        let sp = PathSet::new(&source).expect("generated schema unfolds");
        let tp = PathSet::new(&target).expect("generated schema unfolds");
        let ctx = MatchContext::new(&source, &target, &sp, &tp, coma.aux());

        let mut group = c.benchmark_group(format!("plan_operators/{}", spec.label()));
        group.sample_size(3);

        group.bench_function("topk_dense", |b| {
            b.iter(|| {
                black_box(
                    PlanEngine::with_config(
                        coma.library(),
                        EngineConfig::default().with_sparse(false),
                    )
                    .execute(black_box(&ctx), &plan)
                    .unwrap(),
                )
            })
        });
        group.bench_function("topk_sparse", |b| {
            b.iter(|| {
                black_box(
                    PlanEngine::new(coma.library())
                        .execute(black_box(&ctx), &plan)
                        .unwrap(),
                )
            })
        });

        let iterated = plan.clone().iterate(4, 1e-6).expect("max_rounds > 0");
        group.bench_function("topk_iterate", |b| {
            b.iter(|| {
                black_box(
                    PlanEngine::new(coma.library())
                        .execute(black_box(&ctx), &iterated)
                        .unwrap(),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_plan_operators);
criterion_main!(benches);
