//! The `coma-server` binary: a long-running matching service on a unix
//! socket.
//!
//! ```text
//! coma-server --socket /tmp/coma.sock [--store repo.json] [--cache-pairs 32]
//! ```
//!
//! With `--store`, schemas and stored match results persist to the given
//! JSON file (written atomically) and are reloaded on the next start;
//! without it the repository is in-memory and dies with the process.
//! The server runs until a client sends `Shutdown` (e.g.
//! `coma-cli --server <socket> --shutdown`).

use coma_repo::{FileBackend, MemoryBackend};
use coma_server::{Server, ServerState};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: coma-server --socket PATH [--store FILE] [--cache-pairs N]\n\
         \n\
         --socket PATH    unix socket to listen on (required)\n\
         --store FILE     persist the repository to FILE (default: in-memory)\n\
         --cache-pairs N  cross-request cache capacity in schema pairs per tenant (default 32)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut socket: Option<String> = None;
    let mut store: Option<String> = None;
    let mut cache_pairs: usize = 32;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--store" => store = Some(args.next().unwrap_or_else(|| usage())),
            "--cache-pairs" => {
                cache_pairs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(socket) = socket else { usage() };

    let state = match &store {
        Some(path) => ServerState::open(FileBackend::new(path), cache_pairs),
        None => ServerState::open(MemoryBackend::new(), cache_pairs),
    };
    let state = match state {
        Ok(s) => s,
        Err(e) => {
            eprintln!("coma-server: cannot open repository: {e}");
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::bind(&socket, state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("coma-server: cannot bind {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "coma-server: listening on {socket} (store: {})",
        store.as_deref().unwrap_or("memory")
    );
    match server.serve() {
        Ok(()) => {
            println!("coma-server: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("coma-server: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
