//! Shared helpers for the COMA benchmark and experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the tables and figures of the
//! paper's evaluation (Section 7); the Criterion benches in `benches/`
//! measure the performance of the substrates and the match pipeline.
//! [`workload`] generates deterministic synthetic large-schema match
//! tasks (star/deep/wide/catalog shapes, 500–5000 nodes) for the plan engine's
//! sparse-path benchmarks and the CI perf-smoke gate; [`alloc_track`]
//! provides the counting global allocator `perf_smoke` uses to compare
//! peak allocations of dense vs sparse similarity storage.

pub mod alloc_track;
pub mod workload;

use coma_core::{CombinationStrategy, Direction, MatchPlan, MatchStrategy, Selection, TopKPer};

/// The TopK-pruned two-stage plan the sparse execution path is built
/// for: a liberal `Name` stage pruned to the 5 best candidates per
/// element, then the paper-default `All` refine on the survivors.
///
/// Shared by the `plan_operators` bench and the `perf_smoke` gate so the
/// numbers humans read and the numbers CI gates come from the same plan.
pub fn topk_pruned_plan() -> MatchPlan {
    MatchPlan::seq(
        liberal_name_stage().top_k(5, TopKPer::Both).expect("k > 0"),
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// The liberal `Name` first stage of [`topk_pruned_plan`], standalone:
/// an unrestricted (dense) full-cross-product computation — exactly the
/// stage the engine's row-sharded execution targets (its matrix is what
/// `perf_smoke` times single-shard vs sharded on the `deep20000`
/// workload), and the cheap filter to put in front of an expensive
/// refine on any large task.
pub fn liberal_name_stage() -> MatchPlan {
    let mut liberal = CombinationStrategy::paper_default();
    liberal.selection = Selection::max_n(10).with_threshold(0.3);
    MatchPlan::matchers_with(["Name"], liberal)
}

/// The inverted-index retrieve→rerank→refine plan: candidate generation
/// from shared token/q-gram postings (capped at 5 candidates per
/// element, union over both sides), then the liberal `Name` stage of
/// [`topk_pruned_plan`] *restricted to those retrieval candidates* — a
/// masked, posting-traffic-sized compute that re-ranks the retrieval
/// mask with the exact matcher's own scores and prunes it with the same
/// TopK budget the exact plan uses (the raw retrieval scores are too
/// crude a ranker: capping on them directly costs recall on hub
/// elements, while the union mask alone is ~6x the exact prefilter's
/// and the structural refine pays for every extra pair) — then the
/// paper-default `All` refine on the survivors. No stage ever scores
/// the m×n cross product — `perf_smoke` times this plan against
/// [`topk_pruned_plan`] on the deep20000 and catalog workloads, and
/// gates its first stage's recall-vs-gold against the exact prefilter's
/// on the eval corpus.
pub fn candidate_index_plan() -> MatchPlan {
    MatchPlan::seq(
        candidate_index_stage(),
        MatchPlan::from(&MatchStrategy::paper_default()),
    )
}

/// The first stage of [`candidate_index_plan`], standalone: inverted-
/// index retrieval (`CandidateIndex` capped at 5 per element) feeding
/// the masked liberal `Name` re-rank pruned to the 5 best per element.
/// This is exactly the candidate set the plan's refine gets to see, so
/// it is what `perf_smoke`'s recall gate scores against the exact
/// prefilter ([`liberal_name_stage`] + TopK) on every eval-corpus task.
pub fn candidate_index_stage() -> MatchPlan {
    MatchPlan::seq(
        MatchPlan::candidate_index_with(1, 0.0, 3, Some(5)).expect("valid parameters"),
        liberal_name_stage().top_k(5, TopKPer::Both).expect("k > 0"),
    )
}

/// The streaming-fused pruning plan the `deep100000` memory ceiling is
/// measured on: a liberal `Name` stage whose threshold `Filter` fuses
/// with the compute, so each row shard is pruned as it is produced and
/// the full dense matrix is never allocated. A `Filter` (not `TopK`)
/// deliberately: `TopK` materializes an `m × n` pair-mask bitset, which
/// at 100k × 100k would itself be > 1 GiB.
pub fn fused_filter_plan() -> MatchPlan {
    let mut liberal = CombinationStrategy::paper_default();
    liberal.selection = Selection::max_n(10).with_threshold(0.3);
    MatchPlan::matchers_with(["Name"], liberal)
        .filtered(Direction::Both, Selection::max_n(5).with_threshold(0.3))
}
