//! Regenerates Figure 12 of the paper: the quality of the best matcher
//! combinations — `All+SchemaM`, `SchemaM+<hybrid>`, `All`, and the
//! `NamePath+<hybrid>` pairs — sorted by average Overall.

use coma_eval::experiment::report::{best_per_matcher, fmt_quality, render_table};
use coma_eval::experiment::{no_reuse_series, reuse_series, Harness};

/// The combinations Figure 12 reports, with the paper's approximate
/// (precision, recall, overall) read off the chart.
const PAPER: [(&str, f64, f64, f64); 11] = [
    ("All+SchemaM", 0.93, 0.89, 0.82),
    ("SchemaM+NamePath", 0.95, 0.84, 0.80),
    ("SchemaM+Name", 0.94, 0.83, 0.78),
    ("SchemaM+TypeName", 0.94, 0.82, 0.77),
    ("SchemaM+Leaves", 0.93, 0.82, 0.76),
    ("SchemaM+Children", 0.93, 0.81, 0.75),
    ("All", 0.86, 0.86, 0.73),
    ("NamePath+Leaves", 0.89, 0.75, 0.65),
    ("NamePath+TypeName", 0.88, 0.73, 0.62),
    ("NamePath+Children", 0.88, 0.72, 0.61),
    ("NamePath+Name", 0.85, 0.70, 0.57),
];

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();
    let combos: Vec<_> = no_reuse_series()
        .into_iter()
        .chain(reuse_series())
        .filter(|s| s.matchers.len() > 1)
        .collect();
    eprintln!("running {} combination series…", combos.len());
    let results = harness.run(&combos);
    let best = best_per_matcher(&results);

    println!("Figure 12 — quality of best matcher combinations\n");
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for (label, result) in &best {
        // Figure 12 reports SchemaM-based and NamePath-based pairs plus All;
        // print everything, the comparison table below carries the paper's
        // selection.
        let mut row = vec![label.clone()];
        row.extend(fmt_quality(&result.average));
        row.push(result.spec.label());
        rows.push((result.average.overall, row));
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    let table: Vec<Vec<String>> = rows.into_iter().map(|r| r.1).collect();
    println!(
        "{}",
        render_table(
            &[
                "Combination",
                "avg Precision",
                "avg Recall",
                "avg Overall",
                "best strategy"
            ],
            &table
        )
    );

    println!("Paper (Figure 12), for comparison:");
    let paper_rows: Vec<Vec<String>> = PAPER
        .iter()
        .map(|(m, p, r, o)| {
            vec![
                m.to_string(),
                format!("{p:.2}"),
                format!("{r:.2}"),
                format!("{o:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Combination", "avg Precision", "avg Recall", "avg Overall"],
            &paper_rows
        )
    );
    println!("Expected shape: reuse combinations > All > NamePath pairs; Leaves");
    println!("pairs beat Children pairs; combinations beat all single matchers.");
}
