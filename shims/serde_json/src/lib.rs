//! Offline stand-in for `serde_json`, rendering the serde shim's value
//! tree to and from JSON text.
//!
//! Maps whose keys are all strings become JSON objects; maps with
//! structured keys (tuples, enums) become arrays of `[key, value]` pairs,
//! which the serde shim's map deserializers accept symmetrically.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// --- writer --------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_items(
                out,
                items.iter(),
                indent,
                level,
                ('[', ']'),
                |out, item, lvl| write_value(out, item, indent, lvl),
            );
        }
        Value::Map(entries) => {
            if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
                write_items(
                    out,
                    entries.iter(),
                    indent,
                    level,
                    ('{', '}'),
                    |out, (k, v), lvl| {
                        write_value(out, k, indent, lvl);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_value(out, v, indent, lvl);
                    },
                );
            } else {
                // Structured keys: render as an array of [key, value] pairs.
                write_items(
                    out,
                    entries.iter(),
                    indent,
                    level,
                    ('[', ']'),
                    |out, (k, v), lvl| {
                        out.push('[');
                        write_value(out, k, indent, lvl);
                        out.push(',');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_value(out, v, indent, lvl);
                        out.push(']');
                    },
                );
            }
        }
    }
}

fn write_items<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        let s: String = from_str("\"a\\\"b\"").unwrap();
        assert_eq!(s, "a\"b");
        let f: f64 = from_str("0.5").unwrap();
        assert_eq!(f, 0.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), 2.25);
        let json = to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn structured_map_keys_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(("a".to_string(), "b".to_string()), 1u32);
        m.insert(("c".to_string(), "d".to_string()), 2);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<(String, String), u32> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
