//! The wire protocol: request/response types and length-prefixed JSON
//! framing.
//!
//! Transport framing is deliberately trivial: every message is a 4-byte
//! big-endian length followed by that many bytes of JSON (the serde
//! shim's serialization of the [`Request`]/[`Response`] enums). Length
//! prefixes make message boundaries explicit — no sniffing for balanced
//! braces on a stream — and a [`MAX_FRAME_BYTES`] cap keeps a corrupt or
//! hostile peer from making the server allocate unboundedly.
//!
//! Every type here is shaped for the serde *derive shim* (named-field
//! structs plus unit/tuple enum variants; no struct variants, no
//! generics), so the whole protocol round-trips through the offline
//! serde stand-ins.

use coma_core::{CacheStats, ComposeCombine, MatchStrategy};
use coma_repo::MappingKind;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Upper bound on one frame's payload (64 MiB) — large enough for a
/// serialized multi-thousand-node schema, small enough to bound a
/// malformed length prefix.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// A schema sent inline with a request, as source text in one of the
/// supported frontends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InlineSchema {
    /// Name the schema is known by (repository key, mapping label).
    pub name: String,
    /// Which frontend parses `text`.
    pub format: SchemaFormat,
    /// The schema source (XSD document or SQL DDL).
    pub text: String,
}

/// The schema frontends the service can parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemaFormat {
    /// XML Schema (XSD).
    Xsd,
    /// SQL DDL (`CREATE TABLE` statements).
    Sql,
}

/// One side of a match task: either a schema already stored in the
/// repository (by name) or one shipped inline with the request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemaRef {
    /// A schema stored earlier via [`Request::PutSchema`] (or persisted
    /// by a previous server process).
    Stored(String),
    /// A schema carried by the request itself.
    Inline(InlineSchema),
}

/// Parameters of a [`PlanSpec::Reuse`] request: answer the match task
/// from the server repository's stored mappings by composing pivot
/// chains, instead of matching fresh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseSpec {
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind: Option<MappingKind>,
    /// Transitive-similarity combination along each chain.
    pub compose: ComposeCombine,
    /// Maximum stored mappings per pivot chain (must be ≥ 2).
    pub max_hops: u64,
}

impl Default for ReuseSpec {
    fn default() -> Self {
        ReuseSpec {
            kind: None,
            compose: ComposeCombine::Average,
            max_hops: 3,
        }
    }
}

/// Which staged plan the engine runs — the wire-level mirror of
/// [`coma_core::plans`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanSpec {
    /// The paper-default flat strategy (all hybrid matchers, one stage).
    Default,
    /// An explicit flat strategy: matcher names plus combination.
    Flat(MatchStrategy),
    /// The liberal-`Name` TopK(k) prefilter → paper-default refine.
    TopKPruned(usize),
    /// Inverted-index retrieval (capped per element) → masked re-rank →
    /// paper-default refine.
    CandidateIndex(usize),
    /// Pivot-based reuse from the server's stored-mapping graph. When no
    /// pivot path connects the two sides the server falls back to fresh
    /// matching with the Default plan and flags it in the response
    /// (`reused: Some(false)`) — a miss is an answer, not an error.
    Reuse(ReuseSpec),
}

/// Engine tuning carried by a match request — the wire-level mirror of
/// [`coma_core::EngineConfig`]'s switches (unset fields keep the
/// engine's defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Parallel (row-sharded) execution.
    pub parallel: bool,
    /// Sparse (CSR) storage for pruned stages.
    pub sparse: bool,
    /// Forced shard count (`None` = automatic).
    pub shards: Option<usize>,
    /// Streaming-fused pruning of unrestricted prunable stages.
    pub fuse_pruning: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            parallel: true,
            sparse: true,
            shards: None,
            fuse_pruning: false,
        }
    }
}

/// A match task: resolve both sides, run the plan, return ranked
/// correspondences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchRequest {
    /// Tenant whose cross-request cache (and stats) the task uses.
    pub tenant: String,
    /// Source schema S1.
    pub source: SchemaRef,
    /// Target schema S2.
    pub target: SchemaRef,
    /// The staged plan to run.
    pub plan: PlanSpec,
    /// Engine tuning.
    pub config: MatchConfig,
    /// Store the resulting mapping in the repository (keyed replace:
    /// re-matching a pair updates the stored automatic result).
    pub store: bool,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Parse and persist a schema: (tenant, schema).
    PutSchema(String, InlineSchema),
    /// Describe a stored schema: (tenant, name).
    GetSchema(String, String),
    /// Names of all stored schemas: (tenant).
    ListSchemas(String),
    /// Run a match task.
    Match(MatchRequest),
    /// Tenant statistics: (tenant).
    Stats(String),
    /// Persist the repository now.
    Flush,
    /// Stop accepting connections and exit once in-flight sessions end.
    Shutdown,
}

/// Summary of a stored schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaInfo {
    /// Repository key.
    pub name: String,
    /// Node count.
    pub nodes: u64,
    /// Path (match-object) count.
    pub paths: u64,
}

/// One static plan-analysis finding, on the wire. Mirrors
/// [`coma_core::PlanDiagnostic`] with the severity as a plain string
/// (`"error"` / `"warn"` / `"note"`) so the frame stays readable without
/// the core crate's enums.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireDiagnostic {
    /// `"error"`, `"warn"` or `"note"`.
    pub severity: String,
    /// Stable machine-readable code (`E_*` / `W_*` / `N_*`).
    pub code: String,
    /// Node path in the plan tree, e.g. `Seq[1].TopK`.
    pub node_path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl WireDiagnostic {
    /// Converts a core diagnostic to its wire form.
    pub fn from_core(d: &coma_core::PlanDiagnostic) -> WireDiagnostic {
        WireDiagnostic {
            severity: d.severity.to_string(),
            code: d.code.clone(),
            node_path: d.node_path.clone(),
            message: d.message.clone(),
        }
    }
}

/// One ranked correspondence of a match response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCorrespondence {
    /// Full dotted source path.
    pub source_path: String,
    /// Full dotted target path.
    pub target_path: String,
    /// Combined similarity in `[0, 1]`.
    pub similarity: f64,
}

/// The result of a match task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchResponse {
    /// Source schema name.
    pub source: String,
    /// Target schema name.
    pub target: String,
    /// Correspondences, best first (ties broken by path order).
    pub correspondences: Vec<RankedCorrespondence>,
    /// Server-side wall time of the plan execution, in microseconds.
    pub elapsed_micros: u64,
    /// The tenant cache's counters after this request — lets clients
    /// observe cross-request memo hits.
    pub cache: CacheStats,
    /// For [`PlanSpec::Reuse`] requests: `Some(true)` when the result
    /// was composed from stored mappings, `Some(false)` when no pivot
    /// path existed and the server fell back to fresh matching. `None`
    /// for every other plan kind.
    pub reused: Option<bool>,
    /// The chosen pivot path (`->`-joined pivot names) when
    /// `reused == Some(true)`; `None` otherwise.
    pub reuse_path: Option<String>,
    /// Non-fatal findings of the pre-execution plan analysis (warnings
    /// and notes; a plan with errors is rejected with
    /// [`Response::InvalidPlan`] instead and never executes).
    pub diagnostics: Vec<WireDiagnostic>,
}

/// Tenant statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// The tenant these stats describe.
    pub tenant: String,
    /// Stored schemas (repository-wide).
    pub schemas: u64,
    /// Stored mappings (repository-wide).
    pub mappings: u64,
    /// Stored cubes (repository-wide).
    pub cubes: u64,
    /// Requests served for this tenant.
    pub requests: u64,
    /// The tenant's cross-request cache counters.
    pub cache: CacheStats,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// The schema was parsed and persisted.
    SchemaStored(SchemaInfo),
    /// A stored schema's summary.
    Schema(SchemaInfo),
    /// Stored schema names, sorted.
    Schemas(Vec<String>),
    /// A match task's result.
    Matched(MatchResponse),
    /// Tenant statistics.
    Stats(ServerStats),
    /// The repository was persisted.
    Flushed,
    /// The server is shutting down.
    ShuttingDown,
    /// The request failed; the payload says why.
    Error(String),
    /// The match request's plan failed static analysis and was not
    /// executed; the payload carries every diagnostic (at least one of
    /// severity `"error"`), each pinned to a plan node path.
    InvalidPlan(Vec<WireDiagnostic>),
}

/// Writes one length-prefixed JSON frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, message: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let len = u32::try_from(json.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME_BYTES",
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF (the
/// peer closed between messages).
pub fn read_message<T: Deserialize>(r: &mut impl Read) -> std::io::Result<Option<T>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let json = String::from_utf8(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let value = serde_json::from_str(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: &Request) {
        let mut buf = Vec::new();
        write_message(&mut buf, req).unwrap();
        let back: Request = read_message(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&back, req);
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        roundtrip(&Request::Ping);
        roundtrip(&Request::PutSchema(
            "acme".into(),
            InlineSchema {
                name: "PO".into(),
                format: SchemaFormat::Sql,
                text: "CREATE TABLE po (id INT);".into(),
            },
        ));
        roundtrip(&Request::GetSchema("acme".into(), "PO".into()));
        roundtrip(&Request::ListSchemas("acme".into()));
        roundtrip(&Request::Match(MatchRequest {
            tenant: "acme".into(),
            source: SchemaRef::Stored("PO".into()),
            target: SchemaRef::Inline(InlineSchema {
                name: "PO2".into(),
                format: SchemaFormat::Xsd,
                text: "<schema/>".into(),
            }),
            plan: PlanSpec::TopKPruned(5),
            config: MatchConfig {
                shards: Some(2),
                ..MatchConfig::default()
            },
            store: true,
        }));
        roundtrip(&Request::Match(MatchRequest {
            tenant: "acme".into(),
            source: SchemaRef::Stored("A".into()),
            target: SchemaRef::Stored("B".into()),
            plan: PlanSpec::Flat(MatchStrategy::paper_default()),
            config: MatchConfig::default(),
            store: false,
        }));
        roundtrip(&Request::Match(MatchRequest {
            tenant: "acme".into(),
            source: SchemaRef::Stored("A".into()),
            target: SchemaRef::Stored("B".into()),
            plan: PlanSpec::Reuse(ReuseSpec {
                kind: Some(MappingKind::Manual),
                compose: ComposeCombine::Average,
                max_hops: 3,
            }),
            config: MatchConfig::default(),
            store: false,
        }));
        roundtrip(&Request::Match(MatchRequest {
            tenant: "acme".into(),
            source: SchemaRef::Stored("A".into()),
            target: SchemaRef::Stored("B".into()),
            plan: PlanSpec::Reuse(ReuseSpec::default()),
            config: MatchConfig::default(),
            store: false,
        }));
        roundtrip(&Request::Stats("acme".into()));
        roundtrip(&Request::Flush);
        roundtrip(&Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip_through_frames() {
        let responses = [
            Response::Pong,
            Response::Schema(SchemaInfo {
                name: "PO".into(),
                nodes: 12,
                paths: 15,
            }),
            Response::Schemas(vec!["A".into(), "B".into()]),
            Response::Matched(MatchResponse {
                source: "A".into(),
                target: "B".into(),
                correspondences: vec![RankedCorrespondence {
                    source_path: "A.x".into(),
                    target_path: "B.y".into(),
                    similarity: 0.81,
                }],
                elapsed_micros: 1234,
                cache: coma_core::CacheStats::default(),
                reused: None,
                reuse_path: None,
                diagnostics: Vec::new(),
            }),
            Response::Matched(MatchResponse {
                source: "A".into(),
                target: "B".into(),
                correspondences: Vec::new(),
                elapsed_micros: 99,
                cache: coma_core::CacheStats::default(),
                reused: Some(true),
                reuse_path: Some("P->Q".into()),
                diagnostics: vec![WireDiagnostic {
                    severity: "warn".into(),
                    code: "W_REUSE_NO_PATH".into(),
                    node_path: "Reuse".into(),
                    message: "no pivot chain".into(),
                }],
            }),
            Response::InvalidPlan(vec![WireDiagnostic {
                severity: "error".into(),
                code: "E_TOPK_ZERO".into(),
                node_path: "Seq[0].TopK".into(),
                message: "`TopK` with k = 0 drops every pair".into(),
            }]),
            Response::Flushed,
            Response::ShuttingDown,
            Response::Error("boom".into()),
        ];
        for resp in &responses {
            let mut buf = Vec::new();
            write_message(&mut buf, resp).unwrap();
            let back: Response = read_message(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(&back, resp);
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        buf.extend_from_slice(b"xx");
        assert!(read_message::<Request>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn eof_between_messages_is_clean() {
        let empty: &[u8] = &[];
        assert!(read_message::<Request>(&mut &*empty).unwrap().is_none());
    }
}
