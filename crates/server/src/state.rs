//! Shared server state and request dispatch.
//!
//! One [`ServerState`] serves every connection: the matcher library and
//! auxiliary tables (shared, immutable for the server's life — the
//! stability the cross-request caches require), the persistent
//! repository behind its `RwLock`, a hot working set of `Arc<Schema>`s
//! so concurrent sessions share one allocation per schema, and one
//! [`EngineCache`] per tenant. Request dispatch is synchronous: the
//! connection thread that read the frame runs the match (the plan
//! engine row-shards big stages across its own scoped threads).

use crate::protocol::{
    InlineSchema, MatchConfig, MatchRequest, MatchResponse, PlanSpec, RankedCorrespondence,
    Request, Response, SchemaFormat, SchemaInfo, SchemaRef, ServerStats, WireDiagnostic,
};
use coma_core::{
    plans, schema_fingerprint, Auxiliary, EngineCache, EngineConfig, MatchContext, MatchPlan,
    MatchStrategy, MatcherLibrary, PlanAnalyzer, PlanEngine, TaskStats,
};
use coma_graph::{PathSet, Schema};
use coma_repo::{MappingKind, PersistentRepository, RepositoryBackend};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-tenant state: the cross-request cache and a request counter.
pub struct TenantState {
    /// The tenant's cross-request engine cache.
    pub cache: Arc<EngineCache>,
    requests: AtomicU64,
}

impl TenantState {
    fn new(cache_pairs: usize) -> TenantState {
        TenantState {
            cache: Arc::new(EngineCache::with_capacity(cache_pairs)),
            requests: AtomicU64::new(0),
        }
    }
}

/// Everything one server process shares across its sessions.
pub struct ServerState {
    library: MatcherLibrary,
    aux: Auxiliary,
    repo: PersistentRepository,
    /// Hot working set: schema name → shared allocation. Concurrent
    /// sessions matching the same stored schema share one `Arc<Schema>`.
    schemas: RwLock<HashMap<String, Arc<Schema>>>,
    tenants: RwLock<HashMap<String, Arc<TenantState>>>,
    cache_pairs: usize,
    shutdown: AtomicBool,
}

impl ServerState {
    /// State over a repository backend, with the standard matcher
    /// library and auxiliary tables and per-tenant caches bounded to
    /// `cache_pairs` schema-pair scopes. Loads the persisted repository
    /// (so a restarted server resumes where the last one stopped).
    pub fn open(
        backend: impl RepositoryBackend + 'static,
        cache_pairs: usize,
    ) -> Result<ServerState, coma_repo::RepositoryError> {
        Ok(ServerState {
            library: MatcherLibrary::standard(),
            aux: Auxiliary::standard(),
            repo: PersistentRepository::open(backend)?,
            schemas: RwLock::default(),
            tenants: RwLock::default(),
            cache_pairs: cache_pairs.max(1),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The persistent repository handle.
    pub fn repository(&self) -> &PersistentRepository {
        &self.repo
    }

    fn tenant(&self, name: &str) -> Arc<TenantState> {
        if let Some(t) = self.tenants.read().get(name) {
            return Arc::clone(t);
        }
        Arc::clone(
            self.tenants
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(TenantState::new(self.cache_pairs))),
        )
    }

    /// Handles one request. Never panics on malformed input — failures
    /// become [`Response::Error`] so the session survives.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::PutSchema(tenant, schema) => self.put_schema(&tenant, &schema),
            Request::GetSchema(tenant, name) => self.get_schema(&tenant, &name),
            Request::ListSchemas(tenant) => {
                self.tenant(&tenant)
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                let names = self
                    .repo
                    .read()
                    .schema_names()
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                Response::Schemas(names)
            }
            Request::Match(req) => self.run_match(&req),
            Request::Stats(tenant) => self.stats(&tenant),
            Request::Flush => match self.repo.flush() {
                Ok(()) => Response::Flushed,
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }

    fn parse_inline(schema: &InlineSchema) -> Result<Schema, String> {
        match schema.format {
            SchemaFormat::Xsd => coma_xml::import_xsd(&schema.text, &schema.name)
                .map_err(|e| format!("XSD import of {:?} failed: {e}", schema.name)),
            SchemaFormat::Sql => coma_sql::import_ddl(&schema.text, &schema.name)
                .map_err(|e| format!("DDL import of {:?} failed: {e}", schema.name)),
        }
    }

    fn info(schema: &Schema) -> Result<SchemaInfo, String> {
        let paths = PathSet::new(schema).map_err(|e| e.to_string())?;
        Ok(SchemaInfo {
            name: schema.name().to_string(),
            nodes: schema.node_count() as u64,
            paths: paths.len() as u64,
        })
    }

    fn put_schema(&self, tenant: &str, inline: &InlineSchema) -> Response {
        self.tenant(tenant).requests.fetch_add(1, Ordering::Relaxed);
        let schema = match Self::parse_inline(inline) {
            Ok(s) => s,
            Err(e) => return Response::Error(e),
        };
        let info = match Self::info(&schema) {
            Ok(i) => i,
            Err(e) => return Response::Error(e),
        };
        let shared = Arc::new(schema);
        if let Err(e) = self.repo.mutate(|r| r.put_schema((*shared).clone())) {
            return Response::Error(e.to_string());
        }
        self.schemas
            .write()
            .insert(info.name.clone(), Arc::clone(&shared));
        Response::SchemaStored(info)
    }

    fn get_schema(&self, tenant: &str, name: &str) -> Response {
        self.tenant(tenant).requests.fetch_add(1, Ordering::Relaxed);
        match self.resolve_stored(name) {
            Ok(schema) => match Self::info(&schema) {
                Ok(info) => Response::Schema(info),
                Err(e) => Response::Error(e),
            },
            Err(e) => Response::Error(e),
        }
    }

    /// A stored schema as a shared allocation, loading it from the
    /// repository into the hot working set on first use.
    fn resolve_stored(&self, name: &str) -> Result<Arc<Schema>, String> {
        if let Some(hit) = self.schemas.read().get(name) {
            return Ok(Arc::clone(hit));
        }
        let loaded = self
            .repo
            .read()
            .schema(name)
            .cloned()
            .ok_or_else(|| format!("no stored schema named {name:?}"))?;
        let shared = Arc::new(loaded);
        Ok(Arc::clone(
            self.schemas
                .write()
                .entry(name.to_string())
                .or_insert(shared),
        ))
    }

    fn resolve(&self, side: &SchemaRef) -> Result<Arc<Schema>, String> {
        match side {
            SchemaRef::Stored(name) => self.resolve_stored(name),
            SchemaRef::Inline(inline) => Self::parse_inline(inline).map(Arc::new),
        }
    }

    /// Builds the plan a spec describes *without* validating its shape:
    /// degenerate parameters (`TopKPruned(0)`, a too-short reuse hop
    /// budget) survive construction so the pre-execution analyzer can
    /// reject them with structured diagnostics carrying real node paths,
    /// instead of a flat error string losing the position.
    fn plan_of(spec: &PlanSpec) -> MatchPlan {
        match spec {
            PlanSpec::Default => MatchPlan::from(&MatchStrategy::paper_default()),
            PlanSpec::Flat(strategy) => MatchPlan::from(strategy),
            PlanSpec::TopKPruned(k) => plans::topk_pruned_plan_raw(*k),
            PlanSpec::CandidateIndex(cap) => plans::candidate_index_plan_raw(*cap),
            PlanSpec::Reuse(spec) => MatchPlan::Reuse {
                kind: spec.kind,
                compose: spec.compose,
                max_hops: spec.max_hops as usize,
                combination: coma_core::CombinationStrategy::paper_default(),
            },
        }
    }

    fn engine_config(config: &MatchConfig) -> EngineConfig {
        let mut cfg = EngineConfig::default()
            .with_parallel(config.parallel)
            .with_sparse(config.sparse)
            .with_fuse_pruning(config.fuse_pruning);
        if let Some(shards) = config.shards {
            cfg = cfg.with_shards(shards);
        }
        cfg
    }

    fn run_match(&self, req: &MatchRequest) -> Response {
        let tenant = self.tenant(&req.tenant);
        tenant.requests.fetch_add(1, Ordering::Relaxed);
        let (source, target) = match (self.resolve(&req.source), self.resolve(&req.target)) {
            (Ok(s), Ok(t)) => (s, t),
            (Err(e), _) | (_, Err(e)) => return Response::Error(e),
        };
        let plan = Self::plan_of(&req.plan);
        let cfg = Self::engine_config(&req.config);

        let started = Instant::now();
        let (source_paths, target_paths) = match (PathSet::new(&source), PathSet::new(&target)) {
            (Ok(s), Ok(t)) => (s, t),
            (Err(e), _) | (_, Err(e)) => return Response::Error(e.to_string()),
        };
        // The read guard spans the execution so reuse matchers see a
        // consistent repository snapshot; writers (PutSchema / store)
        // wait for in-flight matches, readers do not.
        let is_reuse = matches!(req.plan, PlanSpec::Reuse(_));
        let (mapping, reused, reuse_path, diagnostics) = {
            let repo = self.repo.read();
            let ctx = MatchContext::new(&source, &target, &source_paths, &target_paths, &self.aux)
                .with_repository(&repo);
            // Pre-execution static analysis against the resolved engine
            // config and the tenant's cross-request cache: a plan with
            // error diagnostics never executes; warnings and notes ride
            // along in the response.
            let task_stats = TaskStats::gather(&ctx);
            let analysis = PlanAnalyzer::new(&self.library, cfg.clone()).analyze_with_cache(
                &plan,
                &task_stats,
                &tenant.cache,
                schema_fingerprint(&source, &source_paths),
                schema_fingerprint(&target, &target_paths),
            );
            if analysis.has_errors() {
                return Response::InvalidPlan(
                    analysis
                        .diagnostics
                        .iter()
                        .map(WireDiagnostic::from_core)
                        .collect(),
                );
            }
            let diagnostics: Vec<WireDiagnostic> = analysis
                .diagnostics
                .iter()
                .map(WireDiagnostic::from_core)
                .collect();
            let engine = PlanEngine::with_config(&self.library, cfg);
            let outcome = match engine.execute_cached(&ctx, &plan, &tenant.cache) {
                Ok(o) => o,
                Err(e) => return Response::Error(e.to_string()),
            };
            let chosen_path = outcome
                .stages
                .last()
                .and_then(|s| s.reuse_stats.as_ref())
                .and_then(|s| s.paths.first())
                .map(|p| p.via.clone());
            match (is_reuse, chosen_path) {
                (true, Some(via)) => (
                    outcome.result.to_mapping(&ctx, MappingKind::Automatic),
                    Some(true),
                    Some(via),
                    diagnostics,
                ),
                (true, None) => {
                    // No pivot path connects the two sides: fall back to
                    // fresh matching with the Default plan. The response
                    // flags the miss (`reused: Some(false)`) — it is an
                    // answer, not an error.
                    let fallback = Self::plan_of(&PlanSpec::Default);
                    let outcome = match engine.execute_cached(&ctx, &fallback, &tenant.cache) {
                        Ok(o) => o,
                        Err(e) => return Response::Error(e.to_string()),
                    };
                    (
                        outcome.result.to_mapping(&ctx, MappingKind::Automatic),
                        Some(false),
                        None,
                        diagnostics,
                    )
                }
                (false, _) => (
                    outcome.result.to_mapping(&ctx, MappingKind::Automatic),
                    None,
                    None,
                    diagnostics,
                ),
            }
        };
        let elapsed_micros = started.elapsed().as_micros() as u64;

        if req.store {
            let stored = mapping.clone();
            let source_schema = (*source).clone();
            let target_schema = (*target).clone();
            if let Err(e) = self.repo.mutate(move |r| {
                r.put_schema(source_schema);
                r.put_schema(target_schema);
                r.put_mapping(stored);
            }) {
                return Response::Error(e.to_string());
            }
        }

        let mut correspondences: Vec<RankedCorrespondence> = mapping
            .correspondences
            .iter()
            .map(|c| RankedCorrespondence {
                source_path: c.source.clone(),
                target_path: c.target.clone(),
                similarity: c.similarity,
            })
            .collect();
        correspondences.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.source_path.cmp(&b.source_path))
                .then_with(|| a.target_path.cmp(&b.target_path))
        });

        Response::Matched(MatchResponse {
            source: source.name().to_string(),
            target: target.name().to_string(),
            correspondences,
            elapsed_micros,
            cache: tenant.cache.stats(),
            reused,
            reuse_path,
            diagnostics,
        })
    }

    fn stats(&self, tenant_name: &str) -> Response {
        let tenant = self.tenant(tenant_name);
        tenant.requests.fetch_add(1, Ordering::Relaxed);
        let repo = self.repo.read();
        Response::Stats(ServerStats {
            tenant: tenant_name.to_string(),
            schemas: repo.schema_count() as u64,
            mappings: repo.mappings().len() as u64,
            cubes: repo.cube_count() as u64,
            requests: tenant.requests.load(Ordering::Relaxed),
            cache: tenant.cache.stats(),
        })
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("store", &self.repo.location())
            .field("tenants", &self.tenants.read().len())
            .finish_non_exhaustive()
    }
}
