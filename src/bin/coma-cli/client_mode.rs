//! `coma-cli --server SOCKET …`: the client side of a running
//! `coma-server` (see the crate docs in `main.rs` for the command list).

use coma::server::{
    Client, InlineSchema, MatchConfig, MatchRequest, PlanSpec, Request, Response, ReuseSpec,
    SchemaFormat, SchemaRef,
};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// How long to keep retrying the initial connect — covers scripts that
/// start the server and the client back to back.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: coma-cli --server SOCKET <command> [--tenant T]\n\
         \n\
         put <schema-file> [--name NAME]\n\
         match <source> <target> [--store] [--top-k K] [--candidate-cap N]\n\
         \x20     [--reuse] [--max-hops N] [--json]\n\
         fetch <NAME>\n\
         list\n\
         stats\n\
         ping\n\
         shutdown"
    );
    ExitCode::from(2)
}

/// Reads a schema file into an inline wire schema, picking the format by
/// extension exactly like local mode does.
fn inline_schema(path: &str, name: Option<&str>) -> Result<InlineSchema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("schema");
    let ext = Path::new(path)
        .extension()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    Ok(InlineSchema {
        name: name.unwrap_or(stem).to_string(),
        format: if matches!(ext.as_str(), "sql" | "ddl") {
            SchemaFormat::Sql
        } else {
            SchemaFormat::Xsd
        },
        text,
    })
}

/// A match side: an existing file is sent inline, anything else is
/// treated as the name of a stored schema.
fn schema_ref(arg: &str) -> Result<SchemaRef, String> {
    if Path::new(arg).is_file() {
        Ok(SchemaRef::Inline(inline_schema(arg, None)?))
    } else {
        Ok(SchemaRef::Stored(arg.to_string()))
    }
}

/// Runs one client command against the server at `socket`. `args` is the
/// full argument list minus the already-consumed `--server SOCKET`.
pub fn run(socket: &str, args: Vec<String>) -> ExitCode {
    // Split flags from positionals so `--tenant` may appear anywhere.
    let mut tenant = "default".to_string();
    let mut name: Option<String> = None;
    let mut store = false;
    let mut json = false;
    let mut top_k: Option<usize> = None;
    let mut candidate_cap: Option<usize> = None;
    let mut reuse = false;
    let mut max_hops: u64 = 3;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tenant" => match it.next() {
                Some(v) => tenant = v,
                None => return usage(),
            },
            "--name" => match it.next() {
                Some(v) => name = Some(v),
                None => return usage(),
            },
            "--top-k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => top_k = Some(v),
                None => return usage(),
            },
            "--candidate-cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => candidate_cap = Some(v),
                None => return usage(),
            },
            "--reuse" => reuse = true,
            "--max-hops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_hops = v,
                None => return usage(),
            },
            "--store" => store = true,
            "--json" => json = true,
            "--help" | "-h" => return usage(),
            _ => positional.push(arg),
        }
    }
    let Some(command) = positional.first().cloned() else {
        return usage();
    };
    let operands = &positional[1..];

    let request = match (command.as_str(), operands) {
        ("ping", []) => Request::Ping,
        ("shutdown", []) => Request::Shutdown,
        ("list", []) => Request::ListSchemas(tenant.clone()),
        ("stats", []) => Request::Stats(tenant.clone()),
        ("fetch", [schema]) => Request::GetSchema(tenant.clone(), schema.clone()),
        ("put", [file]) => match inline_schema(file, name.as_deref()) {
            Ok(schema) => Request::PutSchema(tenant.clone(), schema),
            Err(e) => return fail(e),
        },
        ("match", [source, target]) => {
            let (source, target) = match (schema_ref(source), schema_ref(target)) {
                (Ok(s), Ok(t)) => (s, t),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            let plan = if reuse {
                // Pivot-based matching from the server's stored-mapping
                // graph; the server falls back to fresh matching (and
                // flags it) when no pivot path exists.
                PlanSpec::Reuse(ReuseSpec {
                    max_hops,
                    ..ReuseSpec::default()
                })
            } else {
                match (top_k, candidate_cap) {
                    (Some(k), _) => PlanSpec::TopKPruned(k),
                    (None, Some(cap)) => PlanSpec::CandidateIndex(cap),
                    (None, None) => PlanSpec::Default,
                }
            };
            Request::Match(MatchRequest {
                tenant: tenant.clone(),
                source,
                target,
                plan,
                config: MatchConfig::default(),
                store,
            })
        }
        _ => return usage(),
    };

    let mut client = match Client::connect_retry(socket, CONNECT_TIMEOUT) {
        Ok(c) => c,
        Err(e) => return fail(format!("cannot connect to {socket}: {e}")),
    };
    let response = match client.call(&request) {
        Ok(r) => r,
        Err(e) => return fail(format!("request failed: {e}")),
    };
    print_response(response, json)
}

fn print_response(response: Response, json: bool) -> ExitCode {
    match response {
        Response::Error(message) => fail(message),
        Response::InvalidPlan(diagnostics) => {
            eprintln!("error: the server rejected the plan before execution:");
            for d in &diagnostics {
                eprintln!(
                    "  {} {} at `{}`: {}",
                    d.severity, d.code, d.node_path, d.message
                );
            }
            ExitCode::FAILURE
        }
        Response::Pong => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Response::ShuttingDown => {
            println!("server shutting down");
            ExitCode::SUCCESS
        }
        Response::Flushed => {
            println!("flushed");
            ExitCode::SUCCESS
        }
        Response::SchemaStored(info) | Response::Schema(info) => {
            println!("{}\t{} nodes\t{} paths", info.name, info.nodes, info.paths);
            ExitCode::SUCCESS
        }
        Response::Schemas(names) => {
            for name in names {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Response::Stats(stats) => {
            println!(
                "tenant {}: {} schemas, {} mappings, {} cubes, {} requests",
                stats.tenant, stats.schemas, stats.mappings, stats.cubes, stats.requests
            );
            println!(
                "cache: {} matrix hits / {} misses, {} index hits / {} misses, \
                 {} matrices, {} indexes, {} token sets",
                stats.cache.matrix_hits,
                stats.cache.matrix_misses,
                stats.cache.index_hits,
                stats.cache.index_misses,
                stats.cache.matrix_entries,
                stats.cache.index_entries,
                stats.cache.token_entries
            );
            ExitCode::SUCCESS
        }
        Response::Matched(matched) => {
            if json {
                match serde_json::to_string_pretty(&matched) {
                    Ok(text) => println!("{text}"),
                    Err(e) => return fail(e),
                }
                return ExitCode::SUCCESS;
            }
            eprintln!(
                "# {} -> {}: {} correspondences in {:.2} ms \
                 ({} matrix hits / {} misses)",
                matched.source,
                matched.target,
                matched.correspondences.len(),
                matched.elapsed_micros as f64 / 1e3,
                matched.cache.matrix_hits,
                matched.cache.matrix_misses
            );
            match (matched.reused, &matched.reuse_path) {
                (Some(true), Some(via)) => eprintln!("# reused stored mappings via {via}"),
                (Some(true), None) => eprintln!("# reused stored mappings"),
                (Some(false), _) => {
                    eprintln!("# no pivot path in repository; matched fresh instead")
                }
                (None, _) => {}
            }
            for d in &matched.diagnostics {
                eprintln!(
                    "# {} {} at `{}`: {}",
                    d.severity, d.code, d.node_path, d.message
                );
            }
            for c in &matched.correspondences {
                println!("{:.3}\t{}\t{}", c.similarity, c.source_path, c.target_path);
            }
            ExitCode::SUCCESS
        }
    }
}
