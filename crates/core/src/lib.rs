//! # coma-core — the COMA schema matching system
//!
//! A from-scratch implementation of COMA (Do & Rahm, VLDB 2002): a generic
//! schema matching platform built around the flexible **combination of
//! multiple matchers**.
//!
//! * [`cube`](SimCube) — the `k × m × n` similarity cube produced by executing `k`
//!   matchers on a match task (Section 3);
//! * [`matchers`] — the extensible matcher library (Section 4): simple
//!   matchers (`Affix`, `Digram`/`Trigram`, `EditDistance`, `Soundex`,
//!   `Synonym`, `DataType`, `UserFeedback`) and hybrid matchers (`Name`,
//!   `NamePath`, `TypeName`, `Children`, `Leaves`) with their Table 4
//!   default construction;
//! * [`combine`] — the combination framework (Section 6): aggregation,
//!   match direction, candidate selection, combined similarity;
//! * [`reuse`] — the MatchCompose operation and the reuse-oriented
//!   `Schema` (`SchemaM`/`SchemaA`) and `Fragment` matchers (Section 5);
//! * [`process`] — match processing (Figure 2): the [`Coma`] system type,
//!   automatic match operations, and interactive [`MatchSession`]s with
//!   user feedback;
//! * [`engine`] — the composable [`MatchPlan`] operator tree
//!   (`Matchers` / `CandidateIndex` / `Seq` / `Par` / `Filter` / `TopK` /
//!   `Iterate` / `Reuse`) and its execution engine: parallel leaf
//!   fan-out, memoized shared work, staged filter-then-refine processes,
//!   inverted-index candidate generation, top-k pruning with a sparse
//!   execution path, and iterative refinement.
//!
//! ```
//! use coma_core::{Coma, MatchStrategy};
//!
//! let po1 = coma_sql::import_ddl(
//!     "CREATE TABLE PO.Customer (custNo INT, custName VARCHAR(200));",
//!     "PO1",
//! ).unwrap();
//! let po2 = coma_sql::import_ddl(
//!     "CREATE TABLE PO.Buyer (buyerNo INT, buyerName VARCHAR(100));",
//!     "PO2",
//! ).unwrap();
//!
//! let mut coma = Coma::new();
//! coma.aux_mut().synonyms.add_synonym("customer", "buyer");
//! let outcome = coma
//!     .match_schemas(&po1, &po2, &MatchStrategy::paper_default())
//!     .unwrap();
//! assert!(!outcome.result.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combine;
pub mod cube;
pub mod engine;
mod error;
pub mod matchers;
pub mod plans;
pub mod process;
mod result;
pub mod reuse;

pub use combine::{
    stable_marriage, Aggregation, CombinationStrategy, CombinedSim, DirectedCandidates, Direction,
    Selection,
};
pub use cube::{SimCube, SimMatrix, SparseBuilder, StorageMode};
pub use engine::{
    human_bytes, schema_fingerprint, shard_ranges, CacheStats, CandidateParams, CandidateScorer,
    EngineCache, EngineConfig, IndexStats, MatchMemo, MatchPlan, NodeFacts, PairMask, PlanAnalysis,
    PlanAnalyzer, PlanDiagnostic, PlanEngine, PlanError, PlanErrorKind, PlanOutcome, ScopeWarmth,
    Severity, StageOutcome, TaskStats, TopKPer, Tri, VocabIndex,
};
pub use error::{CoreError, Result};
pub use matchers::{Auxiliary, MatchContext, Matcher, MatcherLibrary};
pub use process::{
    combine_cube_with_feedback, stored_cube, Coma, MatchOutcome, MatchSession, MatchStrategy,
    ALL_HYBRIDS,
};
pub use result::{MatchCandidate, MatchResult};
pub use reuse::{
    match_compose, ComposeCombine, FragmentMatcher, ReusePathStats, ReuseResolution, ReuseResolver,
    ReuseStats, SchemaMatcher,
};
