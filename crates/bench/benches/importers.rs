//! Benchmarks of the schema import substrates: XSD (the largest corpus
//! schema) and SQL DDL.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

const DDL: &str = r#"
CREATE TABLE PO1.ShipTo (
    poNo INT,
    custNo INT REFERENCES PO1.Customer,
    shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
    PRIMARY KEY (poNo));
CREATE TABLE PO1.Customer (
    custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
    custCity VARCHAR(200), custZip VARCHAR(20), PRIMARY KEY (custNo));
CREATE TABLE PO1.OrderItem (
    itemNo INT, poNo INT REFERENCES PO1.ShipTo, partNo VARCHAR(40),
    quantity DECIMAL(10,2), unitPrice DECIMAL(12,4), PRIMARY KEY (itemNo));
"#;

fn bench_importers(c: &mut Criterion) {
    let apertum = coma_eval::corpus::xsd_source(4);
    let mut group = c.benchmark_group("importers");
    group.bench_function("import_xsd_apertum", |b| {
        b.iter(|| black_box(coma_xml::import_xsd(black_box(apertum), "Apertum").unwrap()))
    });
    group.bench_function("import_ddl_po1", |b| {
        b.iter(|| black_box(coma_sql::import_ddl(black_box(DDL), "PO1").unwrap()))
    });
    let schema = coma_xml::import_xsd(apertum, "Apertum").unwrap();
    group.bench_function("path_unfolding_apertum", |b| {
        b.iter(|| black_box(coma_graph::PathSet::new(black_box(&schema)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_importers);
criterion_main!(benches);
