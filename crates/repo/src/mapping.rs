use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a stored mapping was produced. The paper's evaluation distinguishes
/// reuse of manually confirmed results (`SchemaM`) from reuse of
/// automatically derived ones (`SchemaA`), Section 7.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingKind {
    /// Manually determined / user-confirmed correspondences.
    Manual,
    /// Output of an automatic match operation.
    Automatic,
}

/// One 1:1 correspondence between two schema elements (identified by their
/// dotted path names) together with its similarity — one tuple of the
/// relational mapping representation (Figure 3c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Correspondence {
    /// Full path name in the source schema (e.g. `PO1.Contact.Name`).
    pub source: String,
    /// Full path name in the target schema.
    pub target: String,
    /// Similarity in `[0, 1]`.
    pub similarity: f64,
}

/// A match result between two schemas: the set of correspondences, stored
/// relationally for efficient composition by natural join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Name of the source schema.
    pub source_schema: String,
    /// Name of the target schema.
    pub target_schema: String,
    /// Provenance of the mapping.
    pub kind: MappingKind,
    /// The correspondence tuples.
    pub correspondences: Vec<Correspondence>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new(
        source_schema: impl Into<String>,
        target_schema: impl Into<String>,
        kind: MappingKind,
    ) -> Mapping {
        Mapping {
            source_schema: source_schema.into(),
            target_schema: target_schema.into(),
            kind,
            correspondences: Vec::new(),
        }
    }

    /// Adds a correspondence tuple.
    pub fn push(&mut self, source: impl Into<String>, target: impl Into<String>, similarity: f64) {
        debug_assert!((0.0..=1.0).contains(&similarity));
        self.correspondences.push(Correspondence {
            source: source.into(),
            target: target.into(),
            similarity,
        });
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.correspondences.len()
    }

    /// Whether the mapping has no correspondences.
    pub fn is_empty(&self) -> bool {
        self.correspondences.is_empty()
    }

    /// The mapping with source and target swapped. Match results are
    /// symmetric at the repository level, so reversal just transposes the
    /// tuples.
    pub fn reversed(&self) -> Mapping {
        Mapping {
            source_schema: self.target_schema.clone(),
            target_schema: self.source_schema.clone(),
            kind: self.kind,
            correspondences: self
                .correspondences
                .iter()
                .map(|c| Correspondence {
                    source: c.target.clone(),
                    target: c.source.clone(),
                    similarity: c.similarity,
                })
                .collect(),
        }
    }

    /// Restricts the mapping to correspondences with similarity ≥ `t`.
    pub fn filtered(&self, t: f64) -> Mapping {
        Mapping {
            source_schema: self.source_schema.clone(),
            target_schema: self.target_schema.clone(),
            kind: self.kind,
            correspondences: self
                .correspondences
                .iter()
                .filter(|c| c.similarity >= t)
                .cloned()
                .collect(),
        }
    }

    /// The natural join underlying MatchCompose (paper, Section 5.1):
    /// joins `self: S1↔S2` with `other: S2↔S3` on the shared S2 element and
    /// combines the two similarities with `combine` (the paper argues for
    /// Average over multiplication, Figure 3).
    ///
    /// When several join partners produce the *same* (source, target) pair,
    /// the highest combined similarity is kept. m:n blow-up across distinct
    /// pairs (Figure 4) is preserved — limiting it is the job of the match
    /// processing layer, which combines compose results with other matchers.
    pub fn compose(&self, other: &Mapping, combine: impl Fn(f64, f64) -> f64) -> Mapping {
        // Hash join: index `other` on its source (= our target).
        let mut index: HashMap<&str, Vec<&Correspondence>> = HashMap::new();
        for c in &other.correspondences {
            index.entry(c.source.as_str()).or_default().push(c);
        }
        let mut seen: HashMap<(String, String), f64> = HashMap::new();
        let mut order: Vec<(String, String)> = Vec::new();
        for left in &self.correspondences {
            let Some(partners) = index.get(left.target.as_str()) else {
                continue;
            };
            for right in partners {
                let sim = combine(left.similarity, right.similarity).clamp(0.0, 1.0);
                let key = (left.source.clone(), right.target.clone());
                match seen.get_mut(&key) {
                    Some(existing) => *existing = existing.max(sim),
                    None => {
                        seen.insert(key.clone(), sim);
                        order.push(key);
                    }
                }
            }
        }
        let mut out = Mapping::new(
            self.source_schema.clone(),
            other.target_schema.clone(),
            MappingKind::Automatic,
        );
        for key in order {
            let sim = seen[&key];
            out.correspondences.push(Correspondence {
                source: key.0,
                target: key.1,
                similarity: sim,
            });
        }
        out
    }

    /// Whether the mapping relates the two named schemas, in either
    /// direction.
    pub fn relates(&self, a: &str, b: &str) -> bool {
        (self.source_schema == a && self.target_schema == b)
            || (self.source_schema == b && self.target_schema == a)
    }

    /// Returns this mapping oriented as `source → target`, reversing if
    /// necessary; `None` if it does not relate the two schemas.
    pub fn oriented(&self, source: &str, target: &str) -> Option<Mapping> {
        if self.source_schema == source && self.target_schema == target {
            Some(self.clone())
        } else if self.source_schema == target && self.target_schema == source {
            Some(self.reversed())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 3 example: match1: PO1↔PO2, match2: PO2↔PO3.
    fn figure3() -> (Mapping, Mapping) {
        let mut m1 = Mapping::new("PO1", "PO2", MappingKind::Manual);
        m1.push("PO1.Contact.Email", "PO2.Contact.e-mail", 1.0);
        m1.push("PO1.Contact.Name", "PO2.Contact.name", 1.0);
        let mut m2 = Mapping::new("PO2", "PO3", MappingKind::Manual);
        m2.push("PO2.Contact.e-mail", "PO3.Contact.email", 1.0);
        m2.push("PO2.Contact.name", "PO3.Contact.firstName", 0.6);
        m2.push("PO2.Contact.name", "PO3.Contact.lastName", 0.6);
        (m1, m2)
    }

    #[test]
    fn compose_reproduces_figure_3() {
        let (m1, m2) = figure3();
        let avg = |a: f64, b: f64| (a + b) / 2.0;
        let m = m1.compose(&m2, avg);
        assert_eq!(m.source_schema, "PO1");
        assert_eq!(m.target_schema, "PO3");
        // Figure 3b: Email→email 1.0, Name→firstName 0.8, Name→lastName 0.8.
        assert_eq!(m.len(), 3);
        let find = |s: &str, t: &str| {
            m.correspondences
                .iter()
                .find(|c| c.source == s && c.target == t)
                .map(|c| c.similarity)
        };
        assert_eq!(find("PO1.Contact.Email", "PO3.Contact.email"), Some(1.0));
        assert_eq!(find("PO1.Contact.Name", "PO3.Contact.firstName"), Some(0.8));
        assert_eq!(find("PO1.Contact.Name", "PO3.Contact.lastName"), Some(0.8));
        // company has no counterpart in PO2 → correctly missed.
        assert!(find("PO1.Contact.company", "PO3.Contact.company").is_none());
    }

    #[test]
    fn compose_average_beats_multiplication_degradation() {
        // Section 5.1: contactFirstName ↔0.5 Name ↔0.7 firstName.
        let mut m1 = Mapping::new("A", "B", MappingKind::Manual);
        m1.push("contactFirstName", "Name", 0.5);
        let mut m2 = Mapping::new("B", "C", MappingKind::Manual);
        m2.push("Name", "firstName", 0.7);
        let mul = m1.compose(&m2, |a, b| a * b);
        let avg = m1.compose(&m2, |a, b| (a + b) / 2.0);
        assert!((mul.correspondences[0].similarity - 0.35).abs() < 1e-12);
        assert!((avg.correspondences[0].similarity - 0.6).abs() < 1e-12);
    }

    #[test]
    fn compose_produces_mn_matches_like_figure_4() {
        let mut m1 = Mapping::new("PO1", "PO2", MappingKind::Manual);
        m1.push("PO1.ShipTo.Contact", "PO2.Contact", 1.0);
        m1.push("PO1.BillTo.Contact", "PO2.Contact", 1.0);
        let mut m2 = Mapping::new("PO2", "PO3", MappingKind::Manual);
        m2.push("PO2.Contact", "PO3.DeliverTo.Contact", 1.0);
        m2.push("PO2.Contact", "PO3.InvoiceTo.Contact", 1.0);
        let m = m1.compose(&m2, |a, b| (a + b) / 2.0);
        // All 4 combinations are returned (Figure 4's caveat).
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn compose_keeps_best_similarity_for_duplicate_pairs() {
        let mut m1 = Mapping::new("A", "B", MappingKind::Manual);
        m1.push("x", "b1", 1.0);
        m1.push("x", "b2", 0.4);
        let mut m2 = Mapping::new("B", "C", MappingKind::Manual);
        m2.push("b1", "y", 0.6);
        m2.push("b2", "y", 1.0);
        let m = m1.compose(&m2, |a, b| (a + b) / 2.0);
        assert_eq!(m.len(), 1);
        // via b1: (1.0+0.6)/2 = 0.8; via b2: (0.4+1.0)/2 = 0.7 → keep 0.8.
        assert!((m.correspondences[0].similarity - 0.8).abs() < 1e-12);
    }

    #[test]
    fn reversed_swaps_everything() {
        let (m1, _) = figure3();
        let r = m1.reversed();
        assert_eq!(r.source_schema, "PO2");
        assert_eq!(r.correspondences[0].source, "PO2.Contact.e-mail");
        assert_eq!(r.reversed(), m1);
    }

    #[test]
    fn oriented_matches_both_directions() {
        let (m1, _) = figure3();
        assert!(m1.oriented("PO1", "PO2").is_some());
        let rev = m1.oriented("PO2", "PO1").unwrap();
        assert_eq!(rev.source_schema, "PO2");
        assert!(m1.oriented("PO1", "PO9").is_none());
    }

    #[test]
    fn filtered_drops_weak_tuples() {
        let (_, m2) = figure3();
        assert_eq!(m2.filtered(0.7).len(), 1);
        assert_eq!(m2.filtered(0.0).len(), 3);
    }
}
