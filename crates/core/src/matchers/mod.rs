//! The matcher library (paper, Section 4, Table 3): simple, hybrid and
//! reuse-oriented matchers behind a single [`Matcher`] trait, organized in
//! an extensible [`MatcherLibrary`].

pub mod context;
pub mod datatype;
pub mod feedback;
pub mod hybrid;
pub mod instances;
pub mod name_engine;
pub mod simple;
pub mod structural;
pub mod synonym;

use crate::cube::SimMatrix;
pub use context::{Auxiliary, MatchContext};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A matcher: computes an `m × n` similarity matrix for the elements
/// (paths) of a match task. "Each matcher determines an intermediate match
/// result consisting of a similarity value between 0 and 1 for each
/// combination of S1 and S2 schema elements" (Section 3).
pub trait Matcher: Send + Sync {
    /// The matcher's library name (e.g. `Trigram`, `NamePath`, `SchemaM`).
    fn name(&self) -> &str;

    /// Computes the similarity matrix for the given match task.
    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix;

    /// Computes the rows `rows` of this matcher's matrix: the result has
    /// `rows.len()` rows (row `i` is the task's row `rows.start + i`) and
    /// the task's full column count. The plan engine uses this to split
    /// one unrestricted (dense) computation into contiguous row shards
    /// executed on parallel threads, then reassembles them with
    /// [`SimMatrix::from_row_shards`] — bit-identical to [`compute`]
    /// because every cell's value depends only on its own pair.
    ///
    /// The default implementation computes the full matrix and slices the
    /// requested rows out — always correct, never profitable (each shard
    /// would redo the whole computation), which is why the engine only
    /// shards matchers that opt in via [`row_shardable`].
    ///
    /// [`compute`]: Matcher::compute
    /// [`row_shardable`]: Matcher::row_shardable
    fn compute_rows(&self, ctx: &MatchContext<'_>, rows: std::ops::Range<usize>) -> SimMatrix {
        self.compute(ctx).row_range(rows)
    }

    /// Whether [`compute_rows`](Matcher::compute_rows) is implemented
    /// natively, doing only the work of the requested rows — the
    /// precondition for the engine's row-sharded execution to be a win.
    /// True for matchers whose per-row work is independent of other rows
    /// given their (memoized) shared tables: the cell-local hybrids
    /// (`Name`, `NamePath`, `TypeName`) and `Leaves` (independent rows
    /// over the shared leaf-similarity table). `Children` stays `false`:
    /// its inner-pair recursion reads other rows' results. The
    /// conservative default is `false` (third-party matchers keep working
    /// unsharded).
    fn row_shardable(&self) -> bool {
        false
    }

    /// Whether this matcher's output depends only on the two schemas and
    /// the auxiliary tables — i.e. recomputing it later against the same
    /// (by content) schemas yields the same matrix. Pure matrices may be
    /// cached across plan executions by a shared
    /// [`EngineCache`](crate::engine::EngineCache); matchers that read
    /// mutable state (the reuse matchers consult the repository, whose
    /// contents change between executions) must return `false`, which
    /// keeps their matrices in the per-execution memo only. Defaults to
    /// `true` — the repository is the only mutable input a stock matcher
    /// has.
    fn pure(&self) -> bool {
        true
    }

    /// Whether each cell `(i, j)` of this matcher's matrix depends only on
    /// the source element `i` and target element `j` (not on other pairs).
    /// Cell-local matchers can honor a search-space restriction
    /// ([`MatchContext::restriction`]) by skipping disallowed pairs; for
    /// all others the engine computes the full matrix and masks the
    /// result, since e.g. structural set similarities need the complete
    /// pair space. The conservative default is `false`.
    fn cell_local(&self) -> bool {
        false
    }

    /// Whether this matcher has a **sparse execution path**: it honors a
    /// search-space restriction even though its cells are not independent,
    /// by computing only the allowed pairs plus whatever cells they
    /// transitively depend on (e.g. the structural matchers' recursive
    /// child-set similarities). The sparse result must be bit-identical to
    /// the masked dense computation; the engine then skips the full
    /// cross-product when a restriction is sparse enough. The conservative
    /// default is `false` (compute full, mask afterwards).
    fn sparse_capable(&self) -> bool {
        false
    }
}

/// The extensible matcher library: "New match algorithms can be included
/// in the library and used in combination with other matchers" (Section 1).
///
/// Matchers are shared (`Arc`) so a library clone is cheap and usable
/// across threads during experiment sweeps.
#[derive(Clone, Default)]
pub struct MatcherLibrary {
    matchers: BTreeMap<String, Arc<dyn Matcher>>,
}

impl MatcherLibrary {
    /// An empty library.
    pub fn new() -> MatcherLibrary {
        MatcherLibrary::default()
    }

    /// The standard library with every matcher of Table 3 under its paper
    /// name, plus the two Schema-matcher variants of the evaluation
    /// (`SchemaM`, `SchemaA`) and the `Fragment` reuse matcher.
    pub fn standard() -> MatcherLibrary {
        use crate::reuse::{FragmentMatcher, SchemaMatcher};
        let mut lib = MatcherLibrary::new();
        // Simple matchers.
        lib.register(Arc::new(simple::SimpleNameMatcher::affix()));
        lib.register(Arc::new(simple::SimpleNameMatcher::ngram(2)));
        lib.register(Arc::new(simple::SimpleNameMatcher::ngram(3)));
        lib.register(Arc::new(simple::SimpleNameMatcher::edit_distance()));
        lib.register(Arc::new(simple::SimpleNameMatcher::soundex()));
        lib.register(Arc::new(simple::SimpleNameMatcher::synonym()));
        lib.register(Arc::new(simple::DataTypeMatcher));
        lib.register(Arc::new(simple::UserFeedbackMatcher));
        // Hybrid matchers. `Children` and `Leaves` share the registered
        // `TypeName` instance as their leaf matcher so a plan execution
        // computes its matrix once for all three (the engine memoizes by
        // instance identity).
        let type_name: Arc<dyn Matcher> = Arc::new(hybrid::TypeNameMatcher::new());
        lib.register(Arc::new(hybrid::NameMatcher::new()));
        lib.register(Arc::new(hybrid::NamePathMatcher::new()));
        lib.register(Arc::clone(&type_name));
        lib.register(Arc::new(structural::ChildrenMatcher::with_leaf_matcher(
            Arc::clone(&type_name),
        )));
        lib.register(Arc::new(structural::LeavesMatcher::with_leaf_matcher(
            type_name,
        )));
        // Instance-level matcher (extension; zero without sample data).
        lib.register(Arc::new(instances::InstanceMatcher::new()));
        // Reuse-oriented matchers.
        lib.register(Arc::new(SchemaMatcher::manual()));
        lib.register(Arc::new(SchemaMatcher::automatic()));
        lib.register(Arc::new(FragmentMatcher::new()));
        lib
    }

    /// Registers (or replaces) a matcher under its own name.
    pub fn register(&mut self, matcher: Arc<dyn Matcher>) {
        self.matchers.insert(matcher.name().to_string(), matcher);
    }

    /// Looks up a matcher by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Matcher>> {
        self.matchers.get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.matchers.keys().map(String::as_str).collect()
    }

    /// Number of registered matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_the_table_3_matchers() {
        let lib = MatcherLibrary::standard();
        for name in [
            "Affix",
            "Digram",
            "Trigram",
            "EditDistance",
            "Soundex",
            "Synonym",
            "DataType",
            "UserFeedback",
            "Name",
            "NamePath",
            "TypeName",
            "Children",
            "Leaves",
            "SchemaM",
            "SchemaA",
            "Fragment",
            "Instance",
        ] {
            assert!(lib.get(name).is_some(), "missing matcher {name}");
        }
        assert_eq!(lib.len(), 17);
    }

    #[test]
    fn registration_replaces_by_name() {
        let mut lib = MatcherLibrary::new();
        lib.register(Arc::new(simple::DataTypeMatcher));
        lib.register(Arc::new(simple::DataTypeMatcher));
        assert_eq!(lib.len(), 1);
        assert!(lib.get("DataType").is_some());
        assert!(lib.get("nope").is_none());
    }
}
