//! Regenerates Figure 9 of the paper: the distribution of all 8,208
//! no-reuse series over average-Overall ranges. "Most series have negative
//! average Overall, indicating poor matchers and/or combination
//! strategies."

use coma_eval::experiment::report::{bin_labels, histogram};
use coma_eval::experiment::{no_reuse_series, Harness};

fn main() {
    eprintln!("building harness (cubes for 10 tasks)…");
    let harness = Harness::new();
    let series = no_reuse_series();
    eprintln!("running {} no-reuse series…", series.len());
    let results = harness.run(&series);

    let bins = histogram(&results);
    println!("Figure 9 — distribution of series in different Overall ranges");
    println!("(#All Series = {}, paper: 8208)\n", results.len());
    let max = bins.iter().copied().max().unwrap_or(1).max(1);
    for (label, count) in bin_labels().iter().zip(bins) {
        let bar = "#".repeat(count * 60 / max);
        println!("{label:>8} | {count:5} {bar}");
    }

    let negative = bins[0];
    let best = results
        .iter()
        .max_by(|a, b| {
            a.average
                .overall
                .partial_cmp(&b.average.overall)
                .expect("no NaN")
        })
        .expect("nonempty");
    let worst = results
        .iter()
        .min_by(|a, b| {
            a.average
                .overall
                .partial_cmp(&b.average.overall)
                .expect("no NaN")
        })
        .expect("nonempty");
    println!("\nseries with negative average Overall: {negative}");
    println!(
        "best series:  {}  avg Overall {:.2} (paper best: 0.73)",
        best.spec.label(),
        best.average.overall
    );
    println!(
        "worst series: {}  avg Overall {:.2} (paper worst: -88.0)",
        worst.spec.label(),
        worst.average.overall
    );
}
