//! Object model for the XML Schema subset COMA imports: global elements,
//! named and anonymous complex types, sequences/choices, attributes, element
//! references, simple types with restriction bases, and annotations.

use crate::error::{Result, XmlError};
use crate::parser::Element;

/// A parsed XML Schema document.
#[derive(Debug, Clone, Default)]
pub struct XsdSchema {
    /// Global (top-level) element declarations.
    pub elements: Vec<ElementDecl>,
    /// Named complex types.
    pub complex_types: Vec<ComplexType>,
    /// Named simple types, mapped to the local name of their base type.
    pub simple_types: Vec<SimpleType>,
}

/// An element declaration (global or local).
#[derive(Debug, Clone, Default)]
pub struct ElementDecl {
    /// Element name; `None` for pure references.
    pub name: Option<String>,
    /// `ref="…"` target (a global element), mutually exclusive with `name`.
    pub reference: Option<String>,
    /// `type="…"` — an XSD built-in (`xsd:string`) or a named type.
    pub type_ref: Option<String>,
    /// Anonymous `<complexType>` nested in the element.
    pub inline_type: Option<ComplexType>,
    /// `<annotation><documentation>` text, if any.
    pub annotation: Option<String>,
}

/// A complex type: its (flattened) element content and its attributes.
///
/// Compositor structure (`sequence` vs `choice` vs `all`) does not affect
/// COMA's containment graph, so content is flattened in source order.
#[derive(Debug, Clone, Default)]
pub struct ComplexType {
    /// Type name; `None` for anonymous types.
    pub name: Option<String>,
    /// Child element declarations in source order.
    pub elements: Vec<ElementDecl>,
    /// Attribute declarations in source order.
    pub attributes: Vec<AttributeDecl>,
    /// `<annotation><documentation>` text, if any.
    pub annotation: Option<String>,
}

/// An attribute declaration.
#[derive(Debug, Clone, Default)]
pub struct AttributeDecl {
    /// Attribute name.
    pub name: String,
    /// `type="…"` — an XSD built-in or named simple type.
    pub type_ref: Option<String>,
    /// `<annotation><documentation>` text, if any.
    pub annotation: Option<String>,
}

/// A named simple type (restriction of a base type).
#[derive(Debug, Clone)]
pub struct SimpleType {
    /// Type name.
    pub name: String,
    /// Local name of the restriction base (e.g. `string`).
    pub base: Option<String>,
}

/// Parses an already-parsed `<schema>` document element into the model.
pub fn parse_xsd(root: &Element) -> Result<XsdSchema> {
    if root.local_name() != "schema" {
        return Err(XmlError::xsd(format!(
            "expected a <schema> document element, found <{}>",
            root.name
        )));
    }
    let mut schema = XsdSchema::default();
    for child in root.child_elements() {
        match child.local_name() {
            "element" => schema.elements.push(parse_element_decl(child)?),
            "complexType" => {
                let ct = parse_complex_type(child)?;
                if ct.name.is_none() {
                    return Err(XmlError::xsd("top-level complexType must be named"));
                }
                schema.complex_types.push(ct);
            }
            "simpleType" => {
                if let Some(st) = parse_simple_type(child) {
                    schema.simple_types.push(st);
                }
            }
            // annotation, import, include, attributeGroup, … are ignored.
            _ => {}
        }
    }
    Ok(schema)
}

fn parse_element_decl(el: &Element) -> Result<ElementDecl> {
    let mut decl = ElementDecl {
        name: el.attr("name").map(str::to_string),
        reference: el.attr("ref").map(str::to_string),
        type_ref: el.attr("type").map(str::to_string),
        ..ElementDecl::default()
    };
    if decl.name.is_none() && decl.reference.is_none() {
        return Err(XmlError::xsd("element needs a name or a ref"));
    }
    for child in el.child_elements() {
        match child.local_name() {
            "complexType" => decl.inline_type = Some(parse_complex_type(child)?),
            "simpleType"
                // Anonymous simple type: adopt its restriction base as the
                // effective type.
                if decl.type_ref.is_none() => {
                    decl.type_ref = restriction_base(child);
                }
            "annotation" => decl.annotation = documentation(child),
            _ => {}
        }
    }
    Ok(decl)
}

fn parse_complex_type(el: &Element) -> Result<ComplexType> {
    let mut ct = ComplexType {
        name: el.attr("name").map(str::to_string),
        ..ComplexType::default()
    };
    collect_content(el, &mut ct)?;
    Ok(ct)
}

/// Recursively collects element/attribute declarations from compositors.
fn collect_content(el: &Element, ct: &mut ComplexType) -> Result<()> {
    for child in el.child_elements() {
        match child.local_name() {
            "sequence" | "choice" | "all" | "group" => collect_content(child, ct)?,
            "element" => ct.elements.push(parse_element_decl(child)?),
            "attribute" => {
                let name = child
                    .attr("name")
                    .ok_or_else(|| XmlError::xsd("attribute needs a name"))?;
                ct.attributes.push(AttributeDecl {
                    name: name.to_string(),
                    type_ref: child.attr("type").map(str::to_string),
                    annotation: child
                        .first_child_named("annotation")
                        .and_then(documentation),
                });
            }
            "annotation" => ct.annotation = documentation(child),
            "complexContent" | "simpleContent" => {
                // extension/restriction: inherit by flattening the body.
                for inner in child.child_elements() {
                    if matches!(inner.local_name(), "extension" | "restriction") {
                        collect_content(inner, ct)?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn parse_simple_type(el: &Element) -> Option<SimpleType> {
    Some(SimpleType {
        name: el.attr("name")?.to_string(),
        base: restriction_base(el),
    })
}

fn restriction_base(el: &Element) -> Option<String> {
    el.first_child_named("restriction")
        .and_then(|r| r.attr("base"))
        .map(str::to_string)
}

fn documentation(annotation: &Element) -> Option<String> {
    let text = annotation
        .children_named("documentation")
        .map(|d| d.text())
        .collect::<Vec<_>>()
        .join(" ");
    let text = text.trim().to_string();
    (!text.is_empty()).then_some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    /// The PO2 schema from Figure 1 of the paper, verbatim (modulo quoting).
    pub const PO2_XSD: &str = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

    #[test]
    fn parses_paper_po2() {
        let doc = parse_document(PO2_XSD).unwrap();
        let xsd = parse_xsd(&doc).unwrap();
        assert_eq!(xsd.elements.len(), 0);
        assert_eq!(xsd.complex_types.len(), 2);
        let po2 = &xsd.complex_types[0];
        assert_eq!(po2.name.as_deref(), Some("PO2"));
        assert_eq!(po2.elements.len(), 2);
        assert_eq!(po2.elements[0].name.as_deref(), Some("DeliverTo"));
        assert_eq!(po2.elements[0].type_ref.as_deref(), Some("Address"));
    }

    #[test]
    fn parses_annotations_and_attributes() {
        let doc = parse_document(
            r#"<schema>
                 <element name="order">
                   <annotation><documentation>a purchase order</documentation></annotation>
                   <complexType>
                     <sequence><element name="id" type="string"/></sequence>
                     <attribute name="version" type="string"/>
                   </complexType>
                 </element>
               </schema>"#,
        )
        .unwrap();
        let xsd = parse_xsd(&doc).unwrap();
        let order = &xsd.elements[0];
        assert_eq!(order.annotation.as_deref(), Some("a purchase order"));
        let ct = order.inline_type.as_ref().unwrap();
        assert_eq!(ct.elements.len(), 1);
        assert_eq!(ct.attributes.len(), 1);
        assert_eq!(ct.attributes[0].name, "version");
    }

    #[test]
    fn parses_simple_types() {
        let doc = parse_document(
            r#"<schema>
                 <simpleType name="zipType"><restriction base="xsd:string"/></simpleType>
                 <element name="zip" type="zipType"/>
               </schema>"#,
        )
        .unwrap();
        let xsd = parse_xsd(&doc).unwrap();
        assert_eq!(xsd.simple_types.len(), 1);
        assert_eq!(xsd.simple_types[0].base.as_deref(), Some("xsd:string"));
    }

    #[test]
    fn rejects_non_schema_root() {
        let doc = parse_document("<notaschema/>").unwrap();
        assert!(parse_xsd(&doc).is_err());
    }

    #[test]
    fn rejects_anonymous_toplevel_type() {
        let doc = parse_document("<schema><complexType/></schema>").unwrap();
        assert!(parse_xsd(&doc).is_err());
    }
}
