//! Regenerates Table 6 of the paper: the tested matchers and combination
//! strategies and the resulting series arithmetic (8,208 no-reuse + 4,104
//! reuse = 12,312 series).

use coma_eval::experiment::{
    aggregations, directions, no_reuse_matcher_sets, no_reuse_series, reuse_matcher_sets,
    reuse_series, selections,
};

fn main() {
    println!("Table 6 — tested matchers and combination strategies\n");
    println!(
        "No-reuse matcher sets ({}): 5 single + 10 pair-wise + All",
        no_reuse_matcher_sets().len()
    );
    for set in no_reuse_matcher_sets() {
        println!("  - {}", set.join("+"));
    }
    println!(
        "\nReuse matcher sets ({}): 2 single + 10 pair-wise + All+SchemaM/A",
        reuse_matcher_sets().len()
    );
    for set in reuse_matcher_sets() {
        println!("  - {}", set.join("+"));
    }
    println!(
        "\nAggregation ({}): Max, Average, Min",
        aggregations().len()
    );
    println!(
        "Direction   ({}): LargeSmall, SmallLarge, Both",
        directions().len()
    );
    let sels = selections();
    println!("Selection   ({}):", sels.len());
    for s in &sels {
        print!(" {s}");
    }
    println!("\nCombined sim (2): Average, Dice (no-reuse); Average (reuse)");

    let no_reuse = no_reuse_series().len();
    let reuse = reuse_series().len();
    println!("\nSeries arithmetic:");
    println!("  no-reuse series = {no_reuse}   (paper: 8208)");
    println!("  reuse series    = {reuse}   (paper: 4104)");
    println!("  total           = {}  (paper: 12312)", no_reuse + reuse);
    assert_eq!(no_reuse, 8208);
    assert_eq!(reuse, 4104);
}
