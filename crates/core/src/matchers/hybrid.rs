//! The hybrid element-level matchers of Section 4.2: `Name`, `NamePath`
//! and `TypeName`. (The hybrid structural matchers `Children` and `Leaves`
//! live in [`super::structural`].)

use crate::cube::{SimMatrix, SparseBuilder};
use crate::matchers::context::MatchContext;
use crate::matchers::name_engine::NameEngine;
use crate::matchers::Matcher;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Deduplicates the per-row/column keys of one schema side: returns the
/// key id of every element plus the distinct keys in first-use order.
/// Real schemas repeat element names heavily across paths (a 1000-path
/// schema often has only a few hundred distinct names), so `Name` and
/// `TypeName` compute their similarity tables over distinct keys and fan
/// the values out, instead of paying a cache lookup per matrix cell.
fn distinct_keys<K: Eq + Hash + Clone>(keys: impl Iterator<Item = K>) -> (Vec<usize>, Vec<K>) {
    let mut ids = Vec::new();
    let mut order: Vec<K> = Vec::new();
    let mut seen: HashMap<K, usize> = HashMap::new();
    for key in keys {
        let id = *seen.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            order.len() - 1
        });
        ids.push(id);
    }
    (ids, order)
}

/// Per-set token ids plus the distinct tokens in first-use order.
fn index_tokens(sets: &[Arc<Vec<String>>]) -> (Vec<Vec<usize>>, Vec<&str>) {
    let mut names: Vec<&str> = Vec::new();
    let mut map: HashMap<&str, usize> = HashMap::new();
    let per_set = sets
        .iter()
        .map(|ts| {
            ts.iter()
                .map(|t| {
                    *map.entry(t.as_str()).or_insert_with(|| {
                        names.push(t.as_str());
                        names.len() - 1
                    })
                })
                .collect()
        })
        .collect();
    (per_set, names)
}

/// The row-major `src_names × tgt_names` table of name similarities,
/// computed in two deduplicated levels: token-pair sims once per distinct
/// token pair (schemas draw names from a bounded vocabulary, so this is
/// small and independent of schema size), then one steps-2+3 combination
/// per distinct name pair. The combination is cheap enough (an
/// allocation-free `Both`/`Max1` scan over table lookups) that routing it
/// through the shared name-pair cache would cost more in key allocations
/// and hashing than it saves — the table is computed directly.
fn name_sim_table(
    ctx: &MatchContext<'_>,
    engine: &NameEngine,
    src_names: &[&str],
    tgt_names: &[&str],
) -> Vec<f64> {
    let src_tokens: Vec<Arc<Vec<String>>> =
        src_names.iter().map(|a| ctx.token_set(engine, a)).collect();
    let tgt_tokens: Vec<Arc<Vec<String>>> =
        tgt_names.iter().map(|b| ctx.token_set(engine, b)).collect();
    let (src_name_toks, src_tok_names) = index_tokens(&src_tokens);
    let (tgt_name_toks, tgt_tok_names) = index_tokens(&tgt_tokens);

    let tt = tgt_tok_names.len();
    let mut tok_table = vec![0.0; src_tok_names.len() * tt];
    for (a, &ta) in src_tok_names.iter().enumerate() {
        for (b, &tb) in tgt_tok_names.iter().enumerate() {
            tok_table[a * tt + b] = engine.token_pair_similarity(ta, tb, ctx.aux);
        }
    }

    let mut table = vec![0.0; src_names.len() * tgt_names.len()];
    for (a_id, ids1) in src_name_toks.iter().enumerate() {
        for (b_id, ids2) in tgt_name_toks.iter().enumerate() {
            // Clamped like the restricted path's `SimMatrix::set`, so the
            // sparse==dense bit-identity holds even for exotic engines.
            let mut sims = SimMatrix::new(ids1.len(), ids2.len());
            for (i, &ta) in ids1.iter().enumerate() {
                let row = sims.row_mut(i);
                for (dst, &tb) in row.iter_mut().zip(ids2) {
                    *dst = tok_table[ta * tt + tb];
                }
            }
            table[a_id * tgt_names.len() + b_id] = engine
                .combine_token_sims(&src_tokens[a_id], &tgt_tokens[b_id], &sims)
                .clamp(0.0, 1.0);
        }
    }
    table
}

/// The hybrid `Name` matcher: tokenization, abbreviation expansion and a
/// combination of simple matchers over the token sets (Table 4 defaults:
/// Trigram + Synonym, Max aggregation, Both/Max1, Average).
#[derive(Debug, Clone, Default)]
pub struct NameMatcher {
    /// The token-set engine (constituents + combination strategy).
    pub engine: NameEngine,
}

impl NameMatcher {
    /// `Name` with the paper's default engine.
    pub fn new() -> NameMatcher {
        NameMatcher::default()
    }

    /// `Name` with a custom engine.
    pub fn with_engine(engine: NameEngine) -> NameMatcher {
        NameMatcher { engine }
    }
}

impl Matcher for NameMatcher {
    fn name(&self) -> &str {
        "Name"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut cache = ctx.name_sim_cache(&self.engine);
        if let Some(mask) = ctx.restriction {
            // Sparse: only the allowed cells, straight through the cache,
            // built directly into CSR storage (never an m × n buffer).
            let mut b = SparseBuilder::new(ctx.rows(), ctx.cols());
            for i in 0..ctx.rows() {
                let a = ctx.source_name(i);
                for j in mask.allowed_in_row(i) {
                    let t = ctx.target_name(j);
                    let sim = cache.get_or_compute(a, t, || self.engine.similarity(a, t, ctx.aux));
                    b.push(i, j, sim);
                }
            }
            b.finish()
        } else {
            // Dense: one similarity per distinct name pair, fanned out to
            // every cell that shares it.
            self.compute_rows(ctx, 0..ctx.rows())
        }
    }

    /// A contiguous block of rows of the dense matrix, doing only the
    /// tokenization and similarity-table work those rows need. Each cell
    /// depends only on its own (name, name) pair, so the block is
    /// bit-identical to the same rows of [`Matcher::compute`].
    fn compute_rows(&self, ctx: &MatchContext<'_>, rows: std::ops::Range<usize>) -> SimMatrix {
        if ctx.restriction.is_some() {
            // The engine only shards unrestricted computes; stay correct
            // for any other caller by slicing the restricted result.
            return self.compute(ctx).row_range(rows);
        }
        let mut out = SimMatrix::new(rows.len(), ctx.cols());
        let (src_ids, src_names) = distinct_keys(rows.clone().map(|i| ctx.source_name(i)));
        let (tgt_ids, tgt_names) = distinct_keys((0..ctx.cols()).map(|j| ctx.target_name(j)));
        let table = name_sim_table(ctx, &self.engine, &src_names, &tgt_names);
        for (i, &a_id) in src_ids.iter().enumerate() {
            let base = a_id * tgt_names.len();
            let row = out.row_mut(i);
            for (dst, &b_id) in row.iter_mut().zip(&tgt_ids) {
                *dst = table[base + b_id];
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }

    fn row_shardable(&self) -> bool {
        true
    }
}

/// The hybrid `NamePath` matcher: concatenates all element names along the
/// path into a long name and applies `Name` to it. "Considering the
/// complete name path of an element provides additional tokens […] it is
/// possible to distinguish between different contexts of the same element,
/// e.g. ShipTo.Street and BillTo.Street" (Section 4.2).
#[derive(Debug, Clone, Default)]
pub struct NamePathMatcher {
    /// The token-set engine applied to the concatenated path names.
    pub engine: NameEngine,
}

impl NamePathMatcher {
    /// `NamePath` with the paper's default engine.
    pub fn new() -> NamePathMatcher {
        NamePathMatcher::default()
    }

    /// `NamePath` with a custom engine.
    pub fn with_engine(engine: NameEngine) -> NamePathMatcher {
        NamePathMatcher { engine }
    }
}

impl Matcher for NamePathMatcher {
    fn name(&self) -> &str {
        "NamePath"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let Some(mask) = ctx.restriction else {
            return self.compute_rows(ctx, 0..ctx.rows());
        };
        // Pre-compute the token set of every path's long name once (shared
        // through the memo when one is attached).
        let src_tokens: Vec<(String, Arc<Vec<String>>)> = (0..ctx.rows())
            .map(|i| {
                let long = ctx
                    .source_paths
                    .join_names(ctx.source, ctx.source_elem(i), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let tgt_tokens: Vec<(String, Arc<Vec<String>>)> = (0..ctx.cols())
            .map(|j| {
                let long = ctx
                    .target_paths
                    .join_names(ctx.target, ctx.target_elem(j), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let mut cache = ctx.name_sim_cache(&self.engine);
        // Sparse: allowed cells only, straight into CSR storage. Long
        // path names never repeat, but their *tokens* come from a
        // bounded vocabulary — so token-pair similarities are computed
        // once per distinct token pair (like the dense `Name` path)
        // and each allowed cell only pays the steps-2+3 combination
        // over table lookups. Value-identical to
        // `token_set_similarity` per cell: same token-pair values,
        // same combination.
        let src_sets: Vec<Arc<Vec<String>>> =
            src_tokens.iter().map(|(_, t)| Arc::clone(t)).collect();
        let tgt_sets: Vec<Arc<Vec<String>>> =
            tgt_tokens.iter().map(|(_, t)| Arc::clone(t)).collect();
        let (src_name_toks, src_tok_names) = index_tokens(&src_sets);
        let (tgt_name_toks, tgt_tok_names) = index_tokens(&tgt_sets);
        let tt = tgt_tok_names.len();
        let mut tok_table = vec![0.0; src_tok_names.len() * tt];
        for (a, &ta) in src_tok_names.iter().enumerate() {
            for (b, &tb) in tgt_tok_names.iter().enumerate() {
                tok_table[a * tt + b] = self.engine.token_pair_similarity(ta, tb, ctx.aux);
            }
        }
        let mut builder = SparseBuilder::new(ctx.rows(), ctx.cols());
        for (i, (a, t1)) in src_tokens.iter().enumerate() {
            let ids1 = &src_name_toks[i];
            for j in mask.allowed_in_row(i) {
                let (b, t2) = &tgt_tokens[j];
                let ids2 = &tgt_name_toks[j];
                let sim = cache.get_or_compute(a, b, || {
                    let mut sims = SimMatrix::new(ids1.len(), ids2.len());
                    for (x, &ta) in ids1.iter().enumerate() {
                        let row = sims.row_mut(x);
                        for (dst, &tb) in row.iter_mut().zip(ids2) {
                            *dst = tok_table[ta * tt + tb];
                        }
                    }
                    self.engine.combine_token_sims(t1, t2, &sims)
                });
                builder.push(i, j, sim);
            }
        }
        builder.finish()
    }

    /// A contiguous block of rows of the dense matrix: the long names and
    /// token sets of only those source paths, against every target path.
    /// Each cell's similarity is a pure function of its two long names
    /// (the shared name-pair cache merely avoids recomputation), so the
    /// block is bit-identical to the same rows of [`Matcher::compute`].
    fn compute_rows(&self, ctx: &MatchContext<'_>, rows: std::ops::Range<usize>) -> SimMatrix {
        if ctx.restriction.is_some() {
            // The engine only shards unrestricted computes; stay correct
            // for any other caller by slicing the restricted result.
            return self.compute(ctx).row_range(rows);
        }
        let src_tokens: Vec<(String, Arc<Vec<String>>)> = rows
            .clone()
            .map(|i| {
                let long = ctx
                    .source_paths
                    .join_names(ctx.source, ctx.source_elem(i), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let tgt_tokens: Vec<(String, Arc<Vec<String>>)> = (0..ctx.cols())
            .map(|j| {
                let long = ctx
                    .target_paths
                    .join_names(ctx.target, ctx.target_elem(j), " ");
                let tokens = ctx.token_set(&self.engine, &long);
                (long, tokens)
            })
            .collect();
        let mut cache = ctx.name_sim_cache(&self.engine);
        let mut out = SimMatrix::new(rows.len(), ctx.cols());
        for (i, (a, t1)) in src_tokens.iter().enumerate() {
            for (j, (b, t2)) in tgt_tokens.iter().enumerate() {
                let sim = cache
                    .get_or_compute(a, b, || self.engine.token_set_similarity(t1, t2, ctx.aux));
                out.set(i, j, sim);
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }

    fn row_shardable(&self) -> bool {
        true
    }
}

/// The hybrid `TypeName` matcher: a weighted combination of `DataType` and
/// `Name` similarity. "The default weights of the name and data type
/// similarity, 0.7 and 0.3, respectively, permit to match attributes with
/// similar names but different data types" (Section 6.4, Table 4).
#[derive(Debug, Clone)]
pub struct TypeNameMatcher {
    /// The name engine used for the `Name` constituent.
    pub engine: NameEngine,
    /// Weight of the name similarity (default 0.7).
    pub name_weight: f64,
    /// Weight of the data-type similarity (default 0.3).
    pub type_weight: f64,
}

impl TypeNameMatcher {
    /// `TypeName` with the paper's defaults.
    pub fn new() -> TypeNameMatcher {
        TypeNameMatcher::default()
    }

    /// `TypeName` with custom weights (normalized internally).
    pub fn with_weights(name_weight: f64, type_weight: f64) -> TypeNameMatcher {
        assert!(name_weight >= 0.0 && type_weight >= 0.0 && name_weight + type_weight > 0.0);
        TypeNameMatcher {
            engine: NameEngine::paper_default(),
            name_weight,
            type_weight,
        }
    }
}

impl Default for TypeNameMatcher {
    fn default() -> Self {
        TypeNameMatcher {
            engine: NameEngine::paper_default(),
            name_weight: 0.7,
            type_weight: 0.3,
        }
    }
}

impl Matcher for TypeNameMatcher {
    fn name(&self) -> &str {
        "TypeName"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let total = self.name_weight + self.type_weight;
        let mut cache = ctx.name_sim_cache(&self.engine);
        if let Some(mask) = ctx.restriction {
            // Sparse: only the allowed cells, straight through the cache,
            // built directly into CSR storage.
            let mut b = SparseBuilder::new(ctx.rows(), ctx.cols());
            for i in 0..ctx.rows() {
                let a_name = ctx.source_name(i);
                let a_type = ctx
                    .source
                    .node(ctx.source_paths.node_of(ctx.source_elem(i)))
                    .datatype;
                for j in mask.allowed_in_row(i) {
                    let b_name = ctx.target_name(j);
                    let b_type = ctx
                        .target
                        .node(ctx.target_paths.node_of(ctx.target_elem(j)))
                        .datatype;
                    let name_sim = cache
                        .get_or_compute(a_name, b_name, || {
                            self.engine.similarity(a_name, b_name, ctx.aux)
                        })
                        .clamp(0.0, 1.0);
                    let type_sim = ctx.aux.type_compat.similarity_opt(a_type, b_type);
                    b.push(
                        i,
                        j,
                        (self.name_weight * name_sim + self.type_weight * type_sim) / total,
                    );
                }
            }
            b.finish()
        } else {
            self.compute_rows(ctx, 0..ctx.rows())
        }
    }

    /// A contiguous block of rows of the dense matrix, deduplicating
    /// (name, datatype) profiles over only those rows. Each cell depends
    /// only on its own pair of profiles, so the block is bit-identical to
    /// the same rows of [`Matcher::compute`].
    fn compute_rows(&self, ctx: &MatchContext<'_>, rows: std::ops::Range<usize>) -> SimMatrix {
        if ctx.restriction.is_some() {
            // The engine only shards unrestricted computes; stay correct
            // for any other caller by slicing the restricted result.
            return self.compute(ctx).row_range(rows);
        }
        let total = self.name_weight + self.type_weight;
        let mut out = SimMatrix::new(rows.len(), ctx.cols());
        // Dense: one weighted similarity per distinct (name, datatype)
        // profile pair, fanned out to every cell that shares it.
        let (src_ids, src_profiles) = distinct_keys(rows.clone().map(|i| {
            let datatype = ctx
                .source
                .node(ctx.source_paths.node_of(ctx.source_elem(i)))
                .datatype;
            (ctx.source_name(i), datatype)
        }));
        let (tgt_ids, tgt_profiles) = distinct_keys((0..ctx.cols()).map(|j| {
            let datatype = ctx
                .target
                .node(ctx.target_paths.node_of(ctx.target_elem(j)))
                .datatype;
            (ctx.target_name(j), datatype)
        }));
        // Name similarities deduplicate one level further (profiles
        // with different datatypes share their name's value).
        let (src_name_ids, src_names) = distinct_keys(src_profiles.iter().map(|&(name, _)| name));
        let (tgt_name_ids, tgt_names) = distinct_keys(tgt_profiles.iter().map(|&(name, _)| name));
        let names = name_sim_table(ctx, &self.engine, &src_names, &tgt_names);
        let mut table = vec![0.0; src_profiles.len() * tgt_profiles.len()];
        for (a_id, &(_, a_type)) in src_profiles.iter().enumerate() {
            for (b_id, &(_, b_type)) in tgt_profiles.iter().enumerate() {
                let name_sim = names[src_name_ids[a_id] * tgt_names.len() + tgt_name_ids[b_id]];
                let type_sim = ctx.aux.type_compat.similarity_opt(a_type, b_type);
                table[a_id * tgt_profiles.len() + b_id] =
                    ((self.name_weight * name_sim + self.type_weight * type_sim) / total)
                        .clamp(0.0, 1.0);
            }
        }
        for (i, &a_id) in src_ids.iter().enumerate() {
            let base = a_id * tgt_profiles.len();
            let row = out.row_mut(i);
            for (dst, &b_id) in row.iter_mut().zip(&tgt_ids) {
                *dst = table[base + b_id];
            }
        }
        out
    }

    fn cell_local(&self) -> bool {
        true
    }

    fn row_shardable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use crate::matchers::synonym::SynonymTable;
    use coma_graph::{PathSet, Schema};

    fn po1() -> Schema {
        coma_sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (poNo INT, shipToStreet VARCHAR(200), shipToCity VARCHAR(200));
             CREATE TABLE PO1.Customer (custNo INT, custCity VARCHAR(200));",
            "PO1",
        )
        .unwrap()
    }

    fn po2() -> Schema {
        coma_xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap()
    }

    fn aux() -> Auxiliary {
        let mut a = Auxiliary::standard();
        a.synonyms = SynonymTable::purchase_order();
        a
    }

    fn sim_of(
        matcher: &dyn Matcher,
        s1: &Schema,
        s2: &Schema,
        aux: &Auxiliary,
        src: &str,
        tgt: &str,
    ) -> f64 {
        let p1 = PathSet::new(s1).unwrap();
        let p2 = PathSet::new(s2).unwrap();
        let ctx = MatchContext::new(s1, s2, &p1, &p2, aux);
        let m = matcher.compute(&ctx);
        let i = p1.find_by_full_name(s1, src).unwrap().index();
        let j = p2.find_by_full_name(s2, tgt).unwrap().index();
        m.get(i, j)
    }

    /// The Table 1 scenario: TypeName and NamePath similarities of three
    /// PO1 elements against PO2.DeliverTo.Address.City. We reproduce the
    /// *ordering* structure, not the exact decimals (the paper's matcher
    /// internals differ in unspecified details).
    #[test]
    fn table_1_orderings_hold() {
        let (s1, s2, aux) = (po1(), po2(), aux());
        let tn = TypeNameMatcher::new();
        let np = NamePathMatcher::new();
        let city = "PO2.DeliverTo.Address.City";

        // TypeName: custCity > shipToCity > shipToStreet (Table 1).
        let tn_ship_city = sim_of(&tn, &s1, &s2, &aux, "PO1.ShipTo.shipToCity", city);
        let tn_cust_city = sim_of(&tn, &s1, &s2, &aux, "PO1.Customer.custCity", city);
        let tn_ship_street = sim_of(&tn, &s1, &s2, &aux, "PO1.ShipTo.shipToStreet", city);
        assert!(
            tn_cust_city > tn_ship_street,
            "{tn_cust_city} vs {tn_ship_street}"
        );
        assert!(
            tn_ship_city > tn_ship_street,
            "{tn_ship_city} vs {tn_ship_street}"
        );

        // NamePath: shipToCity > shipToStreet > custCity (Table 1): the
        // path context (ShipTo ≈ DeliverTo via synonym) outweighs.
        let np_ship_city = sim_of(&np, &s1, &s2, &aux, "PO1.ShipTo.shipToCity", city);
        let np_ship_street = sim_of(&np, &s1, &s2, &aux, "PO1.ShipTo.shipToStreet", city);
        let np_cust_city = sim_of(&np, &s1, &s2, &aux, "PO1.Customer.custCity", city);
        assert!(
            np_ship_city > np_ship_street,
            "{np_ship_city} vs {np_ship_street}"
        );
        assert!(
            np_ship_city > np_cust_city,
            "{np_ship_city} vs {np_cust_city}"
        );
    }

    #[test]
    fn namepath_distinguishes_contexts_of_shared_elements() {
        // ShipTo.Street should be closer to DeliverTo.Address.Street than
        // to BillTo.Address.Street.
        let (s1, s2, aux) = (po1(), po2(), aux());
        let np = NamePathMatcher::new();
        let deliver = sim_of(
            &np,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToStreet",
            "PO2.DeliverTo.Address.Street",
        );
        let bill = sim_of(
            &np,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToStreet",
            "PO2.BillTo.Address.Street",
        );
        assert!(deliver > bill, "{deliver} vs {bill}");
    }

    #[test]
    fn name_matcher_ignores_context() {
        // Name sees only the last element name, so the two City paths are
        // indistinguishable — the instability Section 7.3 reports.
        let (s1, s2, aux) = (po1(), po2(), aux());
        let nm = NameMatcher::new();
        let a = sim_of(
            &nm,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToCity",
            "PO2.DeliverTo.Address.City",
        );
        let b = sim_of(
            &nm,
            &s1,
            &s2,
            &aux,
            "PO1.ShipTo.shipToCity",
            "PO2.BillTo.Address.City",
        );
        assert_eq!(a, b);
        assert!(a > 0.4);
    }

    #[test]
    fn typename_prefers_compatible_datatypes_on_name_ties() {
        // Section 6.4: "When several attributes exhibit about the same name
        // similarity, candidates with higher data type compatibility are
        // preferred."
        let s1 = coma_sql::import_ddl("CREATE TABLE T.a (amount DECIMAL(10,2));", "S1").unwrap();
        let s2 = coma_sql::import_ddl(
            "CREATE TABLE T.b (amount DECIMAL(12,2), amounts VARCHAR(99));",
            "S2",
        )
        .unwrap();
        let aux = Auxiliary::standard();
        let tn = TypeNameMatcher::new();
        let same_type = sim_of(&tn, &s1, &s2, &aux, "S1.a.amount", "S2.b.amount");
        let diff_type = sim_of(&tn, &s1, &s2, &aux, "S1.a.amount", "S2.b.amounts");
        assert!(same_type > diff_type, "{same_type} vs {diff_type}");
    }

    #[test]
    #[should_panic]
    fn typename_rejects_zero_weights() {
        let _ = TypeNameMatcher::with_weights(0.0, 0.0);
    }
}
