//! Static plan analysis: predict what [`PlanEngine`](super::PlanEngine)
//! will do with a [`MatchPlan`] — storage modes, fusion, shard counts, a
//! peak-allocation upper bound — *without executing anything*.
//!
//! The [`PlanAnalyzer`] walks the operator tree against an
//! [`EngineConfig`] and per-task [`TaskStats`] (side sizes, leaf counts,
//! vocabulary statistics, repository pivot availability, pinned
//! feedback), mirroring the engine's own decision rules:
//!
//! * **storage** — `sparse && density <= sparse_density_cutoff`, applied
//!   to the density *bounds* the selection/pruning operators imply
//!   (`TopK(k, Row)` keeps at most `k·m` pairs, a capped
//!   `CandidateIndex` at most `cap·(m+n)`, …);
//! * **fusion** — the exact preconditions of the engine's `try_fuse`
//!   (pruning `Filter`/`TopK` over an unrestricted, row-shardable
//!   `Matchers` leaf whose own selection prunes, sparse path on, no
//!   feedback pinned);
//! * **shards** — `EngineConfig::shards` / `min_shard_rows` /
//!   `available_parallelism`, as the engine sizes them;
//! * **peak allocation** — the 8·m·n dense model per materialized
//!   matrix, a CSR estimate under masks, the structural matchers'
//!   shared full-pair leaf table plus leaves-under expansions (built
//!   regardless of mask — `structural_scratch` below), and the fused
//!   pipeline's `threads × shard slice` in-flight model capped by
//!   `fuse_budget_bytes`.
//!
//! # The facts lattice
//!
//! Some facts are *not* statically decidable: a `Seq` refine stage is
//! restricted by whatever the filter stage selected, and the rounds of an
//! `Iterate` flip between unrestricted (round 1) and restricted (rounds
//! 2+) execution of the same sub-plan. Predictions are therefore
//! three-valued ([`Tri`]): `Yes` and `No` are commitments the executed
//! [`StageOutcome`](super::StageOutcome)s must honor (this is what the
//! perf gate and the property tests check), `Maybe` is an honest "depends
//! on runtime densities". Merging the predictions of two nodes that share
//! a stage label joins them in this lattice (`Yes ⊔ No = Maybe`).
//!
//! # Soundness
//!
//! The peak bound is a *sum over materialized nodes plus shared
//! preparation*: every allocation the engine makes while executing a
//! node (matcher matrices, memoized copies, aggregates, masks, selection
//! scratch, result clones) is charged to that node's bound, tokenization
//! and the distinct-token/name similarity tables to the plan-level
//! preparation term. Live allocations at any instant are a subset of
//! "everything any node may hold plus preparation", so the sum bounds
//! the high-water mark. Where a fact is `Maybe`, the bound takes the
//! *maximum* over the possible execution paths. The model is generous by
//! design (constants absorb allocator slack and `Vec` growth); its
//! accuracy — measured peak over predicted bound — is recorded by
//! `perf_smoke` so looseness is visible, while the gate only requires
//! measured ≤ predicted.
//!
//! ```
//! use coma_core::{EngineConfig, MatchPlan, MatcherLibrary, PlanAnalyzer, TaskStats, TopKPer, Tri};
//! let library = MatcherLibrary::standard();
//! let plan = MatchPlan::matchers(["Name"]).top_k(2, TopKPer::Both).unwrap();
//! let analyzer = PlanAnalyzer::new(&library, EngineConfig::default());
//! let analysis = analyzer.analyze(&plan, &TaskStats::default());
//! assert!(!analysis.has_errors());
//! assert_eq!(analysis.fused_prediction(&plan.label()), Tri::Yes);
//! ```

use super::cache::EngineCache;
use super::index::VocabIndex;
use super::memo::matcher_identity;
use super::plan::{MatchPlan, TopKPer};
use super::EngineConfig;
use crate::combine::{Direction, Selection};
use crate::matchers::context::MatchContext;
use crate::matchers::{Matcher, MatcherLibrary};
use std::fmt;
use std::sync::Arc;

/// How severe a [`PlanDiagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational fact worth surfacing (cache warmth, disabled paths).
    Note,
    /// Statically-detectable performance hazard; the plan still executes.
    Warn,
    /// The plan cannot execute (shape defects, unknown matchers). The
    /// server rejects plans with `Error` diagnostics before execution.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warn => f.write_str("warn"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One structured finding of the analyzer, pinned to a plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiagnostic {
    /// Error / Warn / Note.
    pub severity: Severity,
    /// Stable machine-readable code (`E_*` / `W_*` / `N_*`).
    pub code: String,
    /// Node path in the tree, e.g. `Seq[1].TopK` (see
    /// [`PlanError::path`](super::PlanError::path)).
    pub node_path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at `{}`: {}",
            self.severity, self.code, self.node_path, self.message
        )
    }
}

/// A three-valued static prediction: `Yes`/`No` are commitments the
/// execution must honor, `Maybe` means the fact depends on runtime
/// densities the analyzer cannot know (module docs: the facts lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// The fact definitely holds.
    Yes,
    /// The fact definitely does not hold.
    No,
    /// Statically undecidable; either outcome is sound.
    Maybe,
}

impl Tri {
    /// Whether an executed boolean is consistent with this prediction —
    /// the soundness check the perf gate and property tests apply.
    pub fn agrees_with(self, actual: bool) -> bool {
        match self {
            Tri::Yes => actual,
            Tri::No => !actual,
            Tri::Maybe => true,
        }
    }

    /// Lattice join: equal values keep, conflicting ones become `Maybe`.
    pub fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Maybe
        }
    }

    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::Yes
        } else {
            Tri::No
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tri::Yes => f.write_str("yes"),
            Tri::No => f.write_str("no"),
            Tri::Maybe => f.write_str("maybe"),
        }
    }
}

/// Per-task schema statistics the analyzer predicts against: the match
/// object sizes, vocabulary statistics (the same tokenization the
/// [`VocabIndex`] applies), repository pivot availability, and pinned
/// feedback. Build one with [`TaskStats::gather`]; `Default` is the
/// empty task (useful for plan-shape-only analysis).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskStats {
    /// Source-side match objects (matrix rows, `m`).
    pub rows: usize,
    /// Target-side match objects (matrix columns, `n`).
    pub cols: usize,
    /// Source-side leaf paths.
    pub source_leaves: usize,
    /// Target-side leaf paths.
    pub target_leaves: usize,
    /// Total `PathId` entries across every source node's leaves-under
    /// expansion (Σ_p |leaves_under(p)|) — the working-set size of the
    /// structural matchers' per-node leaf-set tables.
    pub source_leafset_ids: usize,
    /// Target-side total of the leaves-under expansions.
    pub target_leafset_ids: usize,
    /// Distinct element names per side.
    pub source_distinct_names: usize,
    /// Distinct element names per side.
    pub target_distinct_names: usize,
    /// Distinct (abbreviation-expanded) tokens per side.
    pub source_tokens: usize,
    /// Distinct (abbreviation-expanded) tokens per side.
    pub target_tokens: usize,
    /// Token posting entries across both sides (index build work).
    pub token_postings: usize,
    /// Q-gram posting entries across both sides (q = 3 probe).
    pub gram_postings: usize,
    /// Jaccard overlap of the two sides' distinct token sets, `[0, 1]`.
    pub vocab_overlap: f64,
    /// Pinned user-feedback correspondences (`Auxiliary::feedback`); they
    /// resurface in every combination, widening selection bounds, and
    /// disable fusion.
    pub feedback_pins: usize,
    /// Hop length of the shortest repository pivot chain between the two
    /// schemas (`None`: no repository, or no chain within the probe
    /// budget) — what a `Reuse` leaf will find.
    pub min_pivot_hops: Option<usize>,
    /// Total stored correspondences in the repository (compose work).
    pub repo_correspondences: usize,
}

impl TaskStats {
    /// Pivot-chain probe budget for [`TaskStats::gather`]: chains longer
    /// than this are treated as unavailable.
    pub const PIVOT_PROBE_HOPS: usize = 4;

    /// Gathers the statistics for one match task: side sizes and leaf
    /// counts from the context, vocabulary statistics from a `q = 3`
    /// [`VocabIndex`] probe per side (the exact tokenization the engine
    /// indexes), and pivot availability from the attached repository (if
    /// any), probing chains up to [`TaskStats::PIVOT_PROBE_HOPS`] hops.
    pub fn gather(ctx: &MatchContext<'_>) -> TaskStats {
        let (m, n) = (ctx.rows(), ctx.cols());
        let source = VocabIndex::build((0..m).map(|i| ctx.source_name(i)), ctx.aux, 3);
        let target = VocabIndex::build((0..n).map(|j| ctx.target_name(j)), ctx.aux, 3);
        let shared = source.tokens().filter(|t| target.has_token(t)).count();
        let union = source.distinct_tokens() + target.distinct_tokens() - shared;
        let vocab_overlap = if union == 0 {
            0.0
        } else {
            shared as f64 / union as f64
        };
        let distinct = |names: &mut dyn Iterator<Item = &str>| {
            let mut seen: Vec<&str> = names.collect();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        };
        let (mut s_names, mut t_names) = (
            (0..m).map(|i| ctx.source_name(i)),
            (0..n).map(|j| ctx.target_name(j)),
        );
        let leaves = |schema: &coma_graph::Schema, paths: &coma_graph::PathSet| {
            paths
                .iter()
                .filter(|&id| schema.is_leaf(paths.node_of(id)))
                .count()
        };
        let (min_pivot_hops, repo_correspondences) = match ctx.repository {
            Some(repo) => {
                let chains = repo.pivot_chains(
                    ctx.source.name(),
                    ctx.target.name(),
                    TaskStats::PIVOT_PROBE_HOPS,
                    |_| true,
                );
                (
                    chains.iter().map(|c| c.hops.len()).min(),
                    repo.mappings()
                        .iter()
                        .map(|m| m.correspondences.len())
                        .sum(),
                )
            }
            None => (None, 0),
        };
        TaskStats {
            rows: m,
            cols: n,
            source_leaves: leaves(ctx.source, ctx.source_paths),
            target_leaves: leaves(ctx.target, ctx.target_paths),
            source_leafset_ids: leafset_id_total(ctx.source_paths),
            target_leafset_ids: leafset_id_total(ctx.target_paths),
            source_distinct_names: distinct(&mut s_names),
            target_distinct_names: distinct(&mut t_names),
            source_tokens: source.distinct_tokens(),
            target_tokens: target.distinct_tokens(),
            token_postings: source.token_posting_entries() + target.token_posting_entries(),
            gram_postings: source.gram_posting_entries() + target.gram_posting_entries(),
            vocab_overlap,
            feedback_pins: ctx.aux.feedback.len(),
            min_pivot_hops,
            repo_correspondences,
        }
    }

    /// The pair-space size `m · n`.
    pub fn cells(&self) -> u64 {
        (self.rows as u64).saturating_mul(self.cols as u64)
    }
}

/// The static facts the analyzer derives for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFacts {
    /// Node path in the tree (`Seq[1].TopK`; root: its bare kind).
    pub path: String,
    /// The node's complete plan label — the join key to
    /// [`StageOutcome::label`](super::StageOutcome).
    pub label: String,
    /// Operator kind (`Matchers`, `TopK`, …).
    pub kind: &'static str,
    /// Whether this node pushes its own [`StageOutcome`](super::StageOutcome). `No` for `Seq`
    /// (a pure combinator) and for a `Matchers` leaf absorbed into a
    /// definitely-fused parent; `Maybe` when the parent's fusion is.
    pub materialized: Tri,
    /// Upper bound on the pairs this node's result selects.
    pub out_pairs_hi: u64,
    /// `out_pairs_hi` over the pair space (0 when the task is empty).
    pub density_hi: f64,
    /// Will the stage's cube be stored all-sparse (CSR)?
    pub storage_sparse: Tri,
    /// Will the stage execute on the streaming-fused path?
    pub fused: Tri,
    /// Predicted shard count on a fresh compute (informational: memo and
    /// cache hits report 1, and worker budgets depend on the machine).
    pub shards_estimate: usize,
    /// Upper bound on the bytes this node's execution may allocate.
    pub peak_bytes: u64,
    /// With a tenant cache attached: `(warm, total)` leaf artifacts
    /// (matcher matrices, or the vocabulary indexes of a
    /// `CandidateIndex`) already present for this schema pair.
    pub warmth: Option<(usize, usize)>,
}

/// The result of one [`PlanAnalyzer::analyze`] pass: per-node facts,
/// structured diagnostics, and the plan-level cost summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAnalysis {
    /// Facts per node, in preorder.
    pub nodes: Vec<NodeFacts>,
    /// Every diagnostic found, errors first, in walk order within a
    /// severity.
    pub diagnostics: Vec<PlanDiagnostic>,
    /// Upper bound on peak allocation of one execution, in bytes
    /// (preparation + every materialized node + slack). Deliberately
    /// machine-independent — worst cases are budget-derived, never
    /// core-count-derived — so the bound can be committed and gated
    /// across runners.
    pub peak_bytes: u64,
    /// The shared-preparation part of [`PlanAnalysis::peak_bytes`].
    pub prep_bytes: u64,
    /// Upper bound on materialized stages (`MatchPlan::stage_count`).
    pub stage_count: usize,
    /// The task statistics the analysis ran against.
    pub stats: TaskStats,
}

impl PlanAnalysis {
    /// Whether any `Error` diagnostic was found (the plan cannot run).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether any `Warn` diagnostic was found.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warn)
    }

    /// The diagnostics of one severity, in walk order.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &PlanDiagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// The storage prediction for every node whose label is `label`,
    /// joined in the lattice (two nodes can share a label only when they
    /// are equal sub-plans — e.g. `Iterate` rounds — whose predictions
    /// may still differ by position). `Maybe` for unknown labels.
    pub fn storage_prediction(&self, label: &str) -> Tri {
        self.join_over_label(label, |f| f.storage_sparse)
    }

    /// The fusion prediction for `label`, joined like
    /// [`PlanAnalysis::storage_prediction`].
    pub fn fused_prediction(&self, label: &str) -> Tri {
        self.join_over_label(label, |f| f.fused)
    }

    fn join_over_label(&self, label: &str, get: impl Fn(&NodeFacts) -> Tri) -> Tri {
        let mut out: Option<Tri> = None;
        for facts in self.nodes.iter().filter(|f| f.label == label) {
            out = Some(match out {
                None => get(facts),
                Some(prev) => prev.join(get(facts)),
            });
        }
        out.unwrap_or(Tri::Maybe)
    }

    /// Renders the full human-readable report (`coma-cli --explain`).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "task: {}x{} ({} cells), leaves {}/{}, vocab {}/{} tokens (overlap {:.2}), feedback pins {}",
            s.rows,
            s.cols,
            s.cells(),
            s.source_leaves,
            s.target_leaves,
            s.source_tokens,
            s.target_tokens,
            s.vocab_overlap,
            s.feedback_pins
        );
        let _ = writeln!(
            out,
            "predicted peak allocation <= {} (preparation {}), stages <= {}",
            human_bytes(self.peak_bytes),
            human_bytes(self.prep_bytes),
            self.stage_count
        );
        let _ = writeln!(out, "\nnodes (preorder):");
        let width = self.nodes.iter().map(|f| f.path.len()).max().unwrap_or(0);
        for f in &self.nodes {
            if f.kind == "Seq" {
                let _ = writeln!(out, "  {:width$}  (combinator, no stage)", f.path);
                continue;
            }
            if f.materialized == Tri::No {
                let _ = writeln!(out, "  {:width$}  absorbed into fused parent", f.path);
                continue;
            }
            let warm = match f.warmth {
                Some((w, t)) => format!(" warm={w}/{t}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:width$}  storage_sparse={} fused={} shards<={} pairs<={} (density<={:.3}) peak<={}{}",
                f.path,
                f.storage_sparse,
                f.fused,
                f.shards_estimate,
                f.out_pairs_hi,
                f.density_hi,
                human_bytes(f.peak_bytes),
                warm
            );
        }
        let _ = writeln!(out, "\ndiagnostics:");
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

/// Formats a byte count for the report (`1.5 MiB`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Σ_p |leaves_under(p)| over every path of one side, exactly — one
/// O(paths) reverse preorder sweep (children always follow their parent
/// in preorder), no expansion materialized.
fn leafset_id_total(paths: &coma_graph::PathSet) -> usize {
    let order: Vec<_> = paths.iter().collect();
    let mut counts = vec![0usize; paths.len()];
    for &p in order.iter().rev() {
        counts[p.index()] = if paths.is_leaf(p) {
            1
        } else {
            paths.children(p).iter().map(|c| counts[c.index()]).sum()
        };
    }
    counts.into_iter().sum()
}

// ---------------------------------------------------------------------
// Cost-model constants. Deliberately generous (allocator slack, Vec
// growth ~1.5x transients, hash-map overhead); the perf gate records the
// measured/predicted ratio so looseness stays visible.

/// Bytes per dense matrix cell (`f64`).
const DENSE_CELL: u64 = 8;
/// Bytes per CSR-stored entry, including index arrays and growth slack.
const SPARSE_ENTRY: u64 = 48;
/// Bytes per selected pair across ranking scratch, `Correspondence`
/// construction and the per-stage result clone.
const RESULT_ENTRY: u64 = 160;
/// Bytes per `PathId` in a structural matcher's leaves-under expansion
/// (`u32` id plus growth slack).
const LEAFSET_ID: u64 = 8;
/// Per-node fixed slack.
const NODE_SLACK: u64 = 1 << 20;
/// Plan-level fixed slack (thread stacks, harness bookkeeping).
const PLAN_SLACK: u64 = 8 << 20;
/// Per-element preparation (tokenization, path tables).
const PER_NAME_PREP: u64 = 512;
/// Bytes per distinct token-pair similarity entry.
const TOKEN_PAIR: u64 = 48;
/// Bytes per distinct name-pair similarity entry.
const NAME_PAIR: u64 = 64;
/// A `CandidateIndex` task is "large" (uncapped leaves get a warning)
/// from this many pair-space cells on.
const LARGE_TASK_CELLS: u64 = 1 << 20;

/// What the analyzer knows about one leaf matcher.
struct MatcherCaps {
    name: String,
    resolved: Option<Arc<dyn Matcher>>,
}

impl MatcherCaps {
    fn row_shardable(&self) -> bool {
        self.resolved.as_ref().is_some_and(|m| m.row_shardable())
    }
    fn cell_local(&self) -> bool {
        self.resolved.as_ref().is_some_and(|m| m.cell_local())
    }
    fn sparse_capable(&self) -> bool {
        self.resolved.as_ref().is_some_and(|m| m.sparse_capable())
    }
}

/// The restriction state a node executes under.
#[derive(Clone, Copy)]
struct MaskState {
    /// Is the context restricted when this node runs?
    masked: Tri,
    /// Upper bound on the pairs the restriction allows (= `cells` when
    /// unrestricted).
    pairs_hi: u64,
}

/// The static plan analyzer (module docs). Cheap to construct; one
/// instance per (library, config) pair.
pub struct PlanAnalyzer<'a> {
    library: &'a MatcherLibrary,
    cfg: EngineConfig,
}

struct Walk<'c> {
    nodes: Vec<NodeFacts>,
    errors: Vec<PlanDiagnostic>,
    warns: Vec<PlanDiagnostic>,
    notes: Vec<PlanDiagnostic>,
    cache: Option<(&'c EngineCache, u64, u64)>,
}

impl<'a> PlanAnalyzer<'a> {
    /// An analyzer over `library` with the engine configuration the plan
    /// will execute under.
    pub fn new(library: &'a MatcherLibrary, cfg: EngineConfig) -> PlanAnalyzer<'a> {
        PlanAnalyzer { library, cfg }
    }

    /// Analyzes `plan` against `stats`. Never fails: defects come back as
    /// `Error` diagnostics (every defect, with node paths — a superset of
    /// [`MatchPlan::validate_shape`], which stops at the first).
    pub fn analyze(&self, plan: &MatchPlan, stats: &TaskStats) -> PlanAnalysis {
        self.run(plan, stats, None)
    }

    /// Like [`PlanAnalyzer::analyze`], additionally scoring expected
    /// cache warmth against a tenant [`EngineCache`] under the two
    /// schemas' fingerprints (see
    /// [`schema_fingerprint`](super::schema_fingerprint)).
    pub fn analyze_with_cache(
        &self,
        plan: &MatchPlan,
        stats: &TaskStats,
        cache: &EngineCache,
        source_fingerprint: u64,
        target_fingerprint: u64,
    ) -> PlanAnalysis {
        self.run(
            plan,
            stats,
            Some((cache, source_fingerprint, target_fingerprint)),
        )
    }

    fn run(
        &self,
        plan: &MatchPlan,
        stats: &TaskStats,
        cache: Option<(&EngineCache, u64, u64)>,
    ) -> PlanAnalysis {
        let mut walk = Walk {
            nodes: Vec::new(),
            errors: Vec::new(),
            warns: Vec::new(),
            notes: Vec::new(),
            cache,
        };
        let cells = stats.cells();
        let root = MaskState {
            masked: Tri::No,
            pairs_hi: cells,
        };
        self.node(
            plan,
            plan.kind_name().to_string(),
            root,
            false,
            stats,
            &mut walk,
        );
        if let Some((cache, sfp, tfp)) = walk.cache {
            let warmth = cache.scope_warmth(sfp, tfp);
            let (warm, total) = walk
                .nodes
                .iter()
                .filter_map(|f| f.warmth)
                .fold((0, 0), |(w, t), (fw, ft)| (w + fw, t + ft));
            walk.notes.push(PlanDiagnostic {
                severity: Severity::Note,
                code: "N_CACHE_WARMTH".to_string(),
                node_path: plan.kind_name().to_string(),
                message: format!(
                    "tenant cache: {warm}/{total} leaf artifacts warm for this schema pair \
                     ({} matrices, {} indexes cached in scope)",
                    warmth.matrices, warmth.indexes
                ),
            });
        }
        let prep_bytes = self.prep_bound(stats);
        let node_bytes: u64 = walk.nodes.iter().map(|f| f.peak_bytes).sum();
        let peak_bytes = prep_bytes
            .saturating_add(node_bytes)
            .saturating_add(PLAN_SLACK);
        let mut diagnostics = walk.errors;
        diagnostics.extend(walk.warns);
        diagnostics.extend(walk.notes);
        PlanAnalysis {
            nodes: walk.nodes,
            diagnostics,
            peak_bytes,
            prep_bytes,
            stage_count: plan.stage_count(),
            stats: stats.clone(),
        }
    }

    /// Shared preparation: tokenization and path tables per element, the
    /// distinct-token and distinct-name pair similarity tables (filled
    /// lazily, bounded by their cross products and by the cells that can
    /// ever be compared), and the `TaskStats` probe indexes.
    fn prep_bound(&self, stats: &TaskStats) -> u64 {
        let elements = (stats.rows as u64).saturating_add(stats.cols as u64);
        let token_pairs = (stats.source_tokens as u64)
            .saturating_mul(stats.target_tokens as u64)
            .min(stats.cells().saturating_mul(16));
        let name_pairs = (stats.source_distinct_names as u64)
            .saturating_mul(stats.target_distinct_names as u64)
            .min(stats.cells());
        let postings = (stats.token_postings as u64).saturating_add(2 * stats.gram_postings as u64);
        elements
            .saturating_mul(PER_NAME_PREP)
            .saturating_add(token_pairs.saturating_mul(TOKEN_PAIR))
            .saturating_add(name_pairs.saturating_mul(NAME_PAIR))
            .saturating_add(postings.saturating_mul(16))
    }

    /// Analyzes one node; returns its `out_pairs_hi`.
    #[allow(clippy::too_many_lines)]
    fn node(
        &self,
        plan: &MatchPlan,
        path: String,
        mask: MaskState,
        under_iterate: bool,
        stats: &TaskStats,
        walk: &mut Walk<'_>,
    ) -> u64 {
        if let Some(kind) = plan.local_shape_defect() {
            walk.errors.push(PlanDiagnostic {
                severity: Severity::Error,
                code: kind.code().to_string(),
                node_path: path.clone(),
                message: kind.to_string(),
            });
        }
        let cells = stats.cells();
        let (m, n) = (stats.rows as u64, stats.cols as u64);
        let child_path =
            |idx: usize, child: &MatchPlan| format!("{path}[{idx}].{}", child.kind_name());
        match plan {
            MatchPlan::Matchers {
                matchers,
                combination,
            } => {
                let caps = self.resolve(matchers, &path, walk);
                let sel =
                    selection_pairs_bound(&combination.selection, combination.direction, m, n);
                let out = bounded(sel, mask.pairs_hi, stats.feedback_pins, cells);
                let storage = self.masked_storage(mask, cells);
                // An unrestricted stage that may store dense materializes
                // one full slice per matcher plus the aggregate; when
                // that alone exceeds the fused in-flight budget, the plan
                // author almost certainly wanted a pruning node directly
                // over this leaf (which would stream it in budget-capped
                // shards instead).
                let dense_slices =
                    cells.saturating_mul(DENSE_CELL.saturating_mul(caps.len() as u64 + 1));
                if storage != Tri::Yes
                    && mask.masked != Tri::Yes
                    && dense_slices > self.cfg.fuse_budget_bytes as u64
                {
                    walk.warns.push(PlanDiagnostic {
                        severity: Severity::Warn,
                        code: "W_DENSE_OVER_BUDGET".to_string(),
                        node_path: path.clone(),
                        message: format!(
                            "unrestricted dense stage materializes ~{} ({} matcher slice(s) + \
                             aggregate at {m}x{n}), over fuse_budget_bytes = {}; prune with \
                             `TopK`/threshold `Filter` directly over this leaf to engage \
                             streaming fusion",
                            human_bytes(dense_slices),
                            caps.len(),
                            human_bytes(self.cfg.fuse_budget_bytes as u64),
                        ),
                    });
                }
                let facts = NodeFacts {
                    path: path.clone(),
                    label: plan.label(),
                    kind: "Matchers",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: storage,
                    fused: Tri::No,
                    shards_estimate: self.leaf_shards(mask, stats),
                    peak_bytes: self.leaf_peak(&caps, stats, cells, mask, storage, out),
                    warmth: self.leaf_warmth(&caps, walk),
                };
                walk.nodes.push(facts);
                out
            }
            MatchPlan::CandidateIndex { per_element, q, .. } => {
                let sel = per_element.map(|cap| (cap as u64).saturating_mul(m.saturating_add(n)));
                let out = bounded(sel, mask.pairs_hi, 0, cells);
                if per_element.is_none() && cells >= LARGE_TASK_CELLS {
                    walk.warns.push(PlanDiagnostic {
                        severity: Severity::Warn,
                        code: "W_CIDX_UNCAPPED".to_string(),
                        node_path: path.clone(),
                        message: format!(
                            "uncapped `CandidateIndex` on a large task ({m}x{n}): the candidate \
                             mask is bounded only by posting traffic; set `per_element` to bound \
                             it at O(cap*(m+n)) pairs"
                        ),
                    });
                }
                let warmth = walk.cache.map(|(cache, sfp, tfp)| {
                    let warm = usize::from(cache.has_vocab_index(sfp, *q))
                        + usize::from(cache.has_vocab_index(tfp, *q));
                    (warm, 2)
                });
                let facts = NodeFacts {
                    path: path.clone(),
                    label: plan.label(),
                    kind: "CandidateIndex",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: Tri::from_bool(self.cfg.sparse),
                    fused: Tri::No,
                    shards_estimate: self.leaf_shards(mask, stats),
                    peak_bytes: self.candidate_index_peak(stats, out, cells),
                    warmth,
                };
                walk.nodes.push(facts);
                out
            }
            MatchPlan::Seq { filter, refine } => {
                let first = self.node(
                    filter,
                    child_path(0, filter),
                    mask,
                    under_iterate,
                    stats,
                    walk,
                );
                // The refine side always runs restricted to the filter's
                // survivors (intersected with any outer mask), plus the
                // survivor-mask allocations of the Seq itself.
                let refine_mask = MaskState {
                    masked: Tri::Yes,
                    pairs_hi: first.min(mask.pairs_hi),
                };
                let out = self.node(
                    refine,
                    child_path(1, refine),
                    refine_mask,
                    under_iterate,
                    stats,
                    walk,
                );
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "Seq",
                    materialized: Tri::No,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: Tri::Maybe,
                    fused: Tri::No,
                    shards_estimate: 1,
                    peak_bytes: cells / 4 + NODE_SLACK,
                    warmth: None,
                });
                out
            }
            MatchPlan::Par { plans, combination } => {
                let mut sub_out: Vec<u64> = Vec::with_capacity(plans.len());
                for (i, sub) in plans.iter().enumerate() {
                    sub_out.push(self.node(
                        sub,
                        child_path(i, sub),
                        mask,
                        under_iterate,
                        stats,
                        walk,
                    ));
                }
                // The stage cube holds one pair matrix per sub-plan
                // result; each follows the engine's `pair_matrix` rule.
                let slice_storage: Vec<Tri> = sub_out
                    .iter()
                    .map(|&e| self.pair_matrix_storage(e, cells))
                    .collect();
                let storage = slice_storage
                    .iter()
                    .copied()
                    .reduce(all_of)
                    .unwrap_or(Tri::Maybe);
                let sel =
                    selection_pairs_bound(&combination.selection, combination.direction, m, n);
                let union: u64 = sub_out.iter().fold(0u64, |a, &b| a.saturating_add(b));
                let out = bounded(sel, union.min(cells).max(1), stats.feedback_pins, cells);
                let mut peak = NODE_SLACK;
                for (&e, &st) in sub_out.iter().zip(&slice_storage) {
                    peak = peak.saturating_add(self.pair_matrix_bytes(e, cells, st));
                }
                // Aggregate + selection scratch: sparse when every slice
                // is, dense otherwise.
                peak = peak.saturating_add(if storage == Tri::Yes {
                    union.saturating_mul(SPARSE_ENTRY)
                } else {
                    cells.saturating_mul(DENSE_CELL + 4)
                });
                peak = peak.saturating_add(out.saturating_mul(RESULT_ENTRY));
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "Par",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: storage,
                    fused: Tri::No,
                    shards_estimate: 1,
                    peak_bytes: peak,
                    warmth: None,
                });
                out
            }
            MatchPlan::Filter {
                input,
                direction,
                selection,
                ..
            } => {
                let fused = self.fusion(input, mask, &path, stats, walk);
                let inner =
                    self.prunable_input(input, &path, mask, fused, under_iterate, stats, walk);
                let matrix_storage = self.pair_matrix_storage(inner, cells);
                let sel = selection_pairs_bound(selection, *direction, m, n);
                let out = bounded(sel, inner, 0, cells);
                let mut peak = self
                    .pair_matrix_bytes(inner, cells, matrix_storage)
                    .saturating_add(out.saturating_mul(RESULT_ENTRY))
                    .saturating_add(NODE_SLACK);
                if fused != Tri::No {
                    peak = peak.saturating_add(self.fused_peak(input, stats));
                }
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "Filter",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: matrix_storage,
                    fused,
                    shards_estimate: self.fused_shards(stats),
                    peak_bytes: peak,
                    warmth: None,
                });
                out
            }
            MatchPlan::TopK { input, k, per } => {
                let fused = self.fusion(input, mask, &path, stats, walk);
                let inner =
                    self.prunable_input(input, &path, mask, fused, under_iterate, stats, walk);
                let keep_hi = topk_pairs_bound(*k, *per, m, n).min(cells);
                let out = keep_hi.min(inner);
                // Pruned-matrix storage follows `sparse_storage` on the
                // top-k keep mask, whose density is bounded statically.
                let storage = if !self.cfg.sparse {
                    Tri::No
                } else if density(keep_hi, cells) <= self.cfg.sparse_density_cutoff {
                    Tri::Yes
                } else {
                    Tri::Maybe
                };
                let matrix_storage = self.pair_matrix_storage(inner, cells);
                let mut peak = self
                    .pair_matrix_bytes(inner, cells, matrix_storage)
                    .saturating_add(cells / 8 + 64) // keep-mask bitset
                    .saturating_add(self.pair_matrix_bytes(out, cells, storage))
                    .saturating_add(out.saturating_mul(RESULT_ENTRY))
                    .saturating_add(NODE_SLACK);
                if fused != Tri::No {
                    peak = peak.saturating_add(self.fused_peak(input, stats));
                }
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "TopK",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: storage,
                    fused,
                    shards_estimate: self.fused_shards(stats),
                    peak_bytes: peak,
                    warmth: None,
                });
                out
            }
            MatchPlan::Iterate {
                plan: sub,
                max_rounds,
                epsilon,
            } => {
                // Round 1 runs under the outer mask; rounds 2+ under the
                // previous round's survivors — the sub-plan's restriction
                // state is only `Maybe` unless already masked.
                let round_mask = MaskState {
                    masked: if mask.masked == Tri::Yes {
                        Tri::Yes
                    } else {
                        Tri::Maybe
                    },
                    pairs_hi: mask.pairs_hi,
                };
                let inner = self.node(sub, child_path(0, sub), round_mask, true, stats, walk);
                self.iterate_fixpoint_warning(sub, *max_rounds, *epsilon, &path, walk);
                let storage = self.pair_matrix_storage(inner, cells);
                let peak = self
                    .pair_matrix_bytes(inner, cells, storage)
                    .saturating_mul(2) // prev + current round matrices
                    .saturating_add(cells / 4) // round masks
                    .saturating_add(inner.saturating_mul(RESULT_ENTRY))
                    .saturating_add(NODE_SLACK);
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "Iterate",
                    materialized: Tri::Yes,
                    out_pairs_hi: inner,
                    density_hi: density(inner, cells),
                    storage_sparse: storage,
                    fused: Tri::No,
                    shards_estimate: 1,
                    peak_bytes: peak,
                    warmth: None,
                });
                inner
            }
            MatchPlan::Reuse {
                max_hops,
                combination,
                ..
            } => {
                match stats.min_pivot_hops {
                    None => walk.warns.push(PlanDiagnostic {
                        severity: Severity::Warn,
                        code: "W_REUSE_NO_PATH".to_string(),
                        node_path: path.clone(),
                        message: "the repository holds no pivot chain between the task schemas \
                                  (or no repository is attached): the reuse slice will be empty"
                            .to_string(),
                    }),
                    Some(hops) if hops > *max_hops => walk.warns.push(PlanDiagnostic {
                        severity: Severity::Warn,
                        code: "W_REUSE_NO_PATH".to_string(),
                        node_path: path.clone(),
                        message: format!(
                            "the shortest repository pivot chain needs {hops} hops but this \
                             `Reuse` allows max_hops = {max_hops}: the reuse slice will be empty"
                        ),
                    }),
                    Some(_) => {}
                }
                let sel =
                    selection_pairs_bound(&combination.selection, combination.direction, m, n);
                let out = bounded(sel, mask.pairs_hi, stats.feedback_pins, cells);
                // The resolver renders the merged mapping into a dense
                // slice; only a sparse mask re-stores it as CSR.
                let storage = self.masked_storage(mask, cells);
                let compose = (stats.repo_correspondences as u64)
                    .saturating_mul(*max_hops as u64)
                    .saturating_mul(256);
                let peak = cells
                    .saturating_mul(2 * DENSE_CELL + 4)
                    .saturating_add(compose)
                    .saturating_add(out.saturating_mul(RESULT_ENTRY))
                    .saturating_add(NODE_SLACK);
                walk.nodes.push(NodeFacts {
                    path,
                    label: plan.label(),
                    kind: "Reuse",
                    materialized: Tri::Yes,
                    out_pairs_hi: out,
                    density_hi: density(out, cells),
                    storage_sparse: storage,
                    fused: Tri::No,
                    shards_estimate: 1,
                    peak_bytes: peak,
                    warmth: None,
                });
                out
            }
        }
    }

    /// Analyzes the input of a prunable (`Filter`/`TopK`) node. A
    /// definitely-fused input leaf is absorbed — it never materializes
    /// its own stage; its facts record that and charge no bytes (the
    /// parent carries the fused-pipeline bound).
    #[allow(clippy::too_many_arguments)]
    fn prunable_input(
        &self,
        input: &MatchPlan,
        path: &str,
        mask: MaskState,
        fused: Tri,
        under_iterate: bool,
        stats: &TaskStats,
        walk: &mut Walk<'_>,
    ) -> u64 {
        let child_path = format!("{path}[0].{}", input.kind_name());
        if fused == Tri::Yes {
            // Same out-bound as the leaf itself would produce (fused
            // execution is bit-identical); no stage, no bytes.
            let MatchPlan::Matchers {
                matchers,
                combination,
            } = input
            else {
                unreachable!("fusion only predicted for Matchers inputs");
            };
            let caps = self.resolve(matchers, &child_path, walk);
            let sel = selection_pairs_bound(
                &combination.selection,
                combination.direction,
                stats.rows as u64,
                stats.cols as u64,
            );
            let out = bounded(sel, mask.pairs_hi, 0, stats.cells());
            walk.nodes.push(NodeFacts {
                path: child_path,
                label: input.label(),
                kind: "Matchers",
                materialized: Tri::No,
                out_pairs_hi: out,
                density_hi: density(out, stats.cells()),
                storage_sparse: Tri::Maybe,
                fused: Tri::Maybe,
                shards_estimate: self.fused_shards(stats),
                peak_bytes: 0,
                warmth: self.leaf_warmth(&caps, walk),
            });
            return out;
        }
        let out = self.node(input, child_path, mask, under_iterate, stats, walk);
        if fused == Tri::Maybe {
            // The leaf's stage may or may not materialize; mark it.
            if let Some(facts) = walk.nodes.last_mut() {
                facts.materialized = Tri::Maybe;
                facts.fused = Tri::Maybe;
                facts.storage_sparse = Tri::Maybe;
            }
        }
        out
    }

    /// Mirrors the engine's `try_fuse` preconditions as a [`Tri`], and
    /// emits the unfusable-prune warning when only a matcher capability
    /// or the leaf's unbounded selection blocks fusion.
    fn fusion(
        &self,
        input: &MatchPlan,
        mask: MaskState,
        path: &str,
        stats: &TaskStats,
        walk: &mut Walk<'_>,
    ) -> Tri {
        let MatchPlan::Matchers {
            matchers,
            combination,
        } = input
        else {
            return Tri::No;
        };
        if !(self.cfg.fuse_pruning && self.cfg.sparse) {
            return Tri::No;
        }
        if stats.feedback_pins > 0 {
            walk.notes.push(PlanDiagnostic {
                severity: Severity::Note,
                code: "N_FUSE_FEEDBACK".to_string(),
                node_path: path.to_string(),
                message: format!(
                    "{} pinned feedback correspondences disable streaming-fused pruning \
                     (pins must resurface in the full combination)",
                    stats.feedback_pins
                ),
            });
            return Tri::No;
        }
        let prunes =
            combination.selection.max_n.is_some() || combination.selection.threshold.is_some();
        let caps = self.resolve_quiet(matchers);
        let unshardable: Vec<&str> = caps
            .iter()
            .filter(|c| !c.row_shardable())
            .map(|c| c.name.as_str())
            .collect();
        if !prunes || !unshardable.is_empty() {
            if mask.masked == Tri::No && !matchers.is_empty() {
                let message = if !prunes {
                    "the input leaf's selection neither caps nor thresholds, so \
                     streaming-fused pruning cannot engage: the full dense matrix will be \
                     materialized before this node prunes it"
                        .to_string()
                } else {
                    format!(
                        "matcher(s) {} are not row-shardable, so streaming-fused pruning \
                         cannot engage: the full dense matrix will be materialized before \
                         this node prunes it",
                        unshardable.join(", ")
                    )
                };
                walk.warns.push(PlanDiagnostic {
                    severity: Severity::Warn,
                    code: "W_UNFUSABLE_PRUNE".to_string(),
                    node_path: path.to_string(),
                    message,
                });
            }
            return Tri::No;
        }
        if caps.iter().any(|c| c.resolved.is_none()) || matchers.is_empty() {
            return Tri::No;
        }
        match mask.masked {
            Tri::Yes => Tri::No,
            Tri::No => Tri::Yes,
            Tri::Maybe => Tri::Maybe,
        }
    }

    /// Warns when an `Iterate` wraps a plan whose fixpoint cannot move:
    /// if every referenced matcher is cell-local (and `CandidateIndex`/
    /// `Reuse` leaves, whose cell values ignore the restriction), cell
    /// values are identical in every round, so the selected set is stable
    /// from round 2 on — the engine detects that via the matrix delta by
    /// round 3 (never, with `epsilon = 0`), and any larger round budget
    /// is dead work.
    fn iterate_fixpoint_warning(
        &self,
        sub: &MatchPlan,
        max_rounds: usize,
        epsilon: f64,
        path: &str,
        walk: &mut Walk<'_>,
    ) {
        let names = sub.matcher_names();
        let all_cell_local = names.iter().all(|name| {
            self.library
                .get(name)
                .is_some_and(|matcher| matcher.cell_local())
        });
        if !all_cell_local {
            return;
        }
        let wasted = if epsilon == 0.0 {
            max_rounds > 2
        } else {
            max_rounds > 3
        };
        if wasted {
            walk.warns.push(PlanDiagnostic {
                severity: Severity::Warn,
                code: "W_ITERATE_FIXPOINT".to_string(),
                node_path: path.to_string(),
                message: format!(
                    "every matcher in the iterated plan is cell-local: cell values cannot \
                     change under the round restriction, so the result is stable from round 2 \
                     and max_rounds = {max_rounds} budgets dead rounds"
                ),
            });
        }
    }

    fn resolve(&self, names: &[String], path: &str, walk: &mut Walk<'_>) -> Vec<MatcherCaps> {
        let caps = self.resolve_quiet(names);
        for c in caps.iter().filter(|c| c.resolved.is_none()) {
            walk.errors.push(PlanDiagnostic {
                severity: Severity::Error,
                code: "E_UNKNOWN_MATCHER".to_string(),
                node_path: path.to_string(),
                message: format!("unknown matcher `{}` (not in the library)", c.name),
            });
        }
        caps
    }

    fn resolve_quiet(&self, names: &[String]) -> Vec<MatcherCaps> {
        names
            .iter()
            .map(|name| MatcherCaps {
                name: name.clone(),
                resolved: self.library.get(name),
            })
            .collect()
    }

    fn leaf_warmth(&self, caps: &[MatcherCaps], walk: &Walk<'_>) -> Option<(usize, usize)> {
        let (cache, sfp, tfp) = walk.cache?;
        let scope = (sfp, tfp);
        let warm = caps
            .iter()
            .filter_map(|c| c.resolved.as_ref())
            .filter(|m| {
                cache
                    .cached_matrix(scope, m.name(), matcher_identity(m))
                    .is_some()
            })
            .count();
        Some((warm, caps.len()))
    }

    /// Storage of a masked (or unmasked) `Matchers`/`Reuse` stage: the
    /// engine's `sparse_storage(mask)` over the mask-density bound.
    fn masked_storage(&self, mask: MaskState, cells: u64) -> Tri {
        match mask.masked {
            Tri::No => Tri::No, // unrestricted stages keep dense slices
            Tri::Yes => {
                if !self.cfg.sparse {
                    Tri::No
                } else if density(mask.pairs_hi, cells) <= self.cfg.sparse_density_cutoff {
                    Tri::Yes
                } else {
                    Tri::Maybe
                }
            }
            Tri::Maybe => {
                if self.cfg.sparse {
                    Tri::Maybe
                } else {
                    Tri::No
                }
            }
        }
    }

    /// The engine's `pair_matrix` storage rule over an entry bound.
    fn pair_matrix_storage(&self, entries_hi: u64, cells: u64) -> Tri {
        if !self.cfg.sparse || cells == 0 {
            return Tri::No;
        }
        if density(entries_hi, cells) <= self.cfg.sparse_density_cutoff {
            Tri::Yes
        } else {
            Tri::Maybe
        }
    }

    fn pair_matrix_bytes(&self, entries_hi: u64, cells: u64, storage: Tri) -> u64 {
        match storage {
            Tri::Yes => entries_hi.saturating_mul(SPARSE_ENTRY),
            Tri::No | Tri::Maybe => cells
                .saturating_mul(DENSE_CELL)
                .max(entries_hi.saturating_mul(SPARSE_ENTRY)),
        }
    }

    /// Shared scratch of the structural matchers (`Children`/`Leaves` —
    /// anything not cell-local): the step-1 leaf-matcher table is the
    /// *full* dense pair space (the restriction is deliberately dropped
    /// for it, and it is memoized and shared by reference, so it counts
    /// once per stage no matter how many structural matchers run), plus
    /// the per-node leaves-under expansions. Allocated on every
    /// execution path — masked or not, sparse or dense — so every peak
    /// model must carry it; missing it is exactly the under-coverage a
    /// deep schema exposes, where Σ|leaves_under| grows with depth.
    fn structural_scratch(&self, caps: &[MatcherCaps], stats: &TaskStats) -> u64 {
        if caps.iter().all(|c| c.resolved.is_some() && c.cell_local()) {
            return 0;
        }
        let table = stats.cells().saturating_mul(DENSE_CELL);
        let ids = (stats.source_leafset_ids as u64)
            .saturating_add(stats.target_leafset_ids as u64)
            .saturating_mul(LEAFSET_ID);
        let headers = (stats.rows as u64)
            .saturating_add(stats.cols as u64)
            .saturating_mul(48);
        table.saturating_add(ids).saturating_add(headers)
    }

    /// Peak bound of one `Matchers` leaf stage: the maximum over the
    /// execution paths its mask state still allows (unmasked dense,
    /// masked dense, masked sparse).
    fn leaf_peak(
        &self,
        caps: &[MatcherCaps],
        stats: &TaskStats,
        cells: u64,
        mask: MaskState,
        storage: Tri,
        out: u64,
    ) -> u64 {
        let l = caps.len() as u64;
        let dense = cells.saturating_mul(DENSE_CELL);
        let result_term = out.saturating_mul(RESULT_ENTRY);
        // Unrestricted: one dense slice per matcher + aggregate +
        // selection scratch over every cell.
        let unmasked = dense
            .saturating_mul(l + 2)
            .saturating_add(cells.saturating_mul(32));
        // Masked, dense storage: full compute + masked clone per matcher,
        // dense aggregate, dense selection scratch.
        let masked_dense = dense
            .saturating_mul(2 * l + 1)
            .saturating_add(cells.saturating_mul(32));
        // Masked, sparse storage: restriction-honoring matchers build CSR
        // under the mask; global matchers still compute (and memoize) a
        // full dense matrix first.
        let entries = mask.pairs_hi;
        let mut masked_sparse = entries.saturating_mul(SPARSE_ENTRY).saturating_mul(l + 3);
        for c in caps {
            if !(c.cell_local() || c.sparse_capable()) {
                masked_sparse = masked_sparse.saturating_add(dense.saturating_mul(2));
            }
        }
        let masked = match storage {
            Tri::Yes => masked_sparse,
            Tri::No => masked_dense,
            Tri::Maybe => masked_dense.max(masked_sparse),
        };
        let peak = match mask.masked {
            Tri::No => unmasked,
            Tri::Yes => masked,
            Tri::Maybe => unmasked.max(masked),
        };
        peak.saturating_add(self.structural_scratch(caps, stats))
            .saturating_add(result_term)
            .saturating_add(NODE_SLACK)
    }

    fn candidate_index_peak(&self, stats: &TaskStats, out: u64, cells: u64) -> u64 {
        let elements = (stats.rows as u64).saturating_add(stats.cols as u64);
        let postings = (stats.token_postings as u64).saturating_add(2 * stats.gram_postings as u64);
        let vocab = (stats.source_tokens as u64).saturating_add(stats.target_tokens as u64);
        let index = postings
            .saturating_mul(16)
            .saturating_add(vocab.saturating_mul(128))
            .saturating_add(elements.saturating_mul(64));
        // Per-thread pool scratch, charged at the machine-independent
        // worst case: the engine never runs more scorer threads than
        // row shards.
        let scratch = (self.fused_shards(stats) as u64)
            .saturating_mul(stats.cols as u64 + 16)
            .saturating_mul(32);
        let output = if self.cfg.sparse {
            out.saturating_mul(SPARSE_ENTRY)
        } else {
            cells.saturating_mul(DENSE_CELL)
        };
        index
            .saturating_add(scratch)
            .saturating_add(output)
            .saturating_add(out.saturating_mul(RESULT_ENTRY))
            .saturating_add(NODE_SLACK)
    }

    /// In-flight bound of the fused pipeline for `input` (a `Matchers`
    /// leaf): `threads × shard slice bytes` as `fused_leaf` sizes them,
    /// plus the CSR fragments/pools and the survivor matrix. The bound
    /// is committed and gated across runners, so it must be
    /// machine-independent: it charges the budget-capped worst case —
    /// as many workers as `fuse_budget_bytes` admits — rather than this
    /// machine's core count. The engine never exceeds that
    /// (`threads = workers.min(budget_cap).min(shards)`), so the bound
    /// holds on any machine.
    fn fused_peak(&self, input: &MatchPlan, stats: &TaskStats) -> u64 {
        let MatchPlan::Matchers {
            matchers,
            combination,
        } = input
        else {
            return 0;
        };
        let (m, n) = (stats.rows as u64, stats.cols as u64);
        let l = matchers.len() as u64;
        let shards = self.fused_shards(stats) as u64;
        let shard_rows = if shards == 0 { 0 } else { m.div_ceil(shards) };
        let inflight = shard_rows
            .saturating_mul(n)
            .saturating_mul(DENSE_CELL)
            .saturating_mul(l + 1);
        let budget_cap = (self.cfg.fuse_budget_bytes as u64)
            .checked_div(inflight)
            .map_or(1, |cap| cap.max(1));
        let threads = budget_cap.min(shards.max(1));
        let sel = selection_pairs_bound(&combination.selection, combination.direction, m, n);
        let survivors = bounded(sel, stats.cells(), 0, stats.cells());
        threads
            .saturating_mul(inflight)
            .saturating_add(survivors.saturating_mul(SPARSE_ENTRY).saturating_mul(3))
            // A fused Leaves still builds the shared full-pair leaf
            // table inside its workers — the in-flight shard budget
            // does not cover it.
            .saturating_add(self.structural_scratch(&self.resolve_quiet(matchers), stats))
    }

    /// The fused pipeline's shard count (`fused_leaf`'s formula — note it
    /// ignores `parallel`: shards are a granularity, threads the
    /// parallelism).
    fn fused_shards(&self, stats: &TaskStats) -> usize {
        let m = stats.rows;
        match self.cfg.shards {
            Some(forced) => forced.min(m.max(1)),
            None => m.div_ceil(self.cfg.min_shard_rows).max(1),
        }
    }

    /// `planned_shards` for a fresh unrestricted leaf compute with the
    /// whole machine as budget (masked or memo-hit computes report 1).
    fn leaf_shards(&self, mask: MaskState, stats: &TaskStats) -> usize {
        if mask.masked == Tri::Yes {
            return 1;
        }
        let rows = stats.rows;
        if !self.cfg.parallel || rows == 0 {
            return 1;
        }
        match self.cfg.shards {
            Some(forced) => forced.min(rows),
            None => self
                .workers()
                .min(rows.div_ceil(self.cfg.min_shard_rows))
                .max(1),
        }
    }

    fn workers(&self) -> usize {
        if self.cfg.parallel {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
        } else {
            1
        }
    }
}

/// Upper bound on the pairs a directional selection can keep, `None`
/// when unbounded (threshold/delta-only selections admit every cell).
fn selection_pairs_bound(
    selection: &Selection,
    direction: Direction,
    m: u64,
    n: u64,
) -> Option<u64> {
    let k = selection.max_n? as u64;
    Some(match direction {
        // Union-safe bound: every element of either side keeps <= k.
        Direction::Both => k.saturating_mul(m.saturating_add(n)),
        Direction::LargeSmall | Direction::SmallLarge => k.saturating_mul(m.max(n)),
    })
}

/// Upper bound on the pairs a `TopK` keep mask admits.
fn topk_pairs_bound(k: usize, per: TopKPer, m: u64, n: u64) -> u64 {
    let k = k as u64;
    match per {
        TopKPer::Row => k.saturating_mul(m),
        TopKPer::Col => k.saturating_mul(n),
        TopKPer::Both => k.saturating_mul(m.saturating_add(n)),
    }
}

/// Combines a selection bound, a mask bound and feedback pins into a
/// node's `out_pairs_hi`, capped at the pair space.
fn bounded(selection: Option<u64>, mask_hi: u64, feedback: usize, cells: u64) -> u64 {
    let base = match selection {
        Some(sel) => sel.min(mask_hi),
        None => mask_hi,
    };
    base.saturating_add(feedback as u64).min(cells)
}

fn density(pairs: u64, cells: u64) -> f64 {
    if cells == 0 {
        0.0
    } else {
        (pairs as f64 / cells as f64).min(1.0)
    }
}

/// `Yes` iff both are `Yes`, `No` if either is definitely `No` — the
/// "all slices sparse" combination for a stage cube.
fn all_of(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::Yes, Tri::Yes) => Tri::Yes,
        (Tri::No, _) | (_, Tri::No) => Tri::No,
        _ => Tri::Maybe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::CombinationStrategy;
    use crate::plans;

    fn stats(rows: usize, cols: usize) -> TaskStats {
        TaskStats {
            rows,
            cols,
            source_leaves: rows,
            target_leaves: cols,
            source_leafset_ids: 2 * rows,
            target_leafset_ids: 2 * cols,
            source_distinct_names: rows,
            target_distinct_names: cols,
            source_tokens: rows,
            target_tokens: cols,
            token_postings: rows + cols,
            gram_postings: 4 * (rows + cols),
            vocab_overlap: 0.5,
            feedback_pins: 0,
            min_pivot_hops: None,
            repo_correspondences: 0,
        }
    }

    fn analyzer(library: &MatcherLibrary) -> PlanAnalyzer<'_> {
        PlanAnalyzer::new(library, EngineConfig::default())
    }

    #[test]
    fn errors_carry_paths_and_cover_every_defect() {
        let coma = MatcherLibrary::standard();
        // Two defects in one tree: both must be reported (validate_shape
        // stops at the first; the analyzer must not).
        let plan = MatchPlan::seq(
            MatchPlan::Matchers {
                matchers: Vec::new(),
                combination: CombinationStrategy::paper_default(),
            },
            MatchPlan::TopK {
                input: Box::new(MatchPlan::matchers(["Name"])),
                k: 0,
                per: TopKPer::Both,
            },
        );
        let analysis = analyzer(&coma).analyze(&plan, &stats(4, 4));
        assert!(analysis.has_errors());
        let errors: Vec<&PlanDiagnostic> = analysis.with_severity(Severity::Error).collect();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert_eq!(errors[0].code, "E_EMPTY_MATCHERS");
        assert_eq!(errors[0].node_path, "Seq[0].Matchers");
        assert_eq!(errors[1].code, "E_TOPK_ZERO");
        assert_eq!(errors[1].node_path, "Seq[1].TopK");
    }

    #[test]
    fn unknown_matchers_are_errors_with_paths() {
        let coma = MatcherLibrary::standard();
        let plan = MatchPlan::seq(MatchPlan::matchers(["Name"]), MatchPlan::matchers(["Nope"]));
        let analysis = analyzer(&coma).analyze(&plan, &stats(4, 4));
        let errors: Vec<&PlanDiagnostic> = analysis.with_severity(Severity::Error).collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, "E_UNKNOWN_MATCHER");
        assert_eq!(errors[0].node_path, "Seq[1].Matchers");
        assert!(errors[0].message.contains("Nope"));
    }

    #[test]
    fn canonical_fused_plans_predict_fusion_and_sparse_storage() {
        let coma = MatcherLibrary::standard();
        let s = stats(400, 300);
        let plan = plans::topk_pruned_plan(5);
        let analysis = analyzer(&coma).analyze(&plan, &s);
        assert!(!analysis.has_errors());
        // The TopK filter stage fuses (unrestricted liberal Name leaf
        // with a capped selection) and stores sparse (k(m+n) << mn/2).
        let topk_label = match &plan {
            MatchPlan::Seq { filter, .. } => filter.label(),
            _ => unreachable!(),
        };
        assert_eq!(analysis.fused_prediction(&topk_label), Tri::Yes);
        assert_eq!(analysis.storage_prediction(&topk_label), Tri::Yes);
        // The refine stage runs masked; its storage depends on runtime
        // density only through the bound, which here is sparse.
        let refine_label = match &plan {
            MatchPlan::Seq { refine, .. } => refine.label(),
            _ => unreachable!(),
        };
        assert_eq!(analysis.storage_prediction(&refine_label), Tri::Yes);
        assert_eq!(analysis.fused_prediction(&refine_label), Tri::No);
    }

    #[test]
    fn dense_flat_plan_predicts_dense_unfused() {
        let coma = MatcherLibrary::standard();
        let plan = MatchPlan::matchers(["Name", "Leaves"]);
        let analysis = analyzer(&coma).analyze(&plan, &stats(50, 50));
        assert_eq!(analysis.storage_prediction(&plan.label()), Tri::No);
        assert_eq!(analysis.fused_prediction(&plan.label()), Tri::No);
        assert!(analysis.peak_bytes > 0);
    }

    #[test]
    fn sparse_off_forces_dense_predictions() {
        let coma = MatcherLibrary::standard();
        let cfg = EngineConfig::default()
            .with_sparse(false)
            .with_fuse_pruning(false);
        let plan = plans::topk_pruned_plan(5);
        let analysis = PlanAnalyzer::new(&coma, cfg).analyze(&plan, &stats(100, 100));
        for f in analysis.nodes.iter().filter(|f| f.kind != "Seq") {
            assert_eq!(f.storage_sparse, Tri::No, "{}", f.path);
            assert_eq!(f.fused, Tri::No, "{}", f.path);
        }
    }

    #[test]
    fn unfusable_prune_over_children_warns() {
        let coma = MatcherLibrary::standard();
        let mut combination = CombinationStrategy::paper_default();
        combination.selection = Selection::max_n(5);
        let plan = MatchPlan::matchers_with(["Children"], combination)
            .top_k(5, TopKPer::Both)
            .unwrap();
        let analysis = analyzer(&coma).analyze(&plan, &stats(2000, 2000));
        let warn = analysis
            .with_severity(Severity::Warn)
            .find(|d| d.code == "W_UNFUSABLE_PRUNE")
            .expect("expected W_UNFUSABLE_PRUNE");
        assert!(warn.message.contains("Children"), "{}", warn.message);
        assert_eq!(analysis.fused_prediction(&plan.label()), Tri::No);
    }

    #[test]
    fn uncapped_candidate_index_on_large_task_warns() {
        let coma = MatcherLibrary::standard();
        let plan = MatchPlan::candidate_index(1, 0.0).unwrap();
        let large = analyzer(&coma).analyze(&plan, &stats(2000, 2000));
        assert!(large
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_CIDX_UNCAPPED"));
        let small = analyzer(&coma).analyze(&plan, &stats(10, 10));
        assert!(!small
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_CIDX_UNCAPPED"));
    }

    #[test]
    fn dense_stage_over_budget_warns_unless_sparse_or_fused() {
        let coma = MatcherLibrary::standard();
        // 6000x6000 · 8 B · (5 matchers + aggregate) ≈ 1.6 GiB > the
        // 1 GiB default fused budget.
        let plan = MatchPlan::matchers(["Name", "NamePath", "TypeName", "Children", "Leaves"]);
        let analysis = analyzer(&coma).analyze(&plan, &stats(6000, 6000));
        let warn = analysis
            .with_severity(Severity::Warn)
            .find(|d| d.code == "W_DENSE_OVER_BUDGET")
            .expect("expected W_DENSE_OVER_BUDGET");
        assert!(warn.message.contains("fuse_budget_bytes"), "{}", warn.message);
        // Small task: under budget, no warning.
        let small = analyzer(&coma).analyze(&plan, &stats(100, 100));
        assert!(!small
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_DENSE_OVER_BUDGET"));
        // The same pair space behind a fusable prune never materializes
        // the dense slices — the absorbed leaf must not warn.
        let mut combination = CombinationStrategy::paper_default();
        combination.selection = Selection::max_n(5);
        let pruned = MatchPlan::matchers_with(["Name"], combination)
            .top_k(5, TopKPer::Both)
            .unwrap();
        let fused = analyzer(&coma).analyze(&pruned, &stats(20000, 20000));
        assert_eq!(fused.fused_prediction(&pruned.label()), Tri::Yes);
        assert!(!fused
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_DENSE_OVER_BUDGET"));
    }

    #[test]
    fn reuse_without_pivot_path_warns() {
        let coma = MatcherLibrary::standard();
        let plan = MatchPlan::reuse(None);
        let analysis = analyzer(&coma).analyze(&plan, &stats(10, 10));
        assert!(analysis
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_REUSE_NO_PATH"));
        // A reachable chain within the hop budget clears the warning.
        let mut s = stats(10, 10);
        s.min_pivot_hops = Some(2);
        let ok = analyzer(&coma).analyze(&plan, &s);
        assert!(!ok
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_REUSE_NO_PATH"));
        // ... but not when it exceeds the node's max_hops.
        s.min_pivot_hops = Some(3);
        let too_far = analyzer(&coma).analyze(&plan, &s);
        assert!(too_far
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_REUSE_NO_PATH"));
    }

    #[test]
    fn cell_local_iterate_warns_about_dead_rounds() {
        let coma = MatcherLibrary::standard();
        let plan = MatchPlan::matchers(["Name"]).iterate(10, 1e-6).unwrap();
        let analysis = analyzer(&coma).analyze(&plan, &stats(10, 10));
        assert!(analysis
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_ITERATE_FIXPOINT"));
        // Structural matchers *do* change under restriction: no warning.
        let structural = MatchPlan::matchers(["Leaves"]).iterate(10, 1e-6).unwrap();
        let ok = analyzer(&coma).analyze(&structural, &stats(10, 10));
        assert!(!ok
            .with_severity(Severity::Warn)
            .any(|d| d.code == "W_ITERATE_FIXPOINT"));
    }

    #[test]
    fn tri_lattice_and_agreement() {
        assert!(Tri::Yes.agrees_with(true));
        assert!(!Tri::Yes.agrees_with(false));
        assert!(Tri::No.agrees_with(false));
        assert!(!Tri::No.agrees_with(true));
        assert!(Tri::Maybe.agrees_with(true) && Tri::Maybe.agrees_with(false));
        assert_eq!(Tri::Yes.join(Tri::Yes), Tri::Yes);
        assert_eq!(Tri::Yes.join(Tri::No), Tri::Maybe);
        assert_eq!(Tri::No.join(Tri::No), Tri::No);
    }

    #[test]
    fn render_mentions_every_node_path() {
        let coma = MatcherLibrary::standard();
        let plan = plans::candidate_index_plan(4);
        let analysis = analyzer(&coma).analyze(&plan, &stats(30, 30));
        let report = analysis.render();
        for f in &analysis.nodes {
            assert!(report.contains(&f.path), "missing {} in:\n{report}", f.path);
        }
        assert!(report.contains("predicted peak allocation"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
    }
}
