use crate::{Mapping, StoredCube};
use coma_graph::Schema;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Errors from repository persistence.
#[derive(Debug)]
pub enum RepositoryError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Serialization / deserialization error.
    Format(serde_json::Error),
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepositoryError::Format(e) => write!(f, "repository format error: {e}"),
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<std::io::Error> for RepositoryError {
    fn from(e: std::io::Error) -> Self {
        RepositoryError::Io(e)
    }
}

impl From<serde_json::Error> for RepositoryError {
    fn from(e: serde_json::Error) -> Self {
        RepositoryError::Format(e)
    }
}

/// One transitive reuse path through the stored-mapping graph: a concrete
/// choice of oriented mappings `source → P1 → … → Pk → target`, ready for
/// repeated MatchCompose. Produced by [`Repository::pivot_chains`].
#[derive(Debug, Clone, PartialEq)]
pub struct PivotChain {
    /// Names of the intermediate pivot schemas, in walk order.
    pub pivots: Vec<String>,
    /// The oriented mappings along the path; `hops.len() == pivots.len() + 1`.
    pub hops: Vec<Mapping>,
}

/// The COMA repository: schemas, mappings and similarity cubes.
///
/// Deterministic iteration (BTreeMap / insertion-ordered vectors) keeps the
/// reuse matchers reproducible.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Repository {
    schemas: BTreeMap<String, Schema>,
    mappings: Vec<Mapping>,
    cubes: Vec<StoredCube>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    // --- schemas ---------------------------------------------------------

    /// Stores a schema under its own name, replacing any previous version.
    pub fn put_schema(&mut self, schema: Schema) {
        self.schemas.insert(schema.name().to_string(), schema);
    }

    /// Looks up a schema by name.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// Names of all stored schemas, sorted.
    pub fn schema_names(&self) -> Vec<&str> {
        self.schemas.keys().map(String::as_str).collect()
    }

    /// Number of stored schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    // --- mappings --------------------------------------------------------

    /// Stores a match result, replacing any previously stored mapping for
    /// the same `(source, target, kind)` key — re-matching a pair updates
    /// the stored result instead of silently doubling the reuse inputs
    /// ([`Repository::pivot_pairs`] would otherwise emit duplicate pivot
    /// chains). Manual and automatic results for the same pair coexist:
    /// confirming a match never discards the raw automatic one.
    pub fn put_mapping(&mut self, mapping: Mapping) {
        match self.mappings.iter_mut().find(|m| {
            m.source_schema == mapping.source_schema
                && m.target_schema == mapping.target_schema
                && m.kind == mapping.kind
        }) {
            Some(existing) => *existing = mapping,
            None => self.mappings.push(mapping),
        }
    }

    /// All stored mappings, in insertion order.
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// All mappings relating `a` and `b` (either orientation).
    pub fn mappings_between(&self, a: &str, b: &str) -> Vec<&Mapping> {
        self.mappings.iter().filter(|m| m.relates(a, b)).collect()
    }

    /// Removes all mappings relating `a` and `b`; returns how many were
    /// removed. Used by evaluation code to exclude a task's own gold
    /// standard before reuse matching.
    pub fn remove_mappings_between(&mut self, a: &str, b: &str) -> usize {
        let before = self.mappings.len();
        self.mappings.retain(|m| !m.relates(a, b));
        before - self.mappings.len()
    }

    /// The "search repository" step of the Schema reuse matcher (Figure 5):
    /// finds every pivot schema `S` such that the repository holds match
    /// results relating `S` with both `source` and `target` (in any order),
    /// and returns the mapping pairs oriented as `source↔S` and `S↔target`,
    /// ready for MatchCompose.
    ///
    /// A filter lets the caller restrict which stored mappings qualify
    /// (e.g. only manually confirmed ones for `SchemaM`).
    pub fn pivot_pairs(
        &self,
        source: &str,
        target: &str,
        filter: impl Fn(&Mapping) -> bool,
    ) -> Vec<(Mapping, Mapping)> {
        let mut pivots: Vec<&str> = Vec::new();
        for m in &self.mappings {
            for s in [m.source_schema.as_str(), m.target_schema.as_str()] {
                if s != source && s != target && !pivots.contains(&s) {
                    pivots.push(s);
                }
            }
        }
        let mut out = Vec::new();
        for pivot in pivots {
            let firsts: Vec<Mapping> = self
                .mappings
                .iter()
                .filter(|m| filter(m))
                .filter_map(|m| m.oriented(source, pivot))
                .collect();
            let seconds: Vec<Mapping> = self
                .mappings
                .iter()
                .filter(|m| filter(m))
                .filter_map(|m| m.oriented(pivot, target))
                .collect();
            for f in &firsts {
                for s in &seconds {
                    out.push((f.clone(), s.clone()));
                }
            }
        }
        out
    }

    /// The generalization of [`Repository::pivot_pairs`] to transitive
    /// *chains*: every simple path `source → P1 → … → Pk → target` through
    /// the stored-mapping graph with between 2 and `max_hops` mappings,
    /// each hop oriented forward and ready for repeated MatchCompose.
    ///
    /// The walk is over schema *names* (two schemas are adjacent when any
    /// qualifying stored mapping relates them); for every node path, all
    /// combinations of qualifying oriented mappings per hop are emitted.
    /// Paths are simple — no pivot repeats and neither endpoint appears
    /// as an intermediate — so a direct `source↔target` mapping is never
    /// part of a chain (that is a stored *result*, not reuse). Adjacency
    /// is kept in sorted maps, making the enumeration order
    /// deterministic regardless of mapping insertion order.
    ///
    /// With `max_hops = 2` the emitted chains are exactly
    /// [`Repository::pivot_pairs`]'s single-pivot pairs.
    pub fn pivot_chains(
        &self,
        source: &str,
        target: &str,
        max_hops: usize,
        filter: impl Fn(&Mapping) -> bool,
    ) -> Vec<PivotChain> {
        if source == target || max_hops < 2 {
            return Vec::new();
        }
        let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for m in self.mappings.iter().filter(|m| filter(m)) {
            let (a, b) = (m.source_schema.as_str(), m.target_schema.as_str());
            if a == b {
                continue;
            }
            adjacency.entry(a).or_default().insert(b);
            adjacency.entry(b).or_default().insert(a);
        }
        let mut chains = Vec::new();
        let mut path = vec![source];
        self.chain_walk(
            target,
            max_hops,
            &filter,
            &adjacency,
            &mut path,
            &mut chains,
        );
        chains
    }

    /// Depth-first enumeration of simple pivot paths. `path` holds the
    /// nodes walked so far (starting at the task source); reaching
    /// `target` with at least one intermediate pivot emits the chain.
    fn chain_walk<'a>(
        &self,
        target: &'a str,
        max_hops: usize,
        filter: &impl Fn(&Mapping) -> bool,
        adjacency: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        path: &mut Vec<&'a str>,
        out: &mut Vec<PivotChain>,
    ) {
        let last = *path.last().expect("path starts at the source");
        let Some(neighbors) = adjacency.get(last) else {
            return;
        };
        for &next in neighbors {
            if next == target {
                if path.len() >= 2 {
                    self.emit_chains(path, target, filter, out);
                }
                continue;
            }
            // Admitting another pivot means the finished chain will have
            // at least `path.len() + 1` hops; stay within the budget.
            if path.len() >= max_hops || path.contains(&next) {
                continue;
            }
            path.push(next);
            self.chain_walk(target, max_hops, filter, adjacency, path, out);
            path.pop();
        }
    }

    /// Emits every combination of qualifying oriented mappings along one
    /// node path (`nodes` + the final `target`).
    fn emit_chains(
        &self,
        nodes: &[&str],
        target: &str,
        filter: &impl Fn(&Mapping) -> bool,
        out: &mut Vec<PivotChain>,
    ) {
        let mut endpoints: Vec<&str> = nodes.to_vec();
        endpoints.push(target);
        let per_hop: Vec<Vec<Mapping>> = endpoints
            .windows(2)
            .map(|w| {
                self.mappings
                    .iter()
                    .filter(|m| filter(m))
                    .filter_map(|m| m.oriented(w[0], w[1]))
                    .collect()
            })
            .collect();
        if per_hop.iter().any(Vec::is_empty) {
            return;
        }
        let pivots: Vec<String> = nodes[1..].iter().map(|s| (*s).to_string()).collect();
        let mut combos: Vec<Vec<Mapping>> = vec![Vec::new()];
        for hop in &per_hop {
            let mut grown = Vec::with_capacity(combos.len() * hop.len());
            for combo in &combos {
                for m in hop {
                    let mut c = combo.clone();
                    c.push(m.clone());
                    grown.push(c);
                }
            }
            combos = grown;
        }
        for hops in combos {
            out.push(PivotChain {
                pivots: pivots.clone(),
                hops,
            });
        }
    }

    // --- cubes -----------------------------------------------------------

    /// Stores a similarity cube, replacing any previously stored cube for
    /// the same `(source, target, matcher set)` key — re-running a
    /// strategy on a pair updates the stored cube instead of appending a
    /// duplicate.
    pub fn put_cube(&mut self, cube: StoredCube) {
        debug_assert!(cube.is_consistent());
        match self.cubes.iter_mut().find(|c| {
            c.source_schema == cube.source_schema
                && c.target_schema == cube.target_schema
                && c.matchers == cube.matchers
        }) {
            Some(existing) => *existing = cube,
            None => self.cubes.push(cube),
        }
    }

    /// All cubes for the given schema pair, in insertion order.
    pub fn cubes_for(&self, source: &str, target: &str) -> Vec<&StoredCube> {
        self.cubes
            .iter()
            .filter(|c| c.source_schema == source && c.target_schema == target)
            .collect()
    }

    /// Number of stored cubes.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    // --- persistence -----------------------------------------------------

    /// Serializes the whole repository to pretty JSON.
    pub fn to_json(&self) -> Result<String, RepositoryError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserializes a repository from JSON.
    pub fn from_json(json: &str) -> Result<Repository, RepositoryError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Saves the repository to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RepositoryError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads a repository from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Repository, RepositoryError> {
        Repository::from_json(&std::fs::read_to_string(path)?)
    }
}

/// A thread-safe, shareable repository handle for parallel experiment runs.
pub type SharedRepository = Arc<RwLock<Repository>>;

/// Creates a [`SharedRepository`] from a plain repository.
pub fn shared(repo: Repository) -> SharedRepository {
    Arc::new(RwLock::new(repo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingKind;
    use coma_graph::{Node, SchemaBuilder};

    fn schema(name: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let r = b.add_node(Node::new(name));
        let c = b.add_node(Node::new("x"));
        b.add_child(r, c).unwrap();
        b.build().unwrap()
    }

    fn mapping(a: &str, b: &str, kind: MappingKind) -> Mapping {
        let mut m = Mapping::new(a, b, kind);
        m.push(format!("{a}.x"), format!("{b}.x"), 1.0);
        m
    }

    #[test]
    fn schema_roundtrip() {
        let mut repo = Repository::new();
        repo.put_schema(schema("CIDX"));
        repo.put_schema(schema("Excel"));
        assert_eq!(repo.schema_count(), 2);
        assert_eq!(repo.schema_names(), vec!["CIDX", "Excel"]);
        assert!(repo.schema("CIDX").is_some());
        assert!(repo.schema("nope").is_none());
    }

    #[test]
    fn pivot_pairs_finds_all_orientations() {
        // Figure 5: S1↔Si, S2↔Si; S1↔Sj, Sj↔S2; Sk↔S1, S2↔Sk.
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "Si", MappingKind::Manual));
        repo.put_mapping(mapping("S2", "Si", MappingKind::Manual));
        repo.put_mapping(mapping("S1", "Sj", MappingKind::Manual));
        repo.put_mapping(mapping("Sj", "S2", MappingKind::Manual));
        repo.put_mapping(mapping("Sk", "S1", MappingKind::Manual));
        repo.put_mapping(mapping("S2", "Sk", MappingKind::Manual));
        let pairs = repo.pivot_pairs("S1", "S2", |_| true);
        assert_eq!(pairs.len(), 3);
        for (first, second) in &pairs {
            assert_eq!(first.source_schema, "S1");
            assert_eq!(first.target_schema, second.source_schema);
            assert_eq!(second.target_schema, "S2");
        }
    }

    #[test]
    fn pivot_pairs_respects_filter() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "Si", MappingKind::Manual));
        repo.put_mapping(mapping("Si", "S2", MappingKind::Automatic));
        let manual_only = repo.pivot_pairs("S1", "S2", |m| m.kind == MappingKind::Manual);
        assert!(manual_only.is_empty());
        let all = repo.pivot_pairs("S1", "S2", |_| true);
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn pivot_pairs_excludes_direct_mappings() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "S2", MappingKind::Manual));
        assert!(repo.pivot_pairs("S1", "S2", |_| true).is_empty());
    }

    #[test]
    fn pivot_chains_with_two_hops_match_pivot_pairs() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "Si", MappingKind::Manual));
        repo.put_mapping(mapping("S2", "Si", MappingKind::Manual));
        repo.put_mapping(mapping("S1", "Sj", MappingKind::Manual));
        repo.put_mapping(mapping("Sj", "S2", MappingKind::Manual));
        repo.put_mapping(mapping("Sk", "S1", MappingKind::Manual));
        repo.put_mapping(mapping("S2", "Sk", MappingKind::Manual));
        let pairs = repo.pivot_pairs("S1", "S2", |_| true);
        let chains = repo.pivot_chains("S1", "S2", 2, |_| true);
        assert_eq!(chains.len(), pairs.len());
        for chain in &chains {
            assert_eq!(chain.pivots.len(), 1);
            assert_eq!(chain.hops.len(), 2);
            assert!(pairs
                .iter()
                .any(|(f, s)| *f == chain.hops[0] && *s == chain.hops[1]));
        }
    }

    #[test]
    fn pivot_chains_find_longer_paths_within_budget() {
        // Only route S1→S2 is via two pivots: S1↔A↔B↔S2.
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "A", MappingKind::Manual));
        repo.put_mapping(mapping("A", "B", MappingKind::Manual));
        repo.put_mapping(mapping("B", "S2", MappingKind::Manual));
        assert!(repo.pivot_chains("S1", "S2", 2, |_| true).is_empty());
        let chains = repo.pivot_chains("S1", "S2", 3, |_| true);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].pivots, vec!["A".to_string(), "B".to_string()]);
        assert_eq!(chains[0].hops.len(), 3);
        assert_eq!(chains[0].hops[0].source_schema, "S1");
        assert_eq!(chains[0].hops[2].target_schema, "S2");
    }

    #[test]
    fn pivot_chains_stay_simple_and_skip_direct_mappings() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "S2", MappingKind::Manual));
        repo.put_mapping(mapping("S1", "A", MappingKind::Manual));
        repo.put_mapping(mapping("A", "S2", MappingKind::Manual));
        // The direct S1↔S2 mapping is never a chain, and raising the hop
        // budget cannot smuggle it (or a revisit of S1/A) back in.
        let chains = repo.pivot_chains("S1", "S2", 4, |_| true);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].pivots, vec!["A".to_string()]);
        assert!(repo.pivot_chains("S1", "S1", 4, |_| true).is_empty());
    }

    #[test]
    fn pivot_chains_respect_filter_per_hop() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("S1", "A", MappingKind::Manual));
        repo.put_mapping(mapping("A", "S2", MappingKind::Automatic));
        let manual_only = repo.pivot_chains("S1", "S2", 3, |m| m.kind == MappingKind::Manual);
        assert!(manual_only.is_empty());
        assert_eq!(repo.pivot_chains("S1", "S2", 3, |_| true).len(), 1);
    }

    #[test]
    fn pivot_chains_enumerate_deterministically() {
        // Insertion order differs; sorted adjacency must give one order.
        let build = |flip: bool| {
            let mut repo = Repository::new();
            let mut ms = vec![
                mapping("S1", "A", MappingKind::Manual),
                mapping("A", "S2", MappingKind::Manual),
                mapping("S1", "B", MappingKind::Manual),
                mapping("B", "S2", MappingKind::Manual),
            ];
            if flip {
                ms.reverse();
            }
            for m in ms {
                repo.put_mapping(m);
            }
            repo.pivot_chains("S1", "S2", 2, |_| true)
                .into_iter()
                .map(|c| c.pivots.join("->"))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn remove_mappings_between_works() {
        let mut repo = Repository::new();
        repo.put_mapping(mapping("A", "B", MappingKind::Manual));
        repo.put_mapping(mapping("B", "A", MappingKind::Automatic));
        repo.put_mapping(mapping("A", "C", MappingKind::Manual));
        assert_eq!(repo.remove_mappings_between("A", "B"), 2);
        assert_eq!(repo.mappings().len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut repo = Repository::new();
        repo.put_schema(schema("S1"));
        repo.put_mapping(mapping("S1", "S2", MappingKind::Manual));
        repo.put_cube(StoredCube {
            source_schema: "S1".into(),
            target_schema: "S2".into(),
            matchers: vec!["Name".into()],
            source_paths: vec!["S1.x".into()],
            target_paths: vec!["S2.x".into()],
            values: vec![0.8],
        });
        let json = repo.to_json().unwrap();
        let back = Repository::from_json(&json).unwrap();
        assert_eq!(back.schema_count(), 1);
        assert_eq!(back.mappings().len(), 1);
        assert_eq!(back.cube_count(), 1);
        assert_eq!(back.cubes_for("S1", "S2")[0].values, vec![0.8]);
    }

    #[test]
    fn save_and_load_file() {
        let mut repo = Repository::new();
        repo.put_schema(schema("S1"));
        let dir = std::env::temp_dir().join("coma_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let back = Repository::load(&path).unwrap();
        assert_eq!(back.schema_count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
