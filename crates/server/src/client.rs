//! The client half of the wire protocol: a blocking request/response
//! session over the server's unix socket, used by `coma-cli`'s client
//! mode, the CI smoke script, the throughput benchmark and the
//! integration tests.

use crate::protocol::{read_message, write_message, Request, Response};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connected client session.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a serving socket.
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    /// Connects, retrying until `timeout` elapses — for callers that
    /// just spawned the server process and race its bind.
    pub fn connect_retry(socket_path: impl AsRef<Path>, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket_path.as_ref()) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.stream, request)?;
        read_message(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the session before responding",
            )
        })
    }

    /// Like [`Client::call`], but turning the server's `Error` response
    /// into an `io::Error` — for callers that only care about success.
    pub fn call_ok(&mut self, request: &Request) -> io::Result<Response> {
        match self.call(request)? {
            Response::Error(message) => Err(io::Error::other(message)),
            response => Ok(response),
        }
    }
}
