//! Reuse-vs-fresh evaluation setup on the five-schema corpus — the
//! paper's Table 5 setting: for a given match task, every *other* task's
//! automatically obtained result is stored in a repository, and the task
//! itself is answered by transitive composition over the stored-mapping
//! graph instead of fresh matching.
//!
//! This module provides the leave-one-out plumbing; quality comparison
//! ([`crate::metrics::MatchQuality`]) and wall-time measurement live with
//! the callers (`perf_smoke` gates both).

use crate::corpus::{Corpus, SCHEMA_NAMES, TASKS};
use coma_core::{EngineConfig, MatchContext, MatchPlan, MatchStrategy, MatcherLibrary, PlanEngine};
use coma_repo::{Mapping, MappingKind, Repository};

/// Fresh paper-default match results for every corpus task, in [`TASKS`]
/// order, as storable automatic mappings. Deterministic: the engine's
/// execution is bit-stable, so these are the exact mappings a client
/// running the default operation would have stored.
pub fn fresh_task_mappings(corpus: &Corpus) -> Vec<Mapping> {
    let library = MatcherLibrary::standard();
    let engine = PlanEngine::with_config(&library, EngineConfig::default());
    let plan = MatchPlan::from(&MatchStrategy::paper_default());
    TASKS
        .iter()
        .map(|&(i, j)| {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            );
            let outcome = engine
                .execute(&ctx, &plan)
                .expect("the paper-default plan executes on the corpus");
            outcome.result.to_mapping(&ctx, MappingKind::Automatic)
        })
        .collect()
}

/// A repository for the leave-one-out reuse experiment on `exclude`:
/// all five corpus schemas (so pivot coverage denominators are real) plus
/// every stored mapping that does **not** relate the excluded pair — the
/// excluded task must be answerable only transitively, never by looking
/// its own direct result up.
pub fn reuse_repository(
    corpus: &Corpus,
    mappings: &[Mapping],
    exclude: (usize, usize),
) -> Repository {
    let mut repo = Repository::new();
    for i in 0..SCHEMA_NAMES.len() {
        repo.put_schema(corpus.schema(i).clone());
    }
    let (a, b) = (SCHEMA_NAMES[exclude.0], SCHEMA_NAMES[exclude.1]);
    for mapping in mappings {
        if mapping.relates(a, b) {
            continue;
        }
        repo.put_mapping(mapping.clone());
    }
    repo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MatchQuality;
    use coma_core::ComposeCombine;
    use std::collections::BTreeSet;

    #[test]
    fn leave_one_out_repository_never_contains_the_excluded_pair() {
        let corpus = Corpus::load();
        let mappings = fresh_task_mappings(&corpus);
        assert_eq!(mappings.len(), TASKS.len());
        for &(i, j) in &TASKS {
            let repo = reuse_repository(&corpus, &mappings, (i, j));
            assert_eq!(repo.schema_count(), SCHEMA_NAMES.len());
            assert_eq!(repo.mappings().len(), TASKS.len() - 1);
            assert!(repo
                .mappings()
                .iter()
                .all(|m| !m.relates(SCHEMA_NAMES[i], SCHEMA_NAMES[j])));
        }
    }

    /// The Table 5 claim, as a correctness floor: on every corpus task,
    /// composing the other nine stored results transitively finds pivot
    /// paths and lands within a loose F-measure band of fresh matching
    /// (the tight committed tolerance is gated in `perf_smoke`).
    #[test]
    fn composed_reuse_rivals_fresh_matching_on_every_task() {
        let corpus = Corpus::load();
        let mappings = fresh_task_mappings(&corpus);
        let library = MatcherLibrary::standard();
        let engine = PlanEngine::with_config(&library, EngineConfig::default());
        let reuse_plan =
            MatchPlan::reuse_chains(None, ComposeCombine::Average, 3).expect("max_hops >= 2");
        for (t, &(i, j)) in TASKS.iter().enumerate() {
            let repo = reuse_repository(&corpus, &mappings, (i, j));
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            )
            .with_repository(&repo);
            let outcome = engine.execute(&ctx, &reuse_plan).expect("reuse executes");
            let stats = outcome.stages[0]
                .reuse_stats
                .as_ref()
                .expect("reuse stage reports stats");
            assert!(
                !stats.paths.is_empty(),
                "task {i}->{j}: nine stored mappings over five schemas must yield a pivot path"
            );
            let names: BTreeSet<(String, String)> = outcome
                .result
                .candidates
                .iter()
                .map(|c| {
                    (
                        ctx.source_full_name(c.source.index()),
                        ctx.target_full_name(c.target.index()),
                    )
                })
                .collect();
            let gold = corpus.gold_names(i, j);
            let fresh_names: BTreeSet<(String, String)> = mappings[t]
                .correspondences
                .iter()
                .map(|c| (c.source.clone(), c.target.clone()))
                .collect();
            let reuse_q = MatchQuality::compare(&gold, &names);
            let fresh_q = MatchQuality::compare(&gold, &fresh_names);
            assert!(
                reuse_q.f_measure() >= fresh_q.f_measure() - 0.25,
                "task {i}->{j}: composed reuse F {:.3} fell far below fresh F {:.3}",
                reuse_q.f_measure(),
                fresh_q.f_measure()
            );
        }
    }
}
