//! Property-based tests for the graph substrate: random trees and DAGs must
//! satisfy the unfolding invariants COMA's matchers rely on.

use coma_graph::{Node, NodeId, PathSet, Schema, SchemaBuilder, SchemaStats};
use proptest::prelude::*;

/// Strategy: a random tree with `n` nodes. Node i>0 gets a parent < i,
/// guaranteeing acyclicity and a single root (node 0).
fn arb_tree(max_nodes: usize) -> impl Strategy<Value = Schema> {
    (1..=max_nodes).prop_flat_map(|n| {
        proptest::collection::vec(0usize..n.max(1), n.saturating_sub(1)).prop_map(move |parents| {
            let mut b = SchemaBuilder::new("T");
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(Node::new(format!("n{i}"))))
                .collect();
            for (i, &p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = p % child; // parent index strictly below child
                b.add_child(ids[parent], ids[child]).unwrap();
            }
            b.build().unwrap()
        })
    })
}

/// Strategy: a random DAG: node i>0 gets 1..=3 distinct parents < i.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = Schema> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let parent_lists = (1..n)
                .map(|i| proptest::collection::btree_set(0usize..i, 1..=3.min(i)))
                .collect::<Vec<_>>();
            (Just(n), parent_lists)
        })
        .prop_map(|(n, parent_lists)| {
            let mut b = SchemaBuilder::new("D");
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(Node::new(format!("n{i}"))))
                .collect();
            for (i, parents) in parent_lists.into_iter().enumerate() {
                let child = i + 1;
                for p in parents {
                    b.add_child(ids[p], ids[child]).unwrap();
                }
            }
            b.build().unwrap()
        })
}

/// Independent path count: product-sum recursion over the DAG.
fn count_paths_recursive(s: &Schema, node: NodeId, memo: &mut Vec<Option<u64>>) -> u64 {
    if let Some(c) = memo[node.index()] {
        return c;
    }
    // Paths ending at `node` = number of root-to-node walks; but easier to
    // count all paths in the unfolding: 1 (for this node's own path per
    // incoming walk) + sum over children. We instead count the subtree size
    // of the unfolding rooted at `node`.
    let mut total = 1u64;
    for &c in s.children(node) {
        total += count_paths_recursive(s, c, memo);
    }
    memo[node.index()] = Some(total);
    total
}

proptest! {
    #[test]
    fn tree_unfolding_has_one_path_per_node(s in arb_tree(40)) {
        let ps = PathSet::new(&s).unwrap();
        prop_assert_eq!(ps.len(), s.node_count());
        for p in ps.iter() {
            prop_assert_eq!(ps.paths_of_node(ps.node_of(p)).len(), 1);
        }
    }

    #[test]
    fn dag_unfolding_matches_recursive_count(s in arb_dag(16)) {
        let mut memo = vec![None; s.node_count()];
        let expected = count_paths_recursive(&s, s.root(), &mut memo);
        match PathSet::with_limit(&s, 1 << 16) {
            Ok(ps) => prop_assert_eq!(ps.len() as u64, expected),
            Err(_) => prop_assert!(expected > (1 << 16)),
        }
    }

    #[test]
    fn parent_chains_terminate_at_root(s in arb_dag(14)) {
        let ps = PathSet::new(&s).unwrap();
        for p in ps.iter() {
            let mut cur = p;
            let mut steps = 0;
            while let Some(parent) = ps.parent(cur) {
                cur = parent;
                steps += 1;
                prop_assert!(steps <= ps.len());
            }
            prop_assert_eq!(cur, ps.root());
            prop_assert_eq!(ps.depth(p), ps.nodes(p).len());
        }
    }

    #[test]
    fn stats_components_sum(s in arb_dag(14)) {
        let ps = PathSet::new(&s).unwrap();
        let st = SchemaStats::compute(&s, &ps);
        prop_assert_eq!(st.inner_nodes + st.leaf_nodes, st.nodes);
        prop_assert_eq!(st.inner_paths + st.leaf_paths, st.paths);
        prop_assert!(st.max_depth >= 1);
        prop_assert!(st.paths >= st.nodes);
    }

    #[test]
    fn leaves_under_partition_by_child(s in arb_dag(14)) {
        let ps = PathSet::new(&s).unwrap();
        for p in ps.iter() {
            if !ps.is_leaf(p) {
                let mut via_children: Vec<_> = ps
                    .children(p)
                    .iter()
                    .flat_map(|&c| ps.leaves_under(c))
                    .collect();
                via_children.sort();
                let mut direct = ps.leaves_under(p);
                direct.sort();
                prop_assert_eq!(via_children, direct);
            }
        }
    }

    #[test]
    fn full_names_are_unique_in_trees(s in arb_tree(30)) {
        let ps = PathSet::new(&s).unwrap();
        let mut names: Vec<String> = ps.iter().map(|p| ps.full_name(&s, p)).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), before);
    }

    #[test]
    fn topological_order_respects_all_edges(s in arb_dag(16)) {
        let order = s.topological_order();
        let mut pos = vec![0usize; s.node_count()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in s.node_ids() {
            for &c in s.children(id) {
                prop_assert!(pos[id.index()] < pos[c.index()]);
            }
        }
    }
}
