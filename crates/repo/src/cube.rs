use serde::{Deserialize, Serialize};

/// A persisted similarity cube: the `k × m × n` block of similarity values
/// one matcher execution phase produces for a match task (paper, Section 3:
/// "The result of the matcher execution phase with k matchers, m S1
/// elements and n S2 elements is a k x m x n cube of similarity values,
/// which is stored in the repository for later combination and selection
/// steps").
///
/// The repository stores cubes in a schema-independent form: paths are
/// dotted full names, values are a dense row-major array
/// (`values[(k·m + i)·n + j]`). The matcher layer converts to and from its
/// in-memory cube type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCube {
    /// Name of the source schema.
    pub source_schema: String,
    /// Name of the target schema.
    pub target_schema: String,
    /// One entry per matcher slice, in slice order.
    pub matchers: Vec<String>,
    /// Source element paths (length `m`).
    pub source_paths: Vec<String>,
    /// Target element paths (length `n`).
    pub target_paths: Vec<String>,
    /// Dense values, `matchers.len() * source_paths.len() * target_paths.len()`
    /// entries in (matcher, source, target) row-major order.
    pub values: Vec<f64>,
}

impl StoredCube {
    /// Validates the dimensional invariant.
    pub fn is_consistent(&self) -> bool {
        self.values.len() == self.matchers.len() * self.source_paths.len() * self.target_paths.len()
    }

    /// The stored value for (matcher `k`, source `i`, target `j`).
    pub fn value(&self, k: usize, i: usize, j: usize) -> f64 {
        let (m, n) = (self.source_paths.len(), self.target_paths.len());
        assert!(
            k < self.matchers.len() && i < m && j < n,
            "index out of bounds"
        );
        self.values[(k * m + i) * n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_and_indexing() {
        let cube = StoredCube {
            source_schema: "S1".into(),
            target_schema: "S2".into(),
            matchers: vec!["Name".into(), "TypeName".into()],
            source_paths: vec!["S1.a".into(), "S1.b".into(), "S1.c".into()],
            target_paths: vec!["S2.x".into(), "S2.y".into()],
            values: (0..12).map(|v| v as f64 / 12.0).collect(),
        };
        assert!(cube.is_consistent());
        assert_eq!(cube.value(0, 0, 0), 0.0);
        assert_eq!(cube.value(1, 2, 1), 11.0 / 12.0);
    }

    #[test]
    fn inconsistent_dimensions_detected() {
        let cube = StoredCube {
            source_schema: "S1".into(),
            target_schema: "S2".into(),
            matchers: vec!["Name".into()],
            source_paths: vec!["S1.a".into()],
            target_paths: vec!["S2.x".into()],
            values: vec![0.5, 0.5],
        };
        assert!(!cube.is_consistent());
    }
}
