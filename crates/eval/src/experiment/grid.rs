//! The strategy grid of Table 6: every matcher (combination) × aggregation
//! × direction × selection × combined-similarity variant the paper's
//! evaluation swept — 8,208 no-reuse plus 4,104 reuse series, 12,312 in
//! total.

use coma_core::{Aggregation, CombinedSim, Direction, Selection};
use serde::{Deserialize, Serialize};

/// The five single hybrid matchers of the no-reuse evaluation.
pub const HYBRIDS: [&str; 5] = ["Name", "NamePath", "TypeName", "Children", "Leaves"];

/// The two reuse matcher variants.
pub const REUSE: [&str; 2] = ["SchemaM", "SchemaA"];

/// One evaluation series: a matcher set and a complete strategy choice,
/// run over all ten match tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSpec {
    /// Matcher names (cube slices) combined in this series.
    pub matchers: Vec<String>,
    /// Aggregation over the matcher slices.
    pub aggregation: Aggregation,
    /// Match direction.
    pub direction: Direction,
    /// Candidate selection.
    pub selection: Selection,
    /// The step-3 strategy used *inside* the hybrid matchers (decides
    /// which cube variant the series reads).
    pub combined_sim: CombinedSim,
    /// Whether the series involves a reuse matcher.
    pub reuse: bool,
}

impl SeriesSpec {
    /// A display label like `All+SchemaM` or `NamePath+Leaves`.
    pub fn matcher_label(&self) -> String {
        let hybrid_count = self
            .matchers
            .iter()
            .filter(|m| HYBRIDS.contains(&m.as_str()))
            .count();
        let mut parts: Vec<String> = Vec::new();
        if hybrid_count == HYBRIDS.len() {
            parts.push("All".to_string());
            parts.extend(
                self.matchers
                    .iter()
                    .filter(|m| !HYBRIDS.contains(&m.as_str()))
                    .cloned(),
            );
        } else {
            parts.extend(self.matchers.iter().cloned());
        }
        parts.join("+")
    }

    /// A full label including the strategy tuple.
    pub fn label(&self) -> String {
        format!(
            "{} [{}/{}/{}/{}]",
            self.matcher_label(),
            self.aggregation,
            self.direction,
            self.selection,
            self.combined_sim
        )
    }
}

/// The 36 selection strategies of Table 6: `MaxN(1–4)`, `Delta(0.01–0.1)`,
/// `Thr(0.3–1.0)`, `Thr(0.5)+MaxN(1–4)`, `Thr(0.5)+Delta(0.01–0.1)`.
pub fn selections() -> Vec<Selection> {
    let mut out = Vec::with_capacity(36);
    for n in 1..=4 {
        out.push(Selection::max_n(n));
    }
    for d in 1..=10 {
        out.push(Selection::delta(d as f64 / 100.0));
    }
    for t in 3..=10 {
        out.push(Selection::threshold(t as f64 / 10.0));
    }
    for n in 1..=4 {
        out.push(Selection::max_n(n).with_threshold(0.5));
    }
    for d in 1..=10 {
        out.push(Selection::delta(d as f64 / 100.0).with_threshold(0.5));
    }
    out
}

/// The three aggregation strategies the study considers (Weighted was
/// excluded: "we did not want to make any assumption about the importance
/// of the individual matchers", Section 7.1).
pub fn aggregations() -> Vec<Aggregation> {
    vec![Aggregation::Max, Aggregation::Average, Aggregation::Min]
}

/// The three directions.
pub fn directions() -> Vec<Direction> {
    vec![
        Direction::LargeSmall,
        Direction::SmallLarge,
        Direction::Both,
    ]
}

/// The 16 no-reuse matcher sets: 5 singles, all 10 pair-wise combinations,
/// and `All`.
pub fn no_reuse_matcher_sets() -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = HYBRIDS.iter().map(|m| vec![m.to_string()]).collect();
    for (a, first) in HYBRIDS.iter().enumerate() {
        for second in &HYBRIDS[a + 1..] {
            out.push(vec![first.to_string(), second.to_string()]);
        }
    }
    out.push(HYBRIDS.iter().map(|m| m.to_string()).collect());
    out
}

/// The 14 reuse matcher sets: `SchemaM`/`SchemaA` alone, their pair-wise
/// combinations with the 5 hybrids, and `All+SchemaM` / `All+SchemaA`.
pub fn reuse_matcher_sets() -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = REUSE.iter().map(|m| vec![m.to_string()]).collect();
    for schema in REUSE {
        for hybrid in HYBRIDS {
            out.push(vec![schema.to_string(), hybrid.to_string()]);
        }
    }
    for schema in REUSE {
        let mut set: Vec<String> = HYBRIDS.iter().map(|m| m.to_string()).collect();
        set.push(schema.to_string());
        out.push(set);
    }
    out
}

/// Every no-reuse series (8,208): single matchers skip the aggregation
/// dimension (one slice aggregates identically under any strategy —
/// `Average` is used as the canonical representative).
pub fn no_reuse_series() -> Vec<SeriesSpec> {
    let mut out = Vec::with_capacity(8208);
    for matchers in no_reuse_matcher_sets() {
        let aggs = if matchers.len() == 1 {
            vec![Aggregation::Average]
        } else {
            aggregations()
        };
        for aggregation in &aggs {
            for direction in directions() {
                for selection in selections() {
                    for combined_sim in [CombinedSim::Average, CombinedSim::Dice] {
                        out.push(SeriesSpec {
                            matchers: matchers.clone(),
                            aggregation: aggregation.clone(),
                            direction,
                            selection: selection.clone(),
                            combined_sim,
                            reuse: false,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Every reuse series (4,104): single reuse matchers skip aggregation and
/// combined-similarity; combinations fix combined similarity to `Average`
/// (Table 6 lists only Average in the reuse CombSim column).
pub fn reuse_series() -> Vec<SeriesSpec> {
    let mut out = Vec::with_capacity(4104);
    for matchers in reuse_matcher_sets() {
        let aggs = if matchers.len() == 1 {
            vec![Aggregation::Average]
        } else {
            aggregations()
        };
        for aggregation in &aggs {
            for direction in directions() {
                for selection in selections() {
                    out.push(SeriesSpec {
                        matchers: matchers.clone(),
                        aggregation: aggregation.clone(),
                        direction,
                        selection: selection.clone(),
                        combined_sim: CombinedSim::Average,
                        reuse: true,
                    });
                }
            }
        }
    }
    out
}

/// All 12,312 series of the study.
pub fn all_series() -> Vec<SeriesSpec> {
    let mut out = no_reuse_series();
    out.extend(reuse_series());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_grid_has_36_strategies() {
        let sels = selections();
        assert_eq!(sels.len(), 36);
        // All distinct.
        for (i, a) in sels.iter().enumerate() {
            for b in &sels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn matcher_sets_match_table_6() {
        assert_eq!(no_reuse_matcher_sets().len(), 16);
        assert_eq!(reuse_matcher_sets().len(), 14);
    }

    /// The paper's series arithmetic: 8,208 no-reuse (Figure 9's
    /// "#All Series = 8208"), 4,104 reuse, 12,312 total (Section 7.1).
    #[test]
    fn series_counts_match_the_paper() {
        let no_reuse = no_reuse_series();
        let reuse = reuse_series();
        assert_eq!(no_reuse.len(), 8208);
        assert_eq!(reuse.len(), 4104);
        assert_eq!(all_series().len(), 12_312);
    }

    /// Figure 10's per-strategy series counts: 2,376 per aggregation
    /// strategy (combinations only), 2,736 per direction, 228 per
    /// selection strategy.
    #[test]
    fn figure_10_denominators() {
        let series = no_reuse_series();
        let max_count = series
            .iter()
            .filter(|s| s.aggregation == Aggregation::Max)
            .count();
        assert_eq!(max_count, 2376);
        let both_count = series
            .iter()
            .filter(|s| s.direction == Direction::Both)
            .count();
        assert_eq!(both_count, 2736);
        let sel = Selection::delta(0.02).with_threshold(0.5);
        let sel_count = series.iter().filter(|s| s.selection == sel).count();
        assert_eq!(sel_count, 228);
    }

    #[test]
    fn labels_are_readable() {
        let series = all_series();
        let all_schema_m = series
            .iter()
            .find(|s| s.matchers.len() == 6 && s.matchers.contains(&"SchemaM".to_string()))
            .unwrap();
        assert_eq!(all_schema_m.matcher_label(), "All+SchemaM");
        let pair = series
            .iter()
            .find(|s| s.matchers == vec!["Name".to_string(), "NamePath".to_string()])
            .unwrap();
        assert_eq!(pair.matcher_label(), "Name+NamePath");
        assert!(pair.label().contains('['));
    }
}
