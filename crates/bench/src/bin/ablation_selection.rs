//! Ablation (Section 7.5 future work): the stable-marriage selection
//! strategy against the paper's best selection strategies, on the default
//! `All` matcher combination with Average aggregation.

use coma_core::{stable_marriage, Aggregation, CombinedSim, Direction, Selection};
use coma_eval::experiment::grid::SeriesSpec;
use coma_eval::experiment::report::render_table;
use coma_eval::experiment::Harness;
use coma_eval::{AverageQuality, MatchQuality};

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();
    let matchers: Vec<String> = coma_eval::experiment::HYBRIDS
        .iter()
        .map(|m| m.to_string())
        .collect();

    println!("Selection ablation on the All combination (Average/Both)\n");
    let mut rows = Vec::new();

    // Paper-style selections via the sweep machinery.
    for (label, selection) in [
        (
            "Thr(0.5)+Delta(0.02)",
            Selection::delta(0.02).with_threshold(0.5),
        ),
        ("Delta(0.02)", Selection::delta(0.02)),
        ("MaxN(1)", Selection::max_n(1)),
        ("Thr(0.5)+MaxN(1)", Selection::max_n(1).with_threshold(0.5)),
        ("Thr(0.8)", Selection::threshold(0.8)),
    ] {
        let spec = SeriesSpec {
            matchers: matchers.clone(),
            aggregation: Aggregation::Average,
            direction: Direction::Both,
            selection,
            combined_sim: CombinedSim::Average,
            reuse: false,
        };
        let result = harness.evaluate(&spec);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", result.average.precision),
            format!("{:.3}", result.average.recall),
            format!("{:.3}", result.average.overall),
        ]);
    }

    // Stable marriage: a global 1:1 assignment over the aggregated matrix.
    for (label, threshold) in [("StableMarriage(0.5)", 0.5), ("StableMarriage(0.3)", 0.3)] {
        let mut qualities = Vec::new();
        for (t, data) in harness.tasks().iter().enumerate() {
            let names: Vec<&str> = matchers.iter().map(String::as_str).collect();
            let cube = data.cube_avg.select(&names);
            let matrix = Aggregation::Average.aggregate(&cube);
            let pairs = stable_marriage(&matrix, threshold);
            let tp = pairs
                .iter()
                .filter(|(i, j, _)| data.gold.contains(&(*i, *j)))
                .count();
            qualities.push(MatchQuality {
                true_positives: tp,
                false_positives: pairs.len() - tp,
                false_negatives: data.gold.len() - tp,
            });
            let _ = t;
        }
        let avg = AverageQuality::of(&qualities);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", avg.precision),
            format!("{:.3}", avg.recall),
            format!("{:.3}", avg.overall),
        ]);
    }

    println!(
        "{}",
        render_table(
            &["Selection", "avg Precision", "avg Recall", "avg Overall"],
            &rows
        )
    );
    println!("Stable marriage forces a global 1:1 matching: typically higher recall");
    println!("than Max1+threshold at some precision cost.");
}
