//! Property tests for the plan engine: for any flat matcher list and any
//! combination strategy, the engine's execution of the equivalent
//! one-stage plan is bit-identical to the legacy sequential pipeline,
//! `Par` leaf order never changes results (determinism under
//! parallelism), `TopK` only ever narrows its input, sparse and dense
//! execution of a masked plan agree bit for bit, sparse (CSR) *storage*
//! is value-identical to dense storage through aggregation, selection and
//! whole-plan execution, `Iterate` terminates within its round budget,
//! and the `CandidateIndex` leaf is a recall-preserving prefilter: its
//! uncapped candidate set covers every positive-threshold `Name`
//! selection, identically across execution configurations.

use coma::core::{
    Aggregation, Coma, CombinationStrategy, CombinedSim, DirectedCandidates, Direction,
    EngineConfig, MatchContext, MatchPlan, PlanEngine, Selection, SimCube, TopKPer,
};
use coma::graph::{PathSet, Schema};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The matcher pool property cases draw subsets from: the five hybrids
/// plus three simple matchers.
const POOL: [&str; 8] = [
    "Name", "NamePath", "TypeName", "Children", "Leaves", "Trigram", "DataType", "Synonym",
];

/// The row-shardable hybrids — the matchers the streaming-fused pruning
/// path can execute shard by shard.
const SHARDABLE: [&str; 4] = ["Name", "NamePath", "TypeName", "Leaves"];

struct Fixture {
    coma: Coma,
    source: Schema,
    target: Schema,
    source_paths: PathSet,
    target_paths: PathSet,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let source = coma::sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (
                 poNo INT,
                 custNo INT REFERENCES PO1.Customer,
                 shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
                 PRIMARY KEY (poNo));
             CREATE TABLE PO1.Customer (
                 custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
                 custCity VARCHAR(200), custZip VARCHAR(20),
                 PRIMARY KEY (custNo));",
            "PO1",
        )
        .unwrap();
        let target = coma::xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap();
        let mut coma = Coma::new();
        coma.aux_mut().synonyms = coma::core::matchers::synonym::SynonymTable::purchase_order();
        let source_paths = PathSet::new(&source).unwrap();
        let target_paths = PathSet::new(&target).unwrap();
        Fixture {
            coma,
            source,
            target,
            source_paths,
            target_paths,
        }
    })
}

/// Decodes a non-zero bitmask into a matcher subset.
fn subset(mask: usize) -> Vec<String> {
    POOL.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, name)| name.to_string())
        .collect()
}

/// Decodes the generated knobs into a combination strategy. `k` is the
/// slice count (for Weighted aggregation's per-slice weights).
#[allow(clippy::too_many_arguments)]
fn combination(
    k: usize,
    agg: usize,
    dir: usize,
    max_n: usize,
    flags: usize,
    delta: f64,
    threshold: f64,
    comb: usize,
) -> CombinationStrategy {
    CombinationStrategy {
        aggregation: match agg {
            0 => Aggregation::Max,
            1 => Aggregation::Min,
            2 => Aggregation::Average,
            _ => Aggregation::Weighted((1..=k).map(|w| w as f64).collect()),
        },
        direction: match dir {
            0 => Direction::LargeSmall,
            1 => Direction::SmallLarge,
            _ => Direction::Both,
        },
        selection: Selection {
            max_n: (max_n > 0).then_some(max_n),
            delta: (flags & 1 != 0).then_some(delta),
            threshold: (flags & 2 != 0).then_some(threshold),
        },
        combined_sim: if comb == 0 {
            CombinedSim::Average
        } else {
            CombinedSim::Dice
        },
    }
}

proptest! {
    /// Engine execution of `MatchPlan::from(strategy)` is bit-identical to
    /// the legacy sequential pipeline — combined result and cube alike.
    #[test]
    fn flat_plans_reproduce_the_legacy_pipeline(
        mask in 1usize..256,
        agg in 0usize..4,
        dir in 0usize..3,
        sel in (0usize..5, 0usize..4, 0.001f64..0.2, 0.05f64..0.9),
        comb in 0usize..2,
    ) {
        let f = fixture();
        let names = subset(mask);
        let (max_n, flags, delta, threshold) = sel;
        let strategy = combination(names.len(), agg, dir, max_n, flags, delta, threshold, comb);
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        )
        .with_repository(f.coma.repository());

        let legacy_cube = f.coma.execute_matchers(&ctx, &names).unwrap();
        let legacy_result = f.coma.combine_cube(&legacy_cube, &ctx, &strategy);

        let plan = MatchPlan::matchers_with(names, strategy);
        let outcome = PlanEngine::new(f.coma.library()).execute(&ctx, &plan).unwrap();

        prop_assert_eq!(&outcome.result, &legacy_result);
        prop_assert_eq!(outcome.final_cube().unwrap(), &legacy_cube);
    }

    /// `Par` sub-plan order never changes the aggregate result, and
    /// repeated executions are deterministic.
    #[test]
    fn par_leaf_order_is_irrelevant(
        mask in 1usize..256,
        agg in 0usize..3,
        dir in 0usize..3,
    ) {
        let f = fixture();
        let names = subset(mask);
        let strategy = combination(names.len(), agg, dir, 1, 2, 0.02, 0.3, 0);
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );

        let forward: Vec<MatchPlan> =
            names.iter().map(|n| MatchPlan::matchers([n.as_str()])).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let engine = PlanEngine::new(f.coma.library());

        let fwd = engine
            .execute(&ctx, &MatchPlan::par(forward, strategy.clone()))
            .unwrap();
        let rev = engine
            .execute(&ctx, &MatchPlan::par(reversed, strategy.clone()))
            .unwrap();
        prop_assert_eq!(&fwd.result, &rev.result);
        prop_assert_eq!(fwd.final_cube(), rev.final_cube());

        // Determinism: a re-run of the same plan is bit-identical.
        let again = engine
            .execute(&ctx, &MatchPlan::par(
                names.iter().map(|n| MatchPlan::matchers([n.as_str()])).collect::<Vec<_>>(),
                strategy,
            ))
            .unwrap();
        prop_assert_eq!(&fwd.result, &again.result);
    }

    /// `TopK` only ever narrows: its selected pairs are a subset of its
    /// input's nonzero cells, and under `Row`/`Col` pruning no element
    /// keeps more than k candidates.
    #[test]
    fn topk_output_is_a_subset_of_its_input(
        mask in 1usize..256,
        k in 1usize..5,
        per in 0usize..3,
    ) {
        let f = fixture();
        let names = subset(mask);
        let per = [TopKPer::Row, TopKPer::Col, TopKPer::Both][per];
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(6).with_threshold(0.1);
        let input = MatchPlan::matchers_with(names.iter().map(String::as_str), liberal);
        let plan = input.clone().top_k(k, per).unwrap();
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );

        let engine = PlanEngine::new(f.coma.library());
        let outcome = engine.execute(&ctx, &plan).unwrap();
        // Whether or not the engine fused the TopK with its Matchers
        // input (it does when every matcher is row-shardable), the TopK
        // stage is the last one. The input's standalone result is
        // recovered by executing the input plan on its own — execution
        // is deterministic, so it matches what TopK consumed.
        let topk_stage = outcome.stages.last().unwrap();
        let input_result = engine.execute(&ctx, &input).unwrap().result;

        // Subset of the input's selected (nonzero) pairs, values intact.
        for cand in &topk_stage.result.candidates {
            let kept = input_result.candidates.iter().find(|c| {
                c.source == cand.source && c.target == cand.target
            });
            prop_assert!(kept.is_some(), "TopK invented a pair");
            prop_assert_eq!(kept.unwrap().similarity, cand.similarity);
        }
        // The TopK stage's matrix slice has no cell outside the input's.
        for (i, j, v) in topk_stage.cube.slice(0).nonzero() {
            let source = ctx.source_elem(i);
            let target = ctx.target_elem(j);
            prop_assert_eq!(input_result.similarity_of(source, target), Some(v));
        }
        // Per-element budgets hold for the directional variants.
        if per == TopKPer::Row {
            for i in 0..ctx.rows() {
                let n = topk_stage.result.candidates.iter()
                    .filter(|c| c.source.index() == i).count();
                prop_assert!(n <= k, "row {i} kept {n} > k = {k}");
            }
        }
        if per == TopKPer::Col {
            for j in 0..ctx.cols() {
                let n = topk_stage.result.candidates.iter()
                    .filter(|c| c.target.index() == j).count();
                prop_assert!(n <= k, "col {j} kept {n} > k = {k}");
            }
        }
    }

    /// Aggregation and directed selection are storage-agnostic: running
    /// them over a cube whose slices were converted to sparse (CSR)
    /// storage yields exactly the dense results — per cell and per
    /// selected candidate — for every aggregation, direction and
    /// selection.
    #[test]
    fn aggregation_and_selection_agree_across_storages(
        mask in 1usize..256,
        agg in 0usize..4,
        dir in 0usize..3,
        sel in (0usize..5, 0usize..4, 0.001f64..0.2, 0.05f64..0.9),
    ) {
        let f = fixture();
        let names = subset(mask);
        let (max_n, flags, delta, threshold) = sel;
        let strategy = combination(names.len(), agg, dir, max_n, flags, delta, threshold, 0);
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );

        let dense_cube = f.coma.execute_matchers(&ctx, &names).unwrap();
        let mut sparse_cube = SimCube::new();
        for (k, name) in dense_cube.matcher_names().iter().enumerate() {
            sparse_cube.push(name.clone(), dense_cube.slice(k).to_sparse());
        }
        prop_assert!(sparse_cube.all_sparse());
        prop_assert_eq!(&sparse_cube, &dense_cube); // equality is by value

        let dense_agg = strategy.aggregation.aggregate(&dense_cube);
        let sparse_agg = strategy.aggregation.aggregate(&sparse_cube);
        prop_assert!(sparse_agg.is_sparse());
        prop_assert_eq!(&sparse_agg, &dense_agg);
        prop_assert_eq!(sparse_agg.to_dense(), dense_agg.clone());

        let dense_sel =
            DirectedCandidates::select(&dense_agg, strategy.direction, &strategy.selection);
        let sparse_sel =
            DirectedCandidates::select(&sparse_agg, strategy.direction, &strategy.selection);
        prop_assert_eq!(dense_sel.pairs(), sparse_sel.pairs());
        prop_assert_eq!(dense_sel, sparse_sel);
    }

    /// Sparse and dense execution of the same masked plan are
    /// bit-identical — results and every stage cube.
    #[test]
    fn sparse_and_dense_masked_plans_agree(
        mask in 1usize..256,
        k in 1usize..5,
        filter_max in 1usize..6,
    ) {
        let f = fixture();
        let names = subset(mask);
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(filter_max).with_threshold(0.2);
        let plan = MatchPlan::seq(
            MatchPlan::matchers_with(["Name"], liberal)
                .top_k(k, TopKPer::Both)
                .unwrap(),
            MatchPlan::matchers(names.iter().map(String::as_str)),
        );
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        )
        .with_repository(f.coma.repository());

        // Fusion is disabled on the sparse run so both runs materialize
        // the same stage sequence; fused ≡ unfused equivalence has its
        // own property below.
        let sparse = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_fuse_pruning(false),
        )
        .execute(&ctx, &plan)
        .unwrap();
        let dense = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_sparse(false),
        )
        .execute(&ctx, &plan)
        .unwrap();
        prop_assert_eq!(&sparse.result, &dense.result);
        prop_assert_eq!(sparse.stages.len(), dense.stages.len());
        for (a, b) in sparse.stages.iter().zip(&dense.stages) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.cube, &b.cube);
            prop_assert_eq!(&a.result, &b.result);
        }
    }

    /// Row-sharded execution is bit-identical to unsharded execution for
    /// any matcher subset, plan shape and shard count — per stage cube,
    /// per stage result, and for the final result. Shard counts cover the
    /// boundary cases the partition must survive: 1 (explicit unsharded),
    /// 2 and 7 (uneven `rows % shards`), and `rows + 1` (more shards than
    /// rows, clamped with no zero-row shard).
    #[test]
    fn sharded_execution_equals_unsharded(
        mask in 1usize..256,
        k in 1usize..5,
        shard_sel in 0usize..4,
    ) {
        let f = fixture();
        let names = subset(mask);
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(4).with_threshold(0.2);
        let plan = MatchPlan::seq(
            MatchPlan::matchers_with(names.iter().map(String::as_str), liberal)
                .top_k(k, TopKPer::Both)
                .unwrap(),
            MatchPlan::matchers(names.iter().map(String::as_str)),
        );
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        )
        .with_repository(f.coma.repository());
        let shards = [1, 2, 7, ctx.rows() + 1][shard_sel];

        let unsharded = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_shards(1),
        )
        .execute(&ctx, &plan)
        .unwrap();
        let sharded = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_shards(shards),
        )
        .execute(&ctx, &plan)
        .unwrap();
        prop_assert_eq!(&sharded.result, &unsharded.result);
        prop_assert_eq!(sharded.stages.len(), unsharded.stages.len());
        for (a, b) in sharded.stages.iter().zip(&unsharded.stages) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.cube, &b.cube);
            prop_assert_eq!(&a.result, &b.result);
        }
    }

    /// Streaming-fused pruning is bit-identical to unfused execution:
    /// for any subset of row-shardable matchers, any shard count
    /// (including more shards than rows), all three `TopKPer` modes and
    /// threshold filters (with and without a `max_n` cap), the fused
    /// compute→prune pipeline produces exactly the unfused prune stage —
    /// same final result, same stage result, same stage cube — while
    /// never materializing the inner Matchers stage.
    #[test]
    fn fused_pruning_matches_unfused(
        mask in 1usize..16,
        k in 1usize..5,
        per in 0usize..3,
        shard_sel in 0usize..4,
        dir in 0usize..3,
        prune in (0usize..3, 0.05f64..0.9),
    ) {
        let f = fixture();
        let names: Vec<String> = SHARDABLE
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| n.to_string())
            .collect();
        let direction = [Direction::LargeSmall, Direction::SmallLarge, Direction::Both][dir];
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(6).with_threshold(0.1);
        liberal.direction = direction;
        let inner = MatchPlan::matchers_with(names.iter().map(String::as_str), liberal);
        let (prune_kind, threshold) = prune;
        let plan = match prune_kind {
            0 => inner.top_k(k, [TopKPer::Row, TopKPer::Col, TopKPer::Both][per]).unwrap(),
            1 => inner.filtered(direction, Selection::max_n(k).with_threshold(threshold)),
            // Pure threshold: the fused per-column pools are unbounded.
            _ => inner.filtered(direction, Selection::threshold(threshold)),
        };
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );
        let shards = [1, 2, 7, ctx.rows() + 1][shard_sel];

        let fused = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_shards(shards),
        )
        .execute(&ctx, &plan)
        .unwrap();
        let unfused = PlanEngine::with_config(
            f.coma.library(),
            EngineConfig::default().with_fuse_pruning(false).with_shards(shards),
        )
        .execute(&ctx, &plan)
        .unwrap();

        // The fused run skipped the inner Matchers stage entirely.
        prop_assert_eq!(fused.stages.len(), 1);
        prop_assert!(fused.stages[0].fused);
        prop_assert_eq!(unfused.stages.len(), 2);
        prop_assert!(unfused.stages.iter().all(|s| !s.fused));

        prop_assert_eq!(&fused.result, &unfused.result);
        let fused_stage = &fused.stages[0];
        let unfused_stage = unfused.stages.last().unwrap();
        prop_assert_eq!(&fused_stage.label, &unfused_stage.label);
        prop_assert_eq!(&fused_stage.result, &unfused_stage.result);
        prop_assert_eq!(&fused_stage.cube, &unfused_stage.cube);
    }

    /// The inverted-index leaf is a recall-preserving prefilter (the
    /// guarantee `engine::index` documents): with `min_shared_tokens = 1`,
    /// `min_score = 0` and no per-element cap, `CandidateIndex`'s pairs
    /// are a superset of the exact `Name` Matchers stage's selection at
    /// *any* positive threshold and max-n budget — the paper-default
    /// `Name` scores a pair above zero only via a shared trigram or a
    /// dictionary-related token, and the index's gram and
    /// synonym-expanded token postings cover both channels. The leaf is
    /// also deterministic across execution configurations: sharded,
    /// parallel-off and dense-storage runs reproduce the default run bit
    /// for bit.
    #[test]
    fn candidate_index_covers_positive_name_selections(
        max_n in 1usize..8,
        threshold in 0.05f64..0.9,
        shard_sel in 0usize..4,
    ) {
        let f = fixture();
        let mut exact = CombinationStrategy::paper_default();
        exact.selection = Selection::max_n(max_n).with_threshold(threshold);
        let exact_plan = MatchPlan::matchers_with(["Name"], exact);
        let cidx_plan = MatchPlan::candidate_index_with(1, 0.0, 3, None).unwrap();
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );
        let engine = PlanEngine::new(f.coma.library());

        let selected = engine.execute(&ctx, &exact_plan).unwrap().result;
        let candidates = engine.execute(&ctx, &cidx_plan).unwrap();
        for cand in &selected.candidates {
            prop_assert!(
                candidates.result.candidates.iter().any(|c| {
                    c.source == cand.source && c.target == cand.target
                }),
                "CandidateIndex missed {:?} -> {:?} (Name sim {}, threshold {})",
                cand.source, cand.target, cand.similarity, threshold
            );
        }

        // Determinism across configurations.
        let shards = [1, 2, 7, ctx.rows() + 1][shard_sel];
        for cfg in [
            EngineConfig::default().with_shards(shards),
            EngineConfig::default().with_parallel(false),
            EngineConfig::default().with_sparse(false),
        ] {
            let again = PlanEngine::with_config(f.coma.library(), cfg)
                .execute(&ctx, &cidx_plan)
                .unwrap();
            prop_assert_eq!(&again.result, &candidates.result);
        }
    }

    /// `Iterate` always terminates within `max_rounds`, whatever the
    /// sub-plan and tolerance.
    #[test]
    fn iterate_terminates_within_max_rounds(
        mask in 1usize..256,
        max_rounds in 1usize..5,
        eps_exp in 0i32..9,
    ) {
        let f = fixture();
        let names = subset(mask);
        let epsilon = 10f64.powi(-eps_exp);
        let sub = MatchPlan::matchers(names.iter().map(String::as_str));
        let plan = sub.clone().iterate(max_rounds, epsilon).unwrap();
        let ctx = MatchContext::new(
            &f.source,
            &f.target,
            &f.source_paths,
            &f.target_paths,
            f.coma.aux(),
        );

        let outcome = PlanEngine::new(f.coma.library()).execute(&ctx, &plan).unwrap();
        let rounds = outcome.stages.iter().filter(|s| s.label == sub.label()).count();
        prop_assert!(
            (1..=max_rounds).contains(&rounds),
            "{} rounds for max {}", rounds, max_rounds
        );
        // The Iterate node contributes exactly one closing stage.
        prop_assert_eq!(outcome.stages.len(), rounds + 1);
        prop_assert_eq!(
            &outcome.stages.last().unwrap().result.candidates,
            &outcome.result.candidates
        );
    }
}

/// The storage decision is observable end to end: a `TopK(1)`-pruned mask
/// is far below the density cutoff, so the sparse engine stores the `TopK`
/// and refine stage cubes in CSR while the `with_sparse(false)` engine
/// keeps every stage dense — and both report identical values anyway. On
/// the sparse path the `TopK` additionally fuses with its `Name` input,
/// so the inner Matchers stage is never materialized at all.
#[test]
fn pruned_stages_engage_sparse_storage() {
    let f = fixture();
    let ctx = MatchContext::new(
        &f.source,
        &f.target,
        &f.source_paths,
        &f.target_paths,
        f.coma.aux(),
    );
    let mut liberal = CombinationStrategy::paper_default();
    liberal.selection = Selection::max_n(4).with_threshold(0.2);
    let plan = MatchPlan::seq(
        MatchPlan::matchers_with(["Name"], liberal)
            .top_k(1, TopKPer::Both)
            .unwrap(),
        MatchPlan::matchers(["Name", "TypeName", "Children", "Leaves"]),
    );

    let sparse = PlanEngine::new(f.coma.library())
        .execute(&ctx, &plan)
        .unwrap();
    let dense =
        PlanEngine::with_config(f.coma.library(), EngineConfig::default().with_sparse(false))
            .execute(&ctx, &plan)
            .unwrap();

    // The sparse run fuses compute→prune, so only the TopK and refine
    // stages exist — and both are CSR-stored. The dense run neither
    // fuses nor stores sparse: three stages, all dense.
    assert_eq!(sparse.stages.len(), 2);
    assert!(sparse.stages[0].fused);
    assert!(
        sparse.stages[0].cube.all_sparse(),
        "TopK stage should store sparse, got {}",
        sparse.stages[0].cube.storage_summary()
    );
    assert!(
        sparse.stages[1].cube.all_sparse(),
        "refine stage should store sparse, got {}",
        sparse.stages[1].cube.storage_summary()
    );
    assert_eq!(dense.stages.len(), 3);
    for stage in &dense.stages {
        assert_eq!(stage.cube.storage_summary(), "dense");
        assert!(!stage.fused);
    }
    // Sparse storage holds a fraction of the cells yet equal values,
    // stage for stage (matched by label across the differing counts).
    let (s, d) = (&sparse.stages[1].cube, &dense.stages[2].cube);
    assert_eq!(sparse.stages[1].label, dense.stages[2].label);
    assert_eq!(sparse.stages[0].label, dense.stages[1].label);
    assert_eq!(sparse.stages[0].cube, dense.stages[1].cube);
    assert!(s.stored_entries() * 2 < d.stored_entries());
    assert_eq!(s, d);
    assert_eq!(sparse.result, dense.result);
}

/// Fused pruning survives degenerate `0 × n`, `m × 0` and `0 × 0` match
/// tasks: the fused stage still reports `fused`, yields an empty result
/// and stores no cells.
#[test]
fn fused_pruning_handles_empty_tasks() {
    let f = fixture();
    let none = PathSet::empty();
    let plans = [
        MatchPlan::matchers(["Name", "Leaves"])
            .top_k(2, TopKPer::Both)
            .unwrap(),
        MatchPlan::matchers(["Name"]).filtered(Direction::Both, Selection::threshold(0.3)),
    ];
    let contexts = [
        MatchContext::new(&f.source, &f.target, &none, &f.target_paths, f.coma.aux()),
        MatchContext::new(&f.source, &f.target, &f.source_paths, &none, f.coma.aux()),
        MatchContext::new(&f.source, &f.target, &none, &none, f.coma.aux()),
    ];
    for (which, ctx) in contexts.iter().enumerate() {
        for plan in &plans {
            let outcome = PlanEngine::new(f.coma.library())
                .execute(ctx, plan)
                .unwrap_or_else(|e| panic!("task {which} failed: {e}"));
            assert_eq!(outcome.stages.len(), 1, "task {which}");
            assert!(outcome.stages[0].fused, "task {which} did not fuse");
            assert!(outcome.result.is_empty(), "task {which}");
            assert_eq!(outcome.stages[0].cube.stored_entries(), 0);
        }
    }
}
