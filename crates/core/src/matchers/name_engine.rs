//! The token-set similarity engine behind the hybrid name matchers.

use crate::combine::{Aggregation, CombinedSim, DirectedCandidates, Direction, Selection};
use crate::cube::SimMatrix;
use crate::matchers::context::Auxiliary;
use coma_strings::{
    affix_similarity, edit_distance_similarity, ngram_similarity, soundex_similarity, tokenize,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A token-level simple matcher usable inside the hybrid `Name` matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenMatcher {
    /// Common prefix/suffix similarity.
    Affix,
    /// n-gram similarity with the given n (Digram = 2, Trigram = 3).
    NGram(usize),
    /// Levenshtein similarity.
    EditDistance,
    /// Phonetic similarity via Soundex.
    Soundex,
    /// Dictionary lookup in the synonym table.
    Synonym,
}

impl TokenMatcher {
    /// Similarity of two tokens under this matcher.
    pub fn similarity(self, a: &str, b: &str, aux: &Auxiliary) -> f64 {
        match self {
            TokenMatcher::Affix => affix_similarity(a, b),
            TokenMatcher::NGram(n) => ngram_similarity(a, b, n),
            TokenMatcher::EditDistance => edit_distance_similarity(a, b),
            TokenMatcher::Soundex => soundex_similarity(a, b),
            TokenMatcher::Synonym => aux.synonyms.similarity(a, b),
        }
    }
}

impl fmt::Display for TokenMatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenMatcher::Affix => f.write_str("Affix"),
            TokenMatcher::NGram(2) => f.write_str("Digram"),
            TokenMatcher::NGram(3) => f.write_str("Trigram"),
            TokenMatcher::NGram(n) => write!(f, "{n}-gram"),
            TokenMatcher::EditDistance => f.write_str("EditDistance"),
            TokenMatcher::Soundex => f.write_str("Soundex"),
            TokenMatcher::Synonym => f.write_str("Synonym"),
        }
    }
}

/// The token-set similarity engine shared by the hybrid `Name` and
/// `NamePath` matchers (paper, Sections 4.2 and 6.4).
///
/// A name is tokenized and abbreviation-expanded into a token set; multiple
/// token matchers produce a token-level similarity cube that is combined
/// with the usual three steps. The paper's default (Table 4):
/// constituents `Trigram` + `Synonym`, aggregation `Max`, direction `Both`
/// with selection `Max1`, combined similarity `Average`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameEngine {
    /// Token-level constituent matchers.
    pub token_matchers: Vec<TokenMatcher>,
    /// Step 1 over the token cube.
    pub aggregation: Aggregation,
    /// Step 2a over the token matrix (the paper presupposes `Both`).
    pub direction: Direction,
    /// Step 2b over the token matrix.
    pub selection: Selection,
    /// Step 3: combined similarity over the token sets.
    pub combined: CombinedSim,
}

impl NameEngine {
    /// The paper's default configuration (Table 4, row `Name`).
    pub fn paper_default() -> NameEngine {
        NameEngine {
            token_matchers: vec![TokenMatcher::NGram(3), TokenMatcher::Synonym],
            aggregation: Aggregation::Max,
            direction: Direction::Both,
            selection: Selection::max_n(1),
            combined: CombinedSim::Average,
        }
    }

    /// Tokenizes and abbreviation-expands a name into its token set
    /// (duplicates removed, first occurrence order kept).
    pub fn token_set(&self, name: &str, aux: &Auxiliary) -> Vec<String> {
        let expanded = aux.abbreviations.expand(&tokenize(name));
        let mut seen = Vec::with_capacity(expanded.len());
        for t in expanded {
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        seen
    }

    /// The aggregated constituent similarity of one token pair: every
    /// token matcher's (clamped) similarity folded with the engine's
    /// aggregation — the cell the cube-based formulation produces, without
    /// materializing a per-pair cube.
    ///
    /// # Panics
    /// Panics if the engine has no token matchers (nothing to aggregate).
    pub fn token_pair_similarity(&self, a: &str, b: &str, aux: &Auxiliary) -> f64 {
        assert!(
            !self.token_matchers.is_empty(),
            "cannot aggregate an empty token-matcher list"
        );
        let sims: Vec<f64> = self
            .token_matchers
            .iter()
            .map(|tm| tm.similarity(a, b, aux).clamp(0.0, 1.0))
            .collect();
        let value = match &self.aggregation {
            Aggregation::Max => sims.iter().copied().fold(f64::MIN, f64::max),
            Aggregation::Min => sims.iter().copied().fold(f64::MAX, f64::min),
            Aggregation::Average => sims.iter().sum::<f64>() / sims.len() as f64,
            Aggregation::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    sims.len(),
                    "Weighted aggregation needs one weight per token matcher"
                );
                let total: f64 = weights.iter().sum();
                assert!(total > 0.0, "weights must not sum to zero");
                sims.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total
            }
        };
        value.clamp(0.0, 1.0)
    }

    /// Steps 2+3 over a pre-computed token-pair similarity matrix (cell
    /// `(i, j)` = [`NameEngine::token_pair_similarity`] of `t1[i]`,
    /// `t2[j]`). Factored out so callers holding a distinct-token table
    /// (see the `Name`/`TypeName` dense paths) skip recomputing token
    /// sims per name pair.
    pub fn combine_token_sims(&self, t1: &[String], t2: &[String], sims: &SimMatrix) -> f64 {
        if t1.is_empty() && t2.is_empty() {
            return 1.0;
        }
        if t1.is_empty() || t2.is_empty() {
            return 0.0;
        }
        if t1 == t2 {
            return 1.0;
        }
        // The paper-default `Both`/`Max1` combination runs once per
        // distinct name pair of a match task — take the shared
        // allocation-free pipeline (value-identical to select + compute;
        // cells already carry the clamped token-pair values).
        if self.direction == Direction::Both
            && self.selection == Selection::max_n(1)
            && !sims.is_sparse()
            && (sims.rows(), sims.cols()) == (t1.len(), t2.len())
        {
            let values = sims.values();
            let n = t2.len();
            return crate::combine::max1_both_combined(
                t1.len(),
                n,
                |i, j| values[i * n + j],
                self.combined,
            );
        }
        let candidates = DirectedCandidates::select(sims, self.direction, &self.selection);
        self.combined.compute(&candidates, t1.len(), t2.len())
    }

    /// Combined similarity of two pre-computed token sets.
    pub fn token_set_similarity(&self, t1: &[String], t2: &[String], aux: &Auxiliary) -> f64 {
        if t1.is_empty() && t2.is_empty() {
            return 1.0;
        }
        if t1.is_empty() || t2.is_empty() {
            return 0.0;
        }
        if t1 == t2 {
            return 1.0;
        }
        let mut matrix = SimMatrix::new(t1.len(), t2.len());
        for (i, a) in t1.iter().enumerate() {
            for (j, b) in t2.iter().enumerate() {
                matrix.set(i, j, self.token_pair_similarity(a, b, aux));
            }
        }
        self.combine_token_sims(t1, t2, &matrix)
    }

    /// Name-level similarity (tokenize + expand + combine).
    pub fn similarity(&self, a: &str, b: &str, aux: &Auxiliary) -> f64 {
        let t1 = self.token_set(a, aux);
        let t2 = self.token_set(b, aux);
        self.token_set_similarity(&t1, &t2, aux)
    }
}

impl Default for NameEngine {
    fn default() -> Self {
        NameEngine::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::synonym::SynonymTable;

    fn aux() -> Auxiliary {
        let mut a = Auxiliary::standard();
        a.synonyms = SynonymTable::purchase_order();
        a
    }

    #[test]
    fn identical_names_score_1() {
        let e = NameEngine::paper_default();
        assert_eq!(e.similarity("shipToCity", "shipToCity", &aux()), 1.0);
    }

    #[test]
    fn ship_to_matches_deliver_to_via_synonym() {
        // Section 6.4's motivating case: Trigram finds nothing for
        // Ship/Deliver, Synonym does; Max aggregation lets it through.
        let e = NameEngine::paper_default();
        let sim = e.similarity("ShipTo", "DeliverTo", &aux());
        assert!(sim > 0.9, "ShipTo vs DeliverTo: {sim}");
        // Without the synonym table the similarity collapses.
        let plain = Auxiliary::standard();
        let sim_plain = e.similarity("ShipTo", "DeliverTo", &plain);
        assert!(sim_plain < 0.6, "without synonyms: {sim_plain}");
    }

    #[test]
    fn po_expansion_helps() {
        // PO → Purchase Order (abbreviation expansion, Section 4.2).
        let e = NameEngine::paper_default();
        let sim = e.similarity("POShipTo", "PurchaseOrderShipTo", &aux());
        assert!(sim > 0.95, "{sim}");
    }

    #[test]
    fn partial_token_overlap_scores_between_0_and_1() {
        let e = NameEngine::paper_default();
        let sim = e.similarity("shipToCity", "custCity", &aux());
        assert!(sim > 0.2 && sim < 0.8, "{sim}");
    }

    #[test]
    fn unrelated_names_score_low() {
        let e = NameEngine::paper_default();
        let sim = e.similarity("poNo", "street", &aux());
        assert!(sim < 0.3, "{sim}");
    }

    #[test]
    fn token_sets_dedup_and_expand() {
        let e = NameEngine::paper_default();
        let toks = e.token_set("shipToShipDate", &aux());
        assert_eq!(toks, vec!["ship", "to", "date"]);
    }

    #[test]
    fn cached_similarity_is_consistent() {
        // The memoized path (NameSimCache, as used by the hybrid matchers)
        // agrees with the direct computation.
        let e = NameEngine::paper_default();
        let a = aux();
        let mut cache = crate::engine::NameSimCache::local();
        let s1 = cache.get_or_compute("ShipTo", "DeliverTo", || {
            e.similarity("ShipTo", "DeliverTo", &a)
        });
        let s2 = cache.get_or_compute("ShipTo", "DeliverTo", || panic!("must hit the cache"));
        assert_eq!(s1, s2);
        assert_eq!(s1, e.similarity("ShipTo", "DeliverTo", &a));
    }

    /// The `Both`/`Max1` fast path inside `combine_token_sims` computes
    /// exactly what the generic select + compute pipeline computes.
    #[test]
    fn combine_fast_path_matches_generic_pipeline() {
        use crate::combine::DirectedCandidates;
        let toks =
            |names: &[&str]| -> Vec<String> { names.iter().map(|s| s.to_string()).collect() };
        let t1 = toks(&["ship", "to", "city"]);
        let t2 = toks(&["deliver", "town"]);
        let mut sims = SimMatrix::new(3, 2);
        sims.set(0, 0, 1.0); // ship ↔ deliver (synonym)
        sims.set(2, 1, 0.5); // city ↔ town
        sims.set(1, 1, 0.5); // exact tie: first index must win
        for combined in [CombinedSim::Average, CombinedSim::Dice] {
            let engine = NameEngine {
                combined,
                ..NameEngine::paper_default()
            };
            let fast = engine.combine_token_sims(&t1, &t2, &sims);
            let cands = DirectedCandidates::select(&sims, engine.direction, &engine.selection);
            let generic = engine.combined.compute(&cands, t1.len(), t2.len());
            assert_eq!(fast, generic, "{combined:?}");
        }
    }

    #[test]
    fn empty_name_conventions() {
        let e = NameEngine::paper_default();
        assert_eq!(e.similarity("", "", &aux()), 1.0);
        assert_eq!(e.similarity("", "x", &aux()), 0.0);
    }
}
