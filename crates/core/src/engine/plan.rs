//! The composable match-plan operator tree.
//!
//! A [`MatchPlan`] generalizes the flat [`MatchStrategy`] ("run these
//! matchers, combine once") into a tree of operators, the shape Peukert &
//! Rahm later formalized as rule-constructed matching processes:
//!
//! ```text
//! plan ::= Matchers(name, …; combination)          leaf fan-out
//!        | CandidateIndex(min_tok, min_score; q, cap)   inverted-index retrieval leaf
//!        | Seq(plan → plan)                        filter, then refine
//!        | Par(plan ∥ plan ∥ …; combination)       aggregate sub-plans
//!        | Filter(plan; direction, selection)      re-select mid-pipeline
//!        | TopK(plan; k, per)                      top-k pruning
//!        | Iterate(plan; max_rounds, epsilon)      refine to a fixpoint
//!        | Reuse(kind; compose; max_hops; combination)  repository pivot chains
//! ```
//!
//! Flat strategies convert losslessly: `MatchPlan::from(strategy)` is a
//! one-stage `Matchers` plan that the engine executes with results
//! identical to the legacy sequential path.

use crate::combine::{CombinationStrategy, CombinedSim, Direction, Selection};
use crate::error::{CoreError, Result};
use crate::matchers::MatcherLibrary;
use crate::process::MatchStrategy;
use crate::reuse::ComposeCombine;
use coma_repo::MappingKind;
use std::fmt;

/// Which side of the pair space a [`MatchPlan::TopK`] node prunes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopKPer {
    /// Keep the `k` best candidates of every source element (per row).
    Row,
    /// Keep the `k` best candidates of every target element (per column).
    Col,
    /// Keep a pair if it is among the `k` best of its row **or** its
    /// column — every element of either schema keeps its `k` best, so
    /// pruning never strands a node without candidates.
    Both,
}

impl fmt::Display for TopKPer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKPer::Row => f.write_str("Row"),
            TopKPer::Col => f.write_str("Col"),
            TopKPer::Both => f.write_str("Both"),
        }
    }
}

/// The kind of structural defect a [`PlanError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanErrorKind {
    /// A `Matchers` leaf with an empty matcher list: no cube to aggregate.
    EmptyMatchers,
    /// A `Par` node with no sub-plans: no slices to aggregate.
    EmptyPar,
    /// A `TopK` node with `k == 0`: it would disallow every pair.
    ZeroTopK,
    /// An `Iterate` node with `max_rounds == 0`: it would never run its
    /// sub-plan, leaving no result.
    ZeroIterations,
    /// An `Iterate` node with a negative or non-finite epsilon.
    InvalidEpsilon,
    /// A `CandidateIndex` leaf with `min_shared_tokens == 0`: every pair
    /// would qualify, silently reintroducing the O(m×n) scan the leaf
    /// exists to avoid.
    ZeroMinSharedTokens,
    /// A `CandidateIndex` leaf with a negative, non-finite or > 1
    /// `min_score`.
    InvalidMinScore,
    /// A `CandidateIndex` leaf with `per_element == Some(0)`: it would
    /// drop every candidate.
    ZeroCandidateCap,
    /// A `Reuse` leaf with `max_hops < 2`: a chain needs at least two
    /// stored mappings (source→pivot→target) to compose anything.
    InvalidReuseHops,
}

impl PlanErrorKind {
    /// Stable diagnostic code, shared with the analyzer's
    /// [`PlanDiagnostic`](super::PlanDiagnostic)s and the server's wire
    /// frames.
    pub fn code(self) -> &'static str {
        match self {
            PlanErrorKind::EmptyMatchers => "E_EMPTY_MATCHERS",
            PlanErrorKind::EmptyPar => "E_EMPTY_PAR",
            PlanErrorKind::ZeroTopK => "E_TOPK_ZERO",
            PlanErrorKind::ZeroIterations => "E_ITERATE_ZERO_ROUNDS",
            PlanErrorKind::InvalidEpsilon => "E_ITERATE_EPSILON",
            PlanErrorKind::ZeroMinSharedTokens => "E_CIDX_MIN_TOKENS",
            PlanErrorKind::InvalidMinScore => "E_CIDX_MIN_SCORE",
            PlanErrorKind::ZeroCandidateCap => "E_CIDX_ZERO_CAP",
            PlanErrorKind::InvalidReuseHops => "E_REUSE_HOPS",
        }
    }
}

impl fmt::Display for PlanErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanErrorKind::EmptyMatchers => {
                f.write_str("`Matchers` node has an empty matcher list")
            }
            PlanErrorKind::EmptyPar => f.write_str("`Par` node has no sub-plans"),
            PlanErrorKind::ZeroTopK => f.write_str("`TopK` node has k = 0 (would drop every pair)"),
            PlanErrorKind::ZeroIterations => f.write_str("`Iterate` node has max_rounds = 0"),
            PlanErrorKind::InvalidEpsilon => {
                f.write_str("`Iterate` node has a negative or non-finite epsilon")
            }
            PlanErrorKind::ZeroMinSharedTokens => f.write_str(
                "`CandidateIndex` leaf has min_shared_tokens = 0 (would admit every pair)",
            ),
            PlanErrorKind::InvalidMinScore => {
                f.write_str("`CandidateIndex` leaf has a min_score outside [0, 1]")
            }
            PlanErrorKind::ZeroCandidateCap => f.write_str(
                "`CandidateIndex` leaf has per_element = Some(0) (would drop every candidate)",
            ),
            PlanErrorKind::InvalidReuseHops => {
                f.write_str("`Reuse` leaf has max_hops < 2 (a chain needs source→pivot→target)")
            }
        }
    }
}

/// A structurally degenerate plan shape, rejected at construction /
/// validation time instead of panicking or silently no-op'ing inside
/// [`PlanEngine::execute`](super::PlanEngine::execute).
///
/// Every error carries the **path** of the offending node in the tree
/// (e.g. `Seq[1].TopK`: the `TopK` node that is child 1 of the root
/// `Seq`), so CLI and server diagnostics point at the node, not just the
/// kind. Errors produced by the builder constructors use the node's own
/// kind as the path (the node is the root of what was being built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    kind: PlanErrorKind,
    path: String,
}

impl PlanError {
    /// An error of `kind` located at `path` in the plan tree.
    pub fn new(kind: PlanErrorKind, path: impl Into<String>) -> PlanError {
        PlanError {
            kind,
            path: path.into(),
        }
    }

    /// What is wrong.
    pub fn kind(&self) -> PlanErrorKind {
        self.kind
    }

    /// Where in the tree, e.g. `Seq[1].TopK` (root node: its bare kind).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Stable diagnostic code (delegates to [`PlanErrorKind::code`]).
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at `{}`: {}", self.path, self.kind)
    }
}

impl std::error::Error for PlanError {}

/// A composable match plan: an operator tree executed by
/// [`PlanEngine`](super::PlanEngine).
#[derive(Debug, Clone, PartialEq)]
pub enum MatchPlan {
    /// Leaf fan-out: execute the named library matchers (in parallel when
    /// possible) and combine their cube with `combination`.
    Matchers {
        /// Library names of the matchers to execute.
        matchers: Vec<String>,
        /// Aggregation + direction + selection + combined similarity.
        combination: CombinationStrategy,
    },
    /// Inverted-index retrieval leaf: generate the candidate pairs from
    /// shared token/q-gram postings of the per-side vocabulary indexes
    /// (see [`VocabIndex`](super::VocabIndex)) instead of scoring the
    /// m×n cross product. As the filter side of a [`MatchPlan::Seq`],
    /// the emitted pairs become the [`PairMask`](super::PairMask) that
    /// restricts the refine stage — the only first-stage operator whose
    /// cost is proportional to posting traffic, not to m×n.
    ///
    /// With `min_shared_tokens = 1`, `min_score = 0` and no cap, the
    /// candidates are a superset of every pair the paper-default `Name`
    /// matcher scores above zero (recall guarantee; see the engine's
    /// candidate-generation docs).
    CandidateIndex {
        /// Minimum shared (synonym-expanded) tokens to qualify via the
        /// token channel; a shared q-gram qualifies a pair regardless.
        /// Must be ≥ 1.
        min_shared_tokens: usize,
        /// Candidates scoring below this (IDF-weighted token cosine vs.
        /// q-gram Dice, whichever is higher) are dropped.
        min_score: f64,
        /// Gram length of the fuzzy channel (0 disables it; 3 is the
        /// `Trigram`-compatible default).
        q: usize,
        /// When set, each element of either side keeps only its best
        /// `cap` candidates (union, like [`TopKPer::Both`]), bounding
        /// the mask at O(cap·(m+n)) pairs.
        per_element: Option<usize>,
    },
    /// Staged refinement: execute `filter`, then execute `refine` with the
    /// search space restricted to the pairs `filter` selected. User
    /// feedback pins survive the restriction (accepted matches resurface
    /// even if the filter dropped them).
    Seq {
        /// The earlier, typically cheap stage.
        filter: Box<MatchPlan>,
        /// The later, typically expensive stage, run on the survivors.
        refine: Box<MatchPlan>,
    },
    /// Parallel sub-plans: each sub-plan's selected pairs become one slice
    /// of a plan-level cube that `combination` aggregates and re-selects.
    /// Slices are ordered by sub-plan label, so the order in `plans` never
    /// affects the result — except under `Weighted` aggregation, whose
    /// weights pair with sub-plans positionally: there, declaration order
    /// is kept (and meaningful).
    Par {
        /// The independent sub-plans.
        plans: Vec<MatchPlan>,
        /// The combination applied across the sub-plan slices.
        combination: CombinationStrategy,
    },
    /// Mid-pipeline re-selection: re-ranks the pairs `input` selected
    /// under a (typically stricter) direction + selection.
    ///
    /// When `input` is a [`MatchPlan::Matchers`] leaf of row-shardable
    /// matchers, the context is unrestricted and `selection` carries a
    /// threshold or cap, the engine fuses compute→prune per row shard
    /// (see [`EngineConfig::fuse_pruning`](super::EngineConfig)) — the
    /// inner leaf's full matrix is never materialized.
    Filter {
        /// The plan whose result is filtered.
        input: Box<MatchPlan>,
        /// Match direction for the re-selection.
        direction: Direction,
        /// The selection criteria applied to the input's pairs.
        selection: Selection,
        /// Recomputes the schema similarity of the filtered result.
        combined_sim: CombinedSim,
    },
    /// Top-k pruning: keep only the `k` best candidates per source/target
    /// element of `input`'s result. Used as the filter side of a
    /// [`MatchPlan::Seq`], the surviving pairs materialize as a
    /// [`PairMask`](super::PairMask) restriction for the downstream
    /// stages, which the engine then executes on its sparse path.
    ///
    /// Like [`MatchPlan::Filter`], a `TopK` over an unrestricted
    /// [`MatchPlan::Matchers`] leaf of row-shardable matchers executes
    /// streaming-fused: pruning runs inside each row shard and the
    /// inner leaf's dense matrix is never allocated (see
    /// [`EngineConfig::fuse_pruning`](super::EngineConfig)).
    TopK {
        /// The plan whose result is pruned.
        input: Box<MatchPlan>,
        /// How many candidates each element keeps.
        k: usize,
        /// Prune per source element, per target element, or both.
        per: TopKPer,
    },
    /// Iterative refinement (COMA's iterate-until-stable loop): re-run
    /// `plan`, each round restricted to the previous round's survivors,
    /// until the selected-pair similarity matrix changes by less than
    /// `epsilon` (max-norm) or `max_rounds` rounds have run.
    Iterate {
        /// The sub-plan executed every round.
        plan: Box<MatchPlan>,
        /// Upper bound on the number of rounds (termination guarantee).
        max_rounds: usize,
        /// Convergence tolerance on the max-norm of the round-over-round
        /// matrix delta.
        epsilon: f64,
    },
    /// Reuse leaf: compose stored mappings over repository pivot schemas
    /// (the paper's `Schema` reuse matcher) and combine the resulting
    /// similarity slice.
    Reuse {
        /// Restricts which stored mappings qualify (`None` = all).
        kind: Option<MappingKind>,
        /// Transitive-similarity combination along `S1↔S↔S2` chains.
        compose: ComposeCombine,
        /// Maximum stored mappings per pivot chain (≥ 2; 2 = the paper's
        /// single-pivot `Schema` matcher).
        max_hops: usize,
        /// The combination applied to the reuse slice.
        combination: CombinationStrategy,
    },
}

impl MatchPlan {
    /// A leaf plan executing `matchers` with the paper-default combination.
    pub fn matchers<S: Into<String>>(matchers: impl IntoIterator<Item = S>) -> MatchPlan {
        MatchPlan::Matchers {
            matchers: matchers.into_iter().map(Into::into).collect(),
            combination: CombinationStrategy::paper_default(),
        }
    }

    /// A leaf plan with an explicit combination.
    pub fn matchers_with<S: Into<String>>(
        matchers: impl IntoIterator<Item = S>,
        combination: CombinationStrategy,
    ) -> MatchPlan {
        MatchPlan::Matchers {
            matchers: matchers.into_iter().map(Into::into).collect(),
            combination,
        }
    }

    /// An inverted-index candidate-generation leaf with the recall-safe
    /// defaults: trigram fuzzy channel (`q = 3`), no per-element cap.
    /// Fails with [`PlanErrorKind::ZeroMinSharedTokens`] for
    /// `min_shared_tokens == 0` and [`PlanErrorKind::InvalidMinScore`] for a
    /// `min_score` outside `[0, 1]`.
    pub fn candidate_index(
        min_shared_tokens: usize,
        min_score: f64,
    ) -> std::result::Result<MatchPlan, PlanError> {
        MatchPlan::candidate_index_with(min_shared_tokens, min_score, 3, None)
    }

    /// An inverted-index leaf with an explicit gram length (`q = 0`
    /// disables the fuzzy channel) and optional per-element candidate cap
    /// (rejected when `Some(0)`, which would drop everything).
    pub fn candidate_index_with(
        min_shared_tokens: usize,
        min_score: f64,
        q: usize,
        per_element: Option<usize>,
    ) -> std::result::Result<MatchPlan, PlanError> {
        let plan = MatchPlan::CandidateIndex {
            min_shared_tokens,
            min_score,
            q,
            per_element,
        };
        plan.validate_shape()?;
        Ok(plan)
    }

    /// A two-stage `filter → refine` plan.
    pub fn seq(filter: MatchPlan, refine: MatchPlan) -> MatchPlan {
        MatchPlan::Seq {
            filter: Box::new(filter),
            refine: Box::new(refine),
        }
    }

    /// A parallel aggregation of sub-plans.
    pub fn par(
        plans: impl IntoIterator<Item = MatchPlan>,
        combination: CombinationStrategy,
    ) -> MatchPlan {
        MatchPlan::Par {
            plans: plans.into_iter().collect(),
            combination,
        }
    }

    /// Wraps a plan in a mid-pipeline re-selection.
    pub fn filtered(self, direction: Direction, selection: Selection) -> MatchPlan {
        MatchPlan::Filter {
            input: Box::new(self),
            direction,
            selection,
            combined_sim: CombinedSim::Average,
        }
    }

    /// Wraps a plan in a top-k pruning step: every source/target element
    /// (per `per`) keeps only its `k` best candidates. Fails with
    /// [`PlanErrorKind::ZeroTopK`] for `k == 0` — a plan that drops every
    /// pair is a construction bug, not a useful pipeline.
    pub fn top_k(self, k: usize, per: TopKPer) -> std::result::Result<MatchPlan, PlanError> {
        if k == 0 {
            return Err(PlanError::new(PlanErrorKind::ZeroTopK, "TopK"));
        }
        Ok(MatchPlan::TopK {
            input: Box::new(self),
            k,
            per,
        })
    }

    /// Wraps a plan in an iterate-until-stable loop: re-run it (each round
    /// restricted to the previous round's survivors) until the result
    /// matrix moves by less than `epsilon` or `max_rounds` rounds have
    /// run. Fails with [`PlanErrorKind::ZeroIterations`] for `max_rounds == 0`
    /// and [`PlanErrorKind::InvalidEpsilon`] for a negative or non-finite
    /// tolerance.
    pub fn iterate(
        self,
        max_rounds: usize,
        epsilon: f64,
    ) -> std::result::Result<MatchPlan, PlanError> {
        if max_rounds == 0 {
            return Err(PlanError::new(PlanErrorKind::ZeroIterations, "Iterate"));
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(PlanError::new(PlanErrorKind::InvalidEpsilon, "Iterate"));
        }
        Ok(MatchPlan::Iterate {
            plan: Box::new(self),
            max_rounds,
            epsilon,
        })
    }

    /// A reuse leaf with the paper's defaults (Average compose, default
    /// combination, single-pivot chains) over mappings of the given kind.
    pub fn reuse(kind: Option<MappingKind>) -> MatchPlan {
        MatchPlan::Reuse {
            kind,
            compose: ComposeCombine::Average,
            max_hops: 2,
            combination: CombinationStrategy::paper_default(),
        }
    }

    /// A reuse leaf composing stored-mapping chains up to `max_hops`
    /// mappings long. Fails with [`PlanErrorKind::InvalidReuseHops`] for
    /// `max_hops < 2` (a chain needs at least source→pivot→target).
    pub fn reuse_chains(
        kind: Option<MappingKind>,
        compose: ComposeCombine,
        max_hops: usize,
    ) -> std::result::Result<MatchPlan, PlanError> {
        if max_hops < 2 {
            return Err(PlanError::new(PlanErrorKind::InvalidReuseHops, "Reuse"));
        }
        Ok(MatchPlan::Reuse {
            kind,
            compose,
            max_hops,
            combination: CombinationStrategy::paper_default(),
        })
    }

    /// The canonical two-stage shape a flat strategy cannot express: a
    /// cheap name-based filter whose survivors restrict the expensive
    /// refine stage.
    ///
    /// `filter_matchers` run under a liberal selection (`selection` decides
    /// which pairs survive); the `refine` strategy then re-scores only the
    /// surviving pairs and makes the final selection.
    pub fn two_stage<S: Into<String>>(
        filter_matchers: impl IntoIterator<Item = S>,
        filter_selection: Selection,
        refine: &MatchStrategy,
    ) -> MatchPlan {
        let mut filter_combination = CombinationStrategy::paper_default();
        filter_combination.selection = filter_selection;
        MatchPlan::seq(
            MatchPlan::matchers_with(filter_matchers, filter_combination),
            MatchPlan::from(refine.clone()),
        )
    }

    /// All matcher names referenced anywhere in the tree, in first-use
    /// order (duplicates removed).
    pub fn matcher_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        self.collect_names(&mut names);
        names
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            MatchPlan::Matchers { matchers, .. } => {
                for m in matchers {
                    if !out.contains(&m.as_str()) {
                        out.push(m);
                    }
                }
            }
            MatchPlan::Seq { filter, refine } => {
                filter.collect_names(out);
                refine.collect_names(out);
            }
            MatchPlan::Par { plans, .. } => {
                for p in plans {
                    p.collect_names(out);
                }
            }
            MatchPlan::Filter { input, .. } => input.collect_names(out),
            MatchPlan::TopK { input, .. } => input.collect_names(out),
            MatchPlan::Iterate { plan, .. } => plan.collect_names(out),
            MatchPlan::Reuse { .. } | MatchPlan::CandidateIndex { .. } => {}
        }
    }

    /// The node's operator kind, as used in error/diagnostic node paths.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MatchPlan::Matchers { .. } => "Matchers",
            MatchPlan::CandidateIndex { .. } => "CandidateIndex",
            MatchPlan::Seq { .. } => "Seq",
            MatchPlan::Par { .. } => "Par",
            MatchPlan::Filter { .. } => "Filter",
            MatchPlan::TopK { .. } => "TopK",
            MatchPlan::Iterate { .. } => "Iterate",
            MatchPlan::Reuse { .. } => "Reuse",
        }
    }

    /// The node's direct sub-plans, in child-index order (`Seq` = `[filter,
    /// refine]`). Node paths index into this order: `Seq[1].TopK` is the
    /// `TopK` node at `self.children()[1]` of a root `Seq`.
    pub fn children(&self) -> Vec<&MatchPlan> {
        match self {
            MatchPlan::Matchers { .. }
            | MatchPlan::CandidateIndex { .. }
            | MatchPlan::Reuse { .. } => Vec::new(),
            MatchPlan::Seq { filter, refine } => vec![filter, refine],
            MatchPlan::Par { plans, .. } => plans.iter().collect(),
            MatchPlan::Filter { input, .. } => vec![input],
            MatchPlan::TopK { input, .. } => vec![input],
            MatchPlan::Iterate { plan, .. } => vec![plan],
        }
    }

    /// The node-local shape defect, if any — the single-node check behind
    /// [`MatchPlan::validate_shape`] and the analyzer's error diagnostics
    /// (which keep walking to report *every* defect, not just the first).
    pub fn local_shape_defect(&self) -> Option<PlanErrorKind> {
        match self {
            MatchPlan::Matchers { matchers, .. } if matchers.is_empty() => {
                Some(PlanErrorKind::EmptyMatchers)
            }
            MatchPlan::Par { plans, .. } if plans.is_empty() => Some(PlanErrorKind::EmptyPar),
            MatchPlan::TopK { k: 0, .. } => Some(PlanErrorKind::ZeroTopK),
            MatchPlan::Iterate { max_rounds: 0, .. } => Some(PlanErrorKind::ZeroIterations),
            MatchPlan::Iterate { epsilon, .. } if !epsilon.is_finite() || *epsilon < 0.0 => {
                Some(PlanErrorKind::InvalidEpsilon)
            }
            MatchPlan::CandidateIndex {
                min_shared_tokens: 0,
                ..
            } => Some(PlanErrorKind::ZeroMinSharedTokens),
            MatchPlan::CandidateIndex { min_score, .. }
                if !min_score.is_finite() || *min_score < 0.0 || *min_score > 1.0 =>
            {
                Some(PlanErrorKind::InvalidMinScore)
            }
            MatchPlan::CandidateIndex {
                per_element: Some(0),
                ..
            } => Some(PlanErrorKind::ZeroCandidateCap),
            MatchPlan::Reuse { max_hops, .. } if *max_hops < 2 => {
                Some(PlanErrorKind::InvalidReuseHops)
            }
            _ => None,
        }
    }

    /// Checks the tree for degenerate shapes (empty `Matchers`/`Par`
    /// nodes, `TopK` with `k = 0`, `Iterate` with `max_rounds = 0` or a
    /// bad epsilon). The builder constructors reject these up front;
    /// hand-assembled trees are caught here — and by
    /// [`PlanEngine::execute`](super::PlanEngine::execute), which
    /// validates before running — instead of panicking mid-execution. The
    /// first defect found (preorder) is returned, with the offending
    /// node's path.
    pub fn validate_shape(&self) -> std::result::Result<(), PlanError> {
        self.validate_shape_at(self.kind_name())
    }

    fn validate_shape_at(&self, path: &str) -> std::result::Result<(), PlanError> {
        if let Some(kind) = self.local_shape_defect() {
            return Err(PlanError::new(kind, path));
        }
        for (i, child) in self.children().into_iter().enumerate() {
            child.validate_shape_at(&format!("{path}[{i}].{}", child.kind_name()))?;
        }
        Ok(())
    }

    /// Checks the tree shape and every referenced matcher against the
    /// library.
    pub fn validate(&self, library: &MatcherLibrary) -> Result<()> {
        self.validate_shape()?;
        for name in self.matcher_names() {
            if library.get(name).is_none() {
                return Err(CoreError::UnknownMatcher(name.to_string()));
            }
        }
        Ok(())
    }

    /// Number of result-producing stages the engine will materialize. For
    /// `Iterate` this is an upper bound (the loop may converge early).
    pub fn stage_count(&self) -> usize {
        match self {
            MatchPlan::Matchers { .. }
            | MatchPlan::Reuse { .. }
            | MatchPlan::CandidateIndex { .. } => 1,
            MatchPlan::Seq { filter, refine } => filter.stage_count() + refine.stage_count(),
            MatchPlan::Par { plans, .. } => {
                plans.iter().map(MatchPlan::stage_count).sum::<usize>() + 1
            }
            MatchPlan::Filter { input, .. } => input.stage_count() + 1,
            MatchPlan::TopK { input, .. } => input.stage_count() + 1,
            MatchPlan::Iterate {
                plan, max_rounds, ..
            } => plan
                .stage_count()
                .saturating_mul(*max_rounds)
                .saturating_add(1),
        }
    }

    /// A human-readable label in the plan grammar, e.g.
    /// `Seq(Matchers(Name)[…] -> Matchers(Leaves)[…])`. The label is
    /// complete: two plans with equal labels are equal (the engine's `Par`
    /// canonicalization relies on this).
    pub fn label(&self) -> String {
        match self {
            MatchPlan::Matchers {
                matchers,
                combination,
            } => format!("Matchers({})[{}]", matchers.join("+"), combination.label()),
            MatchPlan::CandidateIndex {
                min_shared_tokens,
                min_score,
                q,
                per_element,
            } => {
                let cap = per_element.map_or("uncapped".to_string(), |c| format!("cap{c}"));
                format!("CandidateIndex({min_shared_tokens}/{min_score}/q{q}/{cap})")
            }
            MatchPlan::Seq { filter, refine } => {
                format!("Seq({} -> {})", filter.label(), refine.label())
            }
            MatchPlan::Par { plans, combination } => {
                let inner: Vec<String> = plans.iter().map(MatchPlan::label).collect();
                format!("Par({})[{}]", inner.join(" || "), combination.label())
            }
            MatchPlan::Filter {
                input,
                direction,
                selection,
                combined_sim,
            } => format!(
                "Filter({} | {}/{}/{})",
                input.label(),
                direction,
                selection,
                combined_sim
            ),
            MatchPlan::TopK { input, k, per } => {
                format!("TopK({} | {k}/{per})", input.label())
            }
            MatchPlan::Iterate {
                plan,
                max_rounds,
                epsilon,
            } => format!("Iterate({} | {max_rounds}/{epsilon})", plan.label()),
            MatchPlan::Reuse {
                kind,
                compose,
                max_hops,
                combination,
            } => format!(
                "Reuse({}, {:?}, {max_hops}hop)[{}]",
                match kind {
                    Some(MappingKind::Manual) => "Manual",
                    Some(MappingKind::Automatic) => "Automatic",
                    None => "Any",
                },
                compose,
                combination.label()
            ),
        }
    }
}

impl From<MatchStrategy> for MatchPlan {
    /// A flat strategy is a one-stage `Matchers` plan.
    fn from(strategy: MatchStrategy) -> MatchPlan {
        MatchPlan::Matchers {
            matchers: strategy.matchers,
            combination: strategy.combination,
        }
    }
}

impl From<&MatchStrategy> for MatchPlan {
    fn from(strategy: &MatchStrategy) -> MatchPlan {
        MatchPlan::from(strategy.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_converts_to_flat_plan() {
        let strategy = MatchStrategy::paper_default();
        let plan = MatchPlan::from(&strategy);
        match &plan {
            MatchPlan::Matchers {
                matchers,
                combination,
            } => {
                assert_eq!(matchers, &strategy.matchers);
                assert_eq!(combination, &strategy.combination);
            }
            other => panic!("expected Matchers leaf, got {}", other.label()),
        }
        assert_eq!(plan.stage_count(), 1);
    }

    #[test]
    fn validation_finds_unknown_matchers() {
        let lib = MatcherLibrary::standard();
        let ok = MatchPlan::seq(
            MatchPlan::matchers(["Name"]),
            MatchPlan::matchers(["Leaves", "Children"]),
        );
        assert!(ok.validate(&lib).is_ok());
        let bad = MatchPlan::par(
            [MatchPlan::matchers(["Name"]), MatchPlan::matchers(["Nope"])],
            CombinationStrategy::paper_default(),
        );
        assert!(matches!(
            bad.validate(&lib),
            Err(CoreError::UnknownMatcher(name)) if name == "Nope"
        ));
    }

    #[test]
    fn constructors_reject_degenerate_shapes() {
        let base = MatchPlan::matchers(["Name"]);
        let err = base.clone().top_k(0, TopKPer::Row).unwrap_err();
        assert_eq!(err.kind(), PlanErrorKind::ZeroTopK);
        assert_eq!(err.path(), "TopK");
        assert_eq!(err.code(), "E_TOPK_ZERO");
        assert_eq!(
            base.clone().iterate(0, 0.01).unwrap_err().kind(),
            PlanErrorKind::ZeroIterations
        );
        assert_eq!(
            base.clone().iterate(3, -0.5).unwrap_err().kind(),
            PlanErrorKind::InvalidEpsilon
        );
        assert_eq!(
            base.clone().iterate(3, f64::NAN).unwrap_err().kind(),
            PlanErrorKind::InvalidEpsilon
        );
        assert!(base.clone().top_k(1, TopKPer::Both).is_ok());
        assert!(base.iterate(1, 0.0).is_ok());
    }

    #[test]
    fn candidate_index_constructors_enforce_their_domain() {
        assert_eq!(
            MatchPlan::candidate_index(0, 0.0).unwrap_err().kind(),
            PlanErrorKind::ZeroMinSharedTokens
        );
        assert_eq!(
            MatchPlan::candidate_index(1, -0.1).unwrap_err().kind(),
            PlanErrorKind::InvalidMinScore
        );
        assert_eq!(
            MatchPlan::candidate_index(1, f64::NAN).unwrap_err().kind(),
            PlanErrorKind::InvalidMinScore
        );
        assert_eq!(
            MatchPlan::candidate_index(1, 1.5).unwrap_err().kind(),
            PlanErrorKind::InvalidMinScore
        );
        assert_eq!(
            MatchPlan::candidate_index_with(1, 0.0, 3, Some(0))
                .unwrap_err()
                .kind(),
            PlanErrorKind::ZeroCandidateCap
        );
        let ok = MatchPlan::candidate_index(1, 0.0).unwrap();
        assert!(ok.validate_shape().is_ok());
        assert!(ok.matcher_names().is_empty());
        assert_eq!(ok.stage_count(), 1);
        // Hand-assembled degenerate leaves are caught by validate_shape too.
        let bad = MatchPlan::CandidateIndex {
            min_shared_tokens: 0,
            min_score: 0.0,
            q: 3,
            per_element: None,
        };
        assert_eq!(
            bad.validate_shape(),
            Err(PlanError::new(
                PlanErrorKind::ZeroMinSharedTokens,
                "CandidateIndex"
            ))
        );
    }

    #[test]
    fn candidate_index_labels_are_complete() {
        let uncapped = MatchPlan::candidate_index(1, 0.0).unwrap();
        assert_eq!(uncapped.label(), "CandidateIndex(1/0/q3/uncapped)");
        let capped = MatchPlan::candidate_index_with(2, 0.25, 4, Some(5)).unwrap();
        assert_eq!(capped.label(), "CandidateIndex(2/0.25/q4/cap5)");
        assert_ne!(uncapped.label(), capped.label());
        let staged = MatchPlan::seq(uncapped, MatchPlan::matchers(["Name"]));
        assert!(
            staged.label().starts_with("Seq(CandidateIndex("),
            "{}",
            staged.label()
        );
        assert_eq!(staged.stage_count(), 2);
    }

    #[test]
    fn shape_validation_walks_the_whole_tree() {
        let lib = MatcherLibrary::standard();
        // A degenerate node buried under healthy operators is still found.
        let buried = MatchPlan::seq(
            MatchPlan::matchers(["Name"]),
            MatchPlan::par(
                [
                    MatchPlan::matchers(["Leaves"]),
                    MatchPlan::Matchers {
                        matchers: Vec::new(),
                        combination: CombinationStrategy::paper_default(),
                    },
                ],
                CombinationStrategy::paper_default(),
            ),
        );
        let err = buried.validate_shape().unwrap_err();
        assert_eq!(err.kind(), PlanErrorKind::EmptyMatchers);
        // The path pins the defect to the node: child 1 of the root Seq is
        // the Par, whose child 1 is the empty Matchers leaf.
        assert_eq!(err.path(), "Seq[1].Par[1].Matchers");
        assert_eq!(
            err.to_string(),
            "at `Seq[1].Par[1].Matchers`: `Matchers` node has an empty matcher list"
        );
        assert!(matches!(
            buried.validate(&lib),
            Err(CoreError::Plan(e)) if e.kind() == PlanErrorKind::EmptyMatchers
        ));
        // Healthy trees with the new operators pass.
        let healthy = MatchPlan::matchers(["Name"])
            .top_k(3, TopKPer::Both)
            .unwrap()
            .iterate(4, 1e-6)
            .unwrap();
        assert!(healthy.validate(&lib).is_ok());
        assert_eq!(healthy.matcher_names(), vec!["Name"]);
    }

    #[test]
    fn new_operator_labels_and_stage_counts() {
        let plan = MatchPlan::matchers(["Name"])
            .top_k(5, TopKPer::Row)
            .unwrap();
        assert!(
            plan.label().starts_with("TopK(Matchers(Name)["),
            "{}",
            plan.label()
        );
        assert!(plan.label().ends_with("| 5/Row)"), "{}", plan.label());
        assert_eq!(plan.stage_count(), 2);

        let looped = plan.clone().iterate(3, 0.01).unwrap();
        assert!(
            looped.label().starts_with("Iterate(TopK("),
            "{}",
            looped.label()
        );
        assert!(looped.label().ends_with("| 3/0.01)"), "{}", looped.label());
        // Upper bound: 2 stages per round × 3 rounds + the Iterate stage.
        assert_eq!(looped.stage_count(), 7);

        // Labels stay complete: different k / per / rounds ⇒ different labels.
        let other = MatchPlan::matchers(["Name"])
            .top_k(5, TopKPer::Col)
            .unwrap();
        assert_ne!(plan.label(), other.label());
    }

    #[test]
    fn matcher_names_deduplicate_in_first_use_order() {
        let plan = MatchPlan::seq(
            MatchPlan::matchers(["Name", "TypeName"]),
            MatchPlan::matchers(["TypeName", "Leaves"]),
        );
        assert_eq!(plan.matcher_names(), vec!["Name", "TypeName", "Leaves"]);
    }

    #[test]
    fn labels_follow_the_grammar() {
        let plan = MatchPlan::seq(
            MatchPlan::matchers(["Name"]),
            MatchPlan::matchers(["Leaves"]),
        );
        let label = plan.label();
        assert!(label.starts_with("Seq(Matchers(Name)["), "{label}");
        assert!(label.contains("-> Matchers(Leaves)["), "{label}");
        let reuse = MatchPlan::reuse(Some(MappingKind::Manual));
        assert_eq!(
            reuse.label(),
            "Reuse(Manual, Average, 2hop)[Average/Both/Thr(0.5)+Delta(0.02)/Average]"
        );
        let chains = MatchPlan::reuse_chains(None, ComposeCombine::Average, 3).unwrap();
        assert_eq!(
            chains.label(),
            "Reuse(Any, Average, 3hop)[Average/Both/Thr(0.5)+Delta(0.02)/Average]"
        );
        assert_eq!(
            MatchPlan::reuse_chains(None, ComposeCombine::Average, 1)
                .unwrap_err()
                .kind(),
            PlanErrorKind::InvalidReuseHops
        );
        // Labels are complete: plans differing only in combination get
        // distinct labels (the engine's Par canonicalization relies on
        // label equality implying plan equality).
        let mut other = MatchPlan::reuse(Some(MappingKind::Manual));
        if let MatchPlan::Reuse { combination, .. } = &mut other {
            combination.selection = Selection::max_n(2);
        }
        assert_ne!(reuse.label(), other.label());
        let filtered = MatchPlan::matchers(["Name"]).filtered(Direction::Both, Selection::max_n(1));
        assert!(filtered.label().starts_with("Filter(Matchers(Name)["));
        assert_eq!(filtered.stage_count(), 2);
    }
}
