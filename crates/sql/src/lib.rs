//! # coma-sql — SQL DDL import substrate for COMA
//!
//! Imports relational schemas written as `CREATE TABLE` statements into
//! COMA's internal graph representation, mirroring Figure 1a of the paper
//! (the `PO1` purchase-order schema):
//!
//! * a synthetic root named after the schema contains one node per table,
//! * columns become typed leaf nodes,
//! * `REFERENCES` clauses (column-level or table-level `FOREIGN KEY`)
//!   become referential links from the column node to the referenced table
//!   node.
//!
//! The parser is hand-written (lexer + recursive descent) and covers the
//! DDL subset schema matching needs: typed columns with length/precision
//! arguments, `PRIMARY KEY` / `UNIQUE` / `NOT NULL` / `DEFAULT` column
//! options, table-level `PRIMARY KEY` and `FOREIGN KEY` constraints, and
//! schema-qualified table names (`PO1.ShipTo`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod error;
mod import;
mod lexer;
mod parser;

pub use ast::{ColumnDef, CreateTable, TableConstraint};
pub use error::{Result, SqlError};
pub use import::import_ddl;
pub use parser::parse_ddl;
