use crate::{GraphError, Node, NodeId, NodeKind, Result};
use serde::{Deserialize, Serialize};

/// The type of a directed link between schema elements.
///
/// The paper (Section 3): "Schema elements are represented by graph nodes
/// connected by directed links of different types, e.g. for containment and
/// referential relationships."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Parent contains child (table→column, element→sub-element).
    Containment,
    /// Referential link (foreign key, IDREF).
    Reference,
}

/// A referential link between two nodes, e.g. a foreign key column pointing
/// at the table it references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reference {
    /// Source of the reference (e.g. the foreign-key column).
    pub from: NodeId,
    /// Target of the reference (e.g. the referenced table).
    pub to: NodeId,
    /// Optional label (e.g. the constraint name).
    pub label: Option<String>,
}

/// A schema in COMA's internal representation: a single-rooted directed
/// acyclic graph of named nodes with containment and referential links.
///
/// Schemas are immutable once built (via [`SchemaBuilder`](crate::SchemaBuilder)),
/// which lets the matcher layer cache path unfoldings and similarity cubes
/// safely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) children: Vec<Vec<NodeId>>,
    pub(crate) parents: Vec<Vec<NodeId>>,
    pub(crate) references: Vec<Reference>,
    pub(crate) root: NodeId,
}

impl Schema {
    /// The schema's name (e.g. `PO1`, `CIDX`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The unique root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Looks up a node, panicking on a foreign id (use
    /// [`Schema::try_node`] for fallible access).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Fallible node lookup.
    pub fn try_node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(GraphError::InvalidNode { index: id.index() })
    }

    /// Containment children of `id`, in source order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.index()]
    }

    /// Containment parents of `id` (more than one for shared fragments).
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id.index()]
    }

    /// All referential links.
    pub fn references(&self) -> &[Reference] {
        &self.references
    }

    /// Whether `id` is a leaf (no containment children).
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// Classification of `id` by its containment children.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        if self.is_leaf(id) {
            NodeKind::Leaf
        } else {
            NodeKind::Inner
        }
    }

    /// Iterates over all node ids in arena order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Nodes in a topological order of the containment DAG (parents before
    /// children). The order is deterministic: ties resolve by arena index.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indegree: Vec<usize> = vec![0; n];
        for kids in &self.children {
            for k in kids {
                indegree[k.index()] += 1;
            }
        }
        // A sorted frontier keeps the order deterministic.
        let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = frontier.pop() {
            order.push(NodeId::from_index(i));
            for k in &self.children[i] {
                indegree[k.index()] -= 1;
                if indegree[k.index()] == 0 {
                    // Insert keeping the frontier sorted descending so pop()
                    // yields the smallest index first.
                    let pos = frontier
                        .binary_search_by(|probe| k.index().cmp(probe))
                        .unwrap_or_else(|e| e);
                    frontier.insert(pos, k.index());
                }
            }
        }
        debug_assert_eq!(order.len(), n, "schema invariant: containment is acyclic");
        order
    }

    /// Depth of every node: length of the *shortest* containment chain from
    /// the root (root = 1). Nodes unreachable from the root have depth 0
    /// (builders reject those, so this only matters for hand-rolled data).
    pub fn node_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        depth[self.root.index()] = 1;
        queue.push_back(self.root);
        while let Some(id) = queue.pop_front() {
            for &c in self.children(id) {
                if depth[c.index()] == 0 {
                    depth[c.index()] = depth[id.index()] + 1;
                    queue.push_back(c);
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use crate::{Node, SchemaBuilder};

    #[test]
    fn topological_order_puts_parents_first() {
        let mut b = SchemaBuilder::new("S");
        let root = b.add_node(Node::new("root"));
        let a = b.add_node(Node::new("a"));
        let shared = b.add_node(Node::new("shared"));
        let b2 = b.add_node(Node::new("b"));
        b.add_child(root, a).unwrap();
        b.add_child(root, b2).unwrap();
        b.add_child(a, shared).unwrap();
        b.add_child(b2, shared).unwrap();
        let s = b.build().unwrap();
        let order = s.topological_order();
        let pos = |id| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(root) < pos(a));
        assert!(pos(a) < pos(shared));
        assert!(pos(b2) < pos(shared));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn node_depths_use_shortest_chain() {
        let mut b = SchemaBuilder::new("S");
        let root = b.add_node(Node::new("root"));
        let a = b.add_node(Node::new("a"));
        let deep = b.add_node(Node::new("deep"));
        let shared = b.add_node(Node::new("shared"));
        b.add_child(root, a).unwrap();
        b.add_child(a, deep).unwrap();
        b.add_child(deep, shared).unwrap();
        b.add_child(root, shared).unwrap();
        let s = b.build().unwrap();
        let d = s.node_depths();
        assert_eq!(d[root.index()], 1);
        assert_eq!(d[shared.index()], 2); // via root, not via deep
    }
}
