//! Shared helpers for the COMA benchmark and experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the tables and figures of the
//! paper's evaluation (Section 7); the Criterion benches in `benches/`
//! measure the performance of the substrates and the match pipeline.
