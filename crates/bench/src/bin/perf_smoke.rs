//! `perf_smoke` — the CI performance gate.
//!
//! Runs a quick, deterministic benchmark suite over the evaluation corpus,
//! the generated large-schema workloads and the `coma-server` service
//! loop, emits a `BENCH_PR10.json` trajectory file (task, wall-ms,
//! candidates, dense/sparse speedups, peak allocations, fused peak
//! ceilings, service throughput, static-analysis prediction bounds) and
//! optionally compares it against a committed baseline:
//!
//! ```text
//! perf_smoke [--quick] [--out FILE] [--check BASELINE]
//!            [--calibrate-baseline GIT-REF|BIN] [--runs N] [--verbose]
//! ```
//!
//! * `--quick` — the CI subset: eval corpus (correctness,
//!   candidate-index recall and transitive-reuse gates included) + one
//!   generated 1200-node deep schema (the full suite adds
//!   star/wide/catalog workloads, the `deep5000` size —
//!   infeasible-or-slow to execute densely, comfortable on the sparse
//!   storage path — the `deep20000` row-sharding workload, the
//!   `deep100000` streaming-fused workload, the candidate-index vs
//!   exact-two-stage plan comparison, and the generated-family
//!   reuse-vs-fresh comparison below).
//! * `--out FILE` — where to write the fresh numbers (default
//!   `BENCH_PR10.json` in the current directory).
//! * `--check BASELINE` — compare against a baseline JSON and exit
//!   nonzero if any tracked number regresses: candidate counts must match
//!   exactly (the workloads are seeded, so counts are machine-independent),
//!   calibration-normalized wall times may not regress by more than 25%,
//!   dense/sparse speedups may neither drop below 2× nor lose more than
//!   25% against the baseline, for baselines carrying `allocs` entries a
//!   workload's dense/sparse peak-allocation *ratio* may not collapse
//!   below half the baseline's (the ratio is machine-comparable even
//!   though those absolute peaks are not), for version-3 baselines
//!   carrying `ceilings` entries a streaming-fused execution's absolute
//!   peak may not exceed the baseline's committed ceiling (fused peaks
//!   *are* machine-comparable: the engine budget-caps its in-flight
//!   memory instead of scaling it with the core count), for version-4
//!   baselines carrying `throughput` entries the service loop's
//!   calibration-normalized tasks/sec may not drop by more than 25%,
//!   and — for version-5 baselines carrying `predictions` entries — a
//!   measured execution peak may not exceed the *baseline's* committed
//!   static-analysis bound, nor may the freshly predicted bound grow
//!   past the committed one (the bound is a pure function of the seeded
//!   task statistics and the engine configuration, so both sides of the
//!   rule are machine-independent). Older baselines (`BENCH_PR3.json`,
//!   `BENCH_PR5.json`) parse fine — they simply carry fewer entry kinds
//!   to gate.
//! * `--calibrate-baseline GIT-REF|BIN` — re-measure the baseline *code*
//!   on this machine, in this run, and gate every wall-clock-shaped rule
//!   (wall times, service throughput, within-run speedup ratios,
//!   peak-allocation ratios) on the resulting relative comparison
//!   instead of the committed numbers. The operand is either a prebuilt
//!   `perf_smoke` binary or a git ref (built in a temporary worktree
//!   with its own target directory). The baseline binary runs twice —
//!   once before and once after the candidate measurement — and the
//!   per-entry *lenient* merge of the two bracketing runs is the
//!   reference (slowest wall, lowest throughput and speedup, largest
//!   peak), so ambient machine noise widens the allowance instead of
//!   being blamed on the change. Only the genuinely machine-independent
//!   rules (candidate counts, recall, fused peak ceilings) still gate
//!   against the committed `--check` numbers. Entries the calibrated
//!   baseline does not measure (new workloads) are not wall-gated that
//!   run.
//! * `--verbose` — additionally print per-shard timings of the
//!   `deep20000` dense first-stage computation (one line per row shard),
//!   so shard balance is observable.
//!
//! Wall times are normalized by a fixed calibration workload measured in
//! the same process, so baselines recorded on one machine remain
//! comparable on another. Peak allocations come from the crate's counting
//! global allocator ([`coma_bench::alloc_track`]); they are recorded for
//! every generated workload and gated *in-process*: whenever the
//! `deep5000` workload runs, the dense execution's peak must be at least
//! [`MIN_ALLOC_RATIO`]× the sparse one — the acceptance criterion of the
//! sparse-storage refactor. Absolute peaks are not gated across runs,
//! because leaf fan-out parallelism makes them (mildly)
//! machine-dependent; only the ratio is (see above).
//!
//! The full suite's `deep20000` section is the row-sharding acceptance
//! measurement: the unrestricted dense first-stage *matrix* (the liberal
//! `Name` filter over the full ~20k × ~20k cross-product, one ~3 GiB
//! dense buffer) is computed once in a single shard and once as
//! `compute_rows` row shards on scoped threads stitched by
//! `SimMatrix::from_row_shards` — verified bit-identical in-process —
//! recording both wall times, their within-run speedup, and a
//! deterministic cell-count fingerprint in the `candidates` slot. The
//! shard count follows the engine's own `available_parallelism()`
//! policy: on a multi-core machine the sharded side scales with the
//! worker count; on one CPU the engine deliberately does not shard, so
//! the comparison is a no-op (speedup ≈ 1.0, no regression) — the
//! gate's relative rule tolerates that spread and the 2× sparse floor
//! never applies to sharding entries.

use coma_bench::workload::{generate_family, generate_task, WorkloadShape, WorkloadSpec};
use coma_bench::{
    alloc_track, candidate_index_plan, candidate_index_stage, fused_filter_plan,
    liberal_name_stage, topk_pruned_plan,
};
use coma_core::{
    shard_ranges, Coma, ComposeCombine, EngineConfig, MatchContext, MatchPlan, MatchResult,
    MatchStrategy, PlanAnalyzer, PlanEngine, PlanOutcome, TaskStats,
};
use coma_eval::{fresh_task_mappings, reuse_repository, Corpus, MatchQuality, TASKS};
use coma_graph::PathSet;
use coma_repo::{MappingKind, MemoryBackend, Repository};
use coma_server::{
    Client, InlineSchema, MatchConfig, MatchRequest, PlanSpec, Request, Response, SchemaFormat,
    SchemaRef, Server, ServerState,
};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Track every allocation of the process so dense/sparse peak comparisons
/// cover the real execution, transients included.
#[global_allocator]
static ALLOC: alloc_track::CountingAllocator = alloc_track::CountingAllocator;

/// One measured task.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaskEntry {
    /// Task identifier, stable across runs.
    task: String,
    /// Best-of-N wall time in milliseconds.
    wall_ms: f64,
    /// Number of selected candidates (deterministic per workload).
    candidates: u64,
}

/// A within-run dense/sparse speedup (machine-independent ratio).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SpeedupEntry {
    task: String,
    speedup: f64,
}

/// Peak live bytes during one plan execution (counting allocator).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AllocEntry {
    task: String,
    peak_bytes: u64,
}

/// A peak-allocation *ceiling*: the measured peak of a streaming-fused
/// execution plus the hard bound it must stay under. Unlike the dense
/// peaks in [`AllocEntry`], these absolute numbers are machine-comparable
/// across runs: the fused engine caps its in-flight memory by a byte
/// budget (`EngineConfig::fuse_budget_bytes`), not by the core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CeilingEntry {
    task: String,
    peak_bytes: u64,
    ceiling_bytes: u64,
}

/// Service throughput: completed match requests per second against a
/// running `coma-server`, measured end to end through the unix-socket
/// client at a fixed concurrent-client count. Wall-clock-shaped, so the
/// cross-run gate normalizes by calibration (or, better, compares
/// against an interleaved `--calibrate-baseline` run).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThroughputEntry {
    task: String,
    /// Concurrent client connections driving the server.
    clients: u64,
    /// Completed match requests per second across all clients.
    tasks_per_sec: f64,
}

/// A static-analysis prediction checked against one tracked execution:
/// the `PlanAnalyzer`'s pre-execution peak-allocation upper bound next
/// to the peak the counting allocator then measured. The per-stage
/// storage/fusion agreement is gated in-process during measurement (a
/// disagreement fails the run outright); what the trajectory carries is
/// the memory bound, because it is the one prediction with a committed
/// cross-run contract: `predicted_bytes` depends only on the seeded task
/// statistics and the engine configuration, so a future run's measured
/// peak exceeding a *committed* bound is a soundness break, not noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PredictionEntry {
    task: String,
    /// The analyzer's pre-execution upper bound.
    predicted_bytes: u64,
    /// What the counting allocator measured for the gated execution.
    measured_bytes: u64,
}

/// The emitted/compared report.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    version: u32,
    /// Wall time of the fixed calibration workload on this machine.
    calibration_ms: f64,
    tasks: Vec<TaskEntry>,
    speedups: Vec<SpeedupEntry>,
    /// Peak allocations per generated workload (absent in pre-sparse
    /// baselines; recorded, gated in-process only).
    allocs: Vec<AllocEntry>,
    /// Fused-execution peak ceilings (version-3 reports; absent in older
    /// baselines). Gated both in-process and across runs.
    ceilings: Vec<CeilingEntry>,
    /// Service throughput (version-4 reports; absent in older baselines).
    throughput: Vec<ThroughputEntry>,
    /// Static-analysis prediction bounds (version-5 reports; absent in
    /// older baselines). Gated both in-process and across runs.
    predictions: Vec<PredictionEntry>,
}

/// Hand-written so older baselines still parse: pre-sparse-storage
/// reports carry no `allocs` key, pre-fusion (version ≤ 2) reports no
/// `ceilings` key, pre-service (version ≤ 3) reports no `throughput`
/// key, pre-analyzer (version ≤ 4) reports no `predictions` key.
impl Deserialize for BenchReport {
    fn from_value(value: &Value) -> Result<BenchReport, DeError> {
        let entries = value
            .as_map()
            .ok_or_else(|| DeError::custom("expected a BenchReport map"))?;
        let has = |key: &str| entries.iter().any(|(k, _)| k.as_str() == Some(key));
        Ok(BenchReport {
            version: serde::field(entries, "version")?,
            calibration_ms: serde::field(entries, "calibration_ms")?,
            tasks: serde::field(entries, "tasks")?,
            speedups: serde::field(entries, "speedups")?,
            allocs: if has("allocs") {
                serde::field(entries, "allocs")?
            } else {
                Vec::new()
            },
            ceilings: if has("ceilings") {
                serde::field(entries, "ceilings")?
            } else {
                Vec::new()
            },
            throughput: if has("throughput") {
                serde::field(entries, "throughput")?
            } else {
                Vec::new()
            },
            predictions: if has("predictions") {
                serde::field(entries, "predictions")?
            } else {
                Vec::new()
            },
        })
    }
}

/// Maximum tolerated regression of normalized wall times and speedups.
const TOLERANCE: f64 = 0.25;
/// Hard floor on the dense/sparse speedup (the acceptance criterion).
const MIN_SPEEDUP: f64 = 2.0;
/// Hard floor on the dense/sparse peak-allocation ratio of the `deep5000`
/// workload (the sparse-storage acceptance criterion).
const MIN_ALLOC_RATIO: f64 = 4.0;
/// Hard ceiling on the streaming-fused `deep100000` execution's peak
/// allocations — the fusion acceptance criterion. One dense matrix at
/// that scale would be ~75 GiB; the fused pipeline must finish the whole
/// plan in under 3 GiB, on any machine (the engine's in-flight memory is
/// budget-capped, not core-scaled).
const FUSED_PEAK_CEILING: u64 = 3 * (1 << 30);
/// Maximum tolerated drop of the corpus-average F-measure of composed
/// transitive reuse below fresh matching — the reuse acceptance
/// criterion (Table 5 of the paper: reuse rivals fresh quality at a
/// fraction of the cost). Both sides are deterministic, so this gates
/// in-process on every run: measured 0.699 composed vs 0.724 fresh
/// (gap 0.025) at the time the tolerance was committed.
const REUSE_F1_TOLERANCE: f64 = 0.05;

struct Options {
    quick: bool,
    out: String,
    check: Option<String>,
    calibrate: Option<String>,
    runs: usize,
    verbose: bool,
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        quick: false,
        out: "BENCH_PR10.json".to_string(),
        check: None,
        calibrate: None,
        runs: 3,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--verbose" => opts.verbose = true,
            "--out" => opts.out = args.next().ok_or(ExitCode::from(2))?,
            "--check" => opts.check = Some(args.next().ok_or(ExitCode::from(2))?),
            "--calibrate-baseline" => {
                opts.calibrate = Some(args.next().ok_or(ExitCode::from(2))?);
            }
            "--runs" => {
                opts.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or(ExitCode::from(2))?;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_smoke [--quick] [--out FILE] [--check BASELINE] \
                     [--calibrate-baseline GIT-REF|BIN] [--runs N] [--verbose]"
                );
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(opts)
}

/// Best-of-N wall time of `f`, returning (ms, last result). The previous
/// run's result is dropped *before* the timer starts — the drop is not
/// the code under test, and holding it across the next run would double
/// the peak footprint of the multi-GiB workloads.
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs {
        drop(out.take());
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("runs > 0"))
}

/// The three execution modes the suite measures. `Dense` is the oracle:
/// no sparse storage and, by implication, no fusion. `Sparse` is sparse
/// storage with fusion explicitly off — the exact path the dense/sparse
/// trajectory entries have always measured. `Fused` is the engine's
/// default configuration, streaming-fused pruning included.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Dense,
    Sparse,
    Fused,
}

/// The engine configuration of one execution mode — shared between
/// [`run_plan`] and the static analysis gated against it, so the
/// analyzer predicts exactly the configuration that then runs.
fn mode_config(mode: Mode) -> EngineConfig {
    match mode {
        Mode::Dense => EngineConfig::default().with_sparse(false),
        Mode::Sparse => EngineConfig::default().with_fuse_pruning(false),
        Mode::Fused => EngineConfig::default(),
    }
}

/// Executes `plan` on a prepared context in the given execution mode.
fn run_plan(coma: &Coma, ctx: &MatchContext<'_>, plan: &MatchPlan, mode: Mode) -> PlanOutcome {
    PlanEngine::with_config(coma.library(), mode_config(mode))
        .execute(ctx, plan)
        .expect("plan executes")
}

/// The static-analysis soundness gate: analyzes `plan` under the mode's
/// engine configuration and checks every definite prediction against an
/// execution that actually ran — per-stage storage and fusion decisions
/// must agree with the `StageOutcome`s (`Maybe` predictions are
/// compatible with either outcome; that is the lattice's job), and the
/// measured peak must stay under the predicted upper bound. Any
/// violation fails the whole suite; on success the bound/measurement
/// pair is returned for the trajectory file, where future runs gate
/// against the committed bound.
fn gate_predictions(
    coma: &Coma,
    stats: &TaskStats,
    plan: &MatchPlan,
    mode: Mode,
    task: &str,
    outcome: &PlanOutcome,
    measured_peak: u64,
) -> Result<PredictionEntry, String> {
    let analysis = PlanAnalyzer::new(coma.library(), mode_config(mode)).analyze(plan, stats);
    if analysis.has_errors() {
        let first = analysis
            .diagnostics
            .first()
            .map(|d| d.to_string())
            .unwrap_or_default();
        return Err(format!(
            "{task}: the analyzer rejected a valid plan: {first}"
        ));
    }
    for stage in &outcome.stages {
        let storage = analysis.storage_prediction(&stage.label);
        if !storage.agrees_with(stage.cube.all_sparse()) {
            return Err(format!(
                "{task}: stage `{}` was predicted storage_sparse={storage} but executed \
                 all_sparse={}",
                stage.label,
                stage.cube.all_sparse()
            ));
        }
        let fused = analysis.fused_prediction(&stage.label);
        if !fused.agrees_with(stage.fused) {
            return Err(format!(
                "{task}: stage `{}` was predicted fused={fused} but executed fused={}",
                stage.label, stage.fused
            ));
        }
    }
    if measured_peak > analysis.peak_bytes {
        return Err(format!(
            "{task}: measured peak {measured_peak} bytes exceeds the analyzer's predicted \
             bound of {} bytes",
            analysis.peak_bytes
        ));
    }
    eprintln!(
        "# {task}: predicted peak <= {:.1} MiB, measured {:.1} MiB ({:.1}x headroom)",
        analysis.peak_bytes as f64 / (1 << 20) as f64,
        measured_peak as f64 / (1 << 20) as f64,
        analysis.peak_bytes as f64 / (measured_peak as f64).max(1.0),
    );
    Ok(PredictionEntry {
        task: task.to_string(),
        predicted_bytes: analysis.peak_bytes,
        measured_bytes: measured_peak,
    })
}

/// The fixed calibration workload: a pure integer/memory kernel that is
/// **independent of the matcher code under test**, so wall times
/// normalize across machine speeds without a uniform matcher regression
/// cancelling out of the normalization.
fn calibration_ms(runs: usize) -> f64 {
    let (ms, _) = time_best(runs, || {
        let mut buf: Vec<u64> = (0..1 << 20).collect();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for round in 0..24u64 {
            for v in buf.iter_mut() {
                acc = (acc ^ (*v).wrapping_add(round)).wrapping_mul(0x0100_0000_01b3);
                *v = acc;
            }
        }
        std::hint::black_box(acc)
    });
    ms
}

/// Top-1 candidate set (best target per source) of a result — the
/// agreement criterion between dense and sparse execution.
fn top1(result: &MatchResult) -> Vec<(usize, usize)> {
    let mut best: Vec<Option<(usize, f64)>> = vec![None; result.source_size];
    for c in &result.candidates {
        let slot = &mut best[c.source.index()];
        let better = slot
            .is_none_or(|(j, s)| c.similarity > s || (c.similarity == s && c.target.index() < j));
        if better {
            *slot = Some((c.target.index(), c.similarity));
        }
    }
    best.iter()
        .enumerate()
        .filter_map(|(i, b)| b.map(|(j, _)| (i, j)))
        .collect()
}

/// Deterministic `CREATE TABLE` corpus for the service workload: names
/// drawn from a fixed vocabulary so the two variants overlap enough for
/// the name matchers to do real work (the same generator shape the
/// server's own integration tests use).
fn service_ddl(tables: usize, columns: usize, variant: &str) -> String {
    const STEMS: [&str; 12] = [
        "customer", "order", "ship", "bill", "product", "price", "city", "street", "phone",
        "status", "total", "delivery",
    ];
    let mut ddl = String::new();
    for t in 0..tables {
        ddl.push_str(&format!(
            "CREATE TABLE {}{}{} (\n",
            STEMS[t % STEMS.len()],
            variant,
            t
        ));
        for c in 0..columns {
            if c > 0 {
                ddl.push_str(",\n");
            }
            ddl.push_str(&format!(
                "  {}{}{} VARCHAR(200)",
                STEMS[(t + c) % STEMS.len()],
                variant,
                c
            ));
        }
        ddl.push_str("\n);\n");
    }
    ddl
}

/// One steady-state match request against the stored service pair.
fn service_request() -> Request {
    Request::Match(MatchRequest {
        tenant: "bench".to_string(),
        source: SchemaRef::Stored("svc_source".to_string()),
        target: SchemaRef::Stored("svc_target".to_string()),
        plan: PlanSpec::TopKPruned(5),
        config: MatchConfig::default(),
        store: false,
    })
}

/// Stores the schema pair, warms the tenant's cross-request memo, then
/// measures completed match requests per second at each concurrent-client
/// count — end to end through the unix-socket client, so framing,
/// dispatch, and cache-lookup costs are all inside the measurement.
fn drive_service(socket: &std::path::Path, runs: usize) -> Result<Vec<ThroughputEntry>, String> {
    const PER_CLIENT: usize = 25;
    let err = |e: std::io::Error| e.to_string();
    let mut setup = Client::connect_retry(socket, Duration::from_secs(5)).map_err(err)?;
    for (name, variant) in [("svc_source", "s"), ("svc_target", "t")] {
        let schema = InlineSchema {
            name: name.to_string(),
            format: SchemaFormat::Sql,
            text: service_ddl(10, 10, variant),
        };
        setup
            .call_ok(&Request::PutSchema("bench".to_string(), schema))
            .map_err(err)?;
    }
    // Warm the cross-request memo before timing: steady-state throughput
    // against a hot schema pair is the capacity number; the cold first
    // request is covered (and asserted faster-on-repeat) by the server
    // integration tests.
    match setup.call_ok(&service_request()).map_err(err)? {
        Response::Matched(m) if !m.correspondences.is_empty() => {}
        other => return Err(format!("service warm-up returned {other:?}")),
    }
    let mut entries = Vec::new();
    for clients in [2usize, 4] {
        let mut best_secs = f64::INFINITY;
        for _ in 0..runs.min(2) {
            let mut conns = Vec::new();
            for _ in 0..clients {
                conns.push(Client::connect_retry(socket, Duration::from_secs(5)).map_err(err)?);
            }
            let start = Instant::now();
            std::thread::scope(|scope| {
                let workers: Vec<_> = conns
                    .iter_mut()
                    .map(|conn| {
                        scope.spawn(move || -> Result<(), String> {
                            for _ in 0..PER_CLIENT {
                                match conn.call(&service_request()).map_err(err)? {
                                    Response::Matched(_) => {}
                                    other => {
                                        return Err(format!("service request failed: {other:?}"))
                                    }
                                }
                            }
                            Ok(())
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .try_for_each(|w| w.join().expect("client thread panicked"))
            })?;
            best_secs = best_secs.min(start.elapsed().as_secs_f64());
        }
        let tasks_per_sec = (clients * PER_CLIENT) as f64 / best_secs;
        eprintln!(
            "# server/match_c{clients}: {} requests across {clients} clients in {:.0} ms \
             ({tasks_per_sec:.0} tasks/sec)",
            clients * PER_CLIENT,
            best_secs * 1e3,
        );
        entries.push(ThroughputEntry {
            task: format!("server/match_c{clients}"),
            clients: clients as u64,
            tasks_per_sec,
        });
    }
    Ok(entries)
}

/// The service-throughput measurement: an in-process `coma-server` on a
/// temp socket, concurrent socket clients, tasks/sec per client count.
fn service_throughput(runs: usize) -> Result<Vec<ThroughputEntry>, String> {
    let state = ServerState::open(MemoryBackend::new(), 32).map_err(|e| e.to_string())?;
    let socket = std::env::temp_dir().join(format!("coma_perf_smoke_{}.sock", std::process::id()));
    let server = Server::bind(&socket, state).map_err(|e| e.to_string())?;
    let result = std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let outcome = drive_service(&socket, runs);
        // Always stop the server — even after a measurement error — or
        // the scope would join the serve thread forever.
        if let Ok(mut client) = Client::connect_retry(&socket, Duration::from_secs(5)) {
            client.call(&Request::Shutdown).ok();
        }
        let served = match serve.join() {
            Ok(r) => r.map_err(|e| format!("server failed: {e}")),
            Err(_) => Err("server thread panicked".to_string()),
        };
        match (outcome, served) {
            (Ok(entries), Ok(())) => Ok(entries),
            (Err(e), _) | (_, Err(e)) => Err(e),
        }
    });
    std::fs::remove_file(&socket).ok();
    result
}

fn measure(opts: &Options) -> Result<BenchReport, String> {
    let mut tasks = Vec::new();
    let mut speedups = Vec::new();
    let mut allocs = Vec::new();
    let mut ceilings = Vec::new();
    let mut predictions = Vec::new();
    let runs = opts.runs;

    eprintln!("# calibrating …");
    let calibration = calibration_ms(runs);
    eprintln!("# calibration: {calibration:.1} ms");

    // --- evaluation corpus ------------------------------------------------
    let corpus = Corpus::load();
    let coma = {
        let mut c = Coma::new();
        *c.aux_mut() = corpus.aux().clone();
        c
    };
    let &(li, lj) = TASKS
        .iter()
        .max_by_key(|&&(i, j)| corpus.path_set(i).len() * corpus.path_set(j).len())
        .expect("corpus has tasks");
    let largest = MatchContext::new(
        corpus.schema(li),
        corpus.schema(lj),
        corpus.path_set(li),
        corpus.path_set(lj),
        coma.aux(),
    );

    let flat = MatchPlan::from(&MatchStrategy::paper_default());
    let (ms, outcome) = time_best(runs, || run_plan(&coma, &largest, &flat, Mode::Sparse));
    tasks.push(TaskEntry {
        task: "eval/all_largest".into(),
        wall_ms: ms,
        candidates: outcome.result.len() as u64,
    });

    let pruned = topk_pruned_plan();
    let (ms, outcome) = time_best(runs, || run_plan(&coma, &largest, &pruned, Mode::Sparse));
    tasks.push(TaskEntry {
        task: "eval/topk_sparse_largest".into(),
        wall_ms: ms,
        candidates: outcome.result.len() as u64,
    });

    // Static-analysis soundness on the corpus: one tracked default-mode
    // execution of the pruned plan on the largest task, gated against
    // the pre-execution analysis (storage/fusion agreement in-process,
    // the memory bound also committed to the trajectory).
    let largest_stats = TaskStats::gather(&largest);
    let (peak, outcome) =
        alloc_track::measure_peak(|| run_plan(&coma, &largest, &pruned, Mode::Fused));
    predictions.push(gate_predictions(
        &coma,
        &largest_stats,
        &pruned,
        Mode::Fused,
        "eval/predict_topk_largest",
        &outcome,
        peak as u64,
    )?);

    let iterated = flat.clone().iterate(4, 1e-6).expect("max_rounds > 0");
    let (ms, outcome) = time_best(runs, || run_plan(&coma, &largest, &iterated, Mode::Sparse));
    tasks.push(TaskEntry {
        task: "eval/iterate_largest".into(),
        wall_ms: ms,
        candidates: outcome.result.len() as u64,
    });

    // Correctness gate: on every corpus task, dense and sparse execution
    // of the pruned plan must agree on the top-1 candidates (they are in
    // fact bit-identical; top-1 is the acceptance criterion).
    let mut corpus_candidates = 0u64;
    for &(i, j) in &TASKS {
        let ctx = MatchContext::new(
            corpus.schema(i),
            corpus.schema(j),
            corpus.path_set(i),
            corpus.path_set(j),
            coma.aux(),
        );
        let sparse = run_plan(&coma, &ctx, &pruned, Mode::Sparse);
        let dense = run_plan(&coma, &ctx, &pruned, Mode::Dense);
        let fused = run_plan(&coma, &ctx, &pruned, Mode::Fused);
        if top1(&sparse.result) != top1(&dense.result) {
            return Err(format!(
                "top-1 candidates diverge between sparse and dense execution on eval task {i}->{j}"
            ));
        }
        if sparse.result != dense.result {
            return Err(format!(
                "sparse and dense results diverge on eval task {i}->{j}"
            ));
        }
        if fused.result != dense.result {
            return Err(format!(
                "fused and dense results diverge on eval task {i}->{j}"
            ));
        }
        corpus_candidates += sparse.result.len() as u64;
    }
    eprintln!(
        "# eval corpus: sparse == dense == fused on all {} tasks",
        TASKS.len()
    );
    tasks.push(TaskEntry {
        task: "eval/topk_corpus_total".into(),
        wall_ms: 0.0,
        candidates: corpus_candidates,
    });

    // Recall gate: the inverted-index candidate generator may not miss
    // gold matches the exact prefilter finds. On every corpus task the
    // first stage of the candidate-index plan (inverted-index retrieval
    // capped at 5 per element, re-ranked by the masked liberal `Name`
    // stage and pruned to its 5 best per element — exactly the candidate
    // set `candidate_index_plan`'s refine gets to see) must reach at
    // least the recall-vs-gold of the exact plan's budget-matched
    // prefilter — the liberal `Name` stage pruned to its own 5 best per
    // element, which is precisely the candidate set
    // [`topk_pruned_plan`]'s refine gets to see. The index is a
    // recall-preserving prefilter, so a gold pair it drops while the
    // dense cross-product prefilter keeps it would be a quality
    // regression hiding behind the wall-time win.
    let exact_stage = liberal_name_stage()
        .top_k(5, coma_core::TopKPer::Both)
        .expect("k > 0");
    let cidx_stage = candidate_index_stage();
    let mut cidx_true_positives = 0u64;
    for &(i, j) in &TASKS {
        let ctx = MatchContext::new(
            corpus.schema(i),
            corpus.schema(j),
            corpus.path_set(i),
            corpus.path_set(j),
            coma.aux(),
        );
        let gold = corpus.gold_names(i, j);
        let names = |outcome: &PlanOutcome| -> BTreeSet<(String, String)> {
            outcome
                .result
                .candidates
                .iter()
                .map(|c| {
                    (
                        ctx.source_full_name(c.source.index()),
                        ctx.target_full_name(c.target.index()),
                    )
                })
                .collect()
        };
        let exact = run_plan(&coma, &ctx, &exact_stage, Mode::Sparse);
        let cidx = run_plan(&coma, &ctx, &cidx_stage, Mode::Sparse);
        let exact_recall = MatchQuality::compare(&gold, &names(&exact)).recall();
        let cidx_quality = MatchQuality::compare(&gold, &names(&cidx));
        if cidx_quality.recall() < exact_recall {
            return Err(format!(
                "candidate-index recall {:.3} fell below the exact first stage's {exact_recall:.3} \
                 on eval task {i}->{j}",
                cidx_quality.recall()
            ));
        }
        cidx_true_positives += cidx_quality.true_positives as u64;
    }
    eprintln!(
        "# eval corpus: candidate-index recall >= exact first-stage recall on all {} tasks",
        TASKS.len()
    );
    tasks.push(TaskEntry {
        task: "eval/cidx_recall_total".into(),
        wall_ms: 0.0,
        candidates: cidx_true_positives,
    });

    // Transitive-reuse gate (the paper's Table 5 setting): each corpus
    // task, leave-one-out — the other nine paper-default results are
    // stored in a repository and the task is answered by composing
    // pivot chains over the stored-mapping graph, never by fresh
    // matching. Three in-process rules: every task must find a pivot
    // path (nine mappings over five schemas always connect the excluded
    // pair), the corpus-average composed F-measure must stay within
    // [`REUSE_F1_TOLERANCE`] of fresh matching, and the composed total
    // must be strictly faster than the fresh total — reuse that loses
    // the wall-time race has no reason to exist. The `candidates` slots
    // carry true-positive totals against gold (machine-independent), so
    // future baselines additionally gate reuse quality exactly.
    let fresh_mappings = fresh_task_mappings(&corpus);
    let reuse_plan =
        MatchPlan::reuse_chains(None, ComposeCombine::Average, 3).expect("max_hops >= 2");
    let mut fresh_total_ms = 0.0;
    let mut reuse_total_ms = 0.0;
    let mut fresh_f_sum = 0.0;
    let mut reuse_f_sum = 0.0;
    let mut fresh_true_positives = 0u64;
    let mut reuse_true_positives = 0u64;
    for &(i, j) in &TASKS {
        let repo = reuse_repository(&corpus, &fresh_mappings, (i, j));
        let ctx = MatchContext::new(
            corpus.schema(i),
            corpus.schema(j),
            corpus.path_set(i),
            corpus.path_set(j),
            coma.aux(),
        )
        .with_repository(&repo);
        let (fresh_ms, fresh) = time_best(runs, || run_plan(&coma, &ctx, &flat, Mode::Sparse));
        let (reuse_ms, reuse) =
            time_best(runs, || run_plan(&coma, &ctx, &reuse_plan, Mode::Sparse));
        let found_paths = reuse
            .stages
            .first()
            .and_then(|s| s.reuse_stats.as_ref())
            .is_some_and(|s| !s.paths.is_empty());
        if !found_paths {
            return Err(format!(
                "eval/reuse: no pivot path on task {i}->{j} despite nine stored mappings"
            ));
        }
        let gold = corpus.gold_names(i, j);
        let names = |outcome: &PlanOutcome| -> BTreeSet<(String, String)> {
            outcome
                .result
                .candidates
                .iter()
                .map(|c| {
                    (
                        ctx.source_full_name(c.source.index()),
                        ctx.target_full_name(c.target.index()),
                    )
                })
                .collect()
        };
        let fresh_q = MatchQuality::compare(&gold, &names(&fresh));
        let reuse_q = MatchQuality::compare(&gold, &names(&reuse));
        fresh_total_ms += fresh_ms;
        reuse_total_ms += reuse_ms;
        fresh_f_sum += fresh_q.f_measure();
        reuse_f_sum += reuse_q.f_measure();
        fresh_true_positives += fresh_q.true_positives as u64;
        reuse_true_positives += reuse_q.true_positives as u64;
    }
    let corpus_tasks = TASKS.len() as f64;
    let fresh_f = fresh_f_sum / corpus_tasks;
    let reuse_f = reuse_f_sum / corpus_tasks;
    if reuse_f < fresh_f - REUSE_F1_TOLERANCE {
        return Err(format!(
            "eval/reuse: corpus-average composed F {reuse_f:.3} fell more than \
             {REUSE_F1_TOLERANCE} below fresh matching's {fresh_f:.3}"
        ));
    }
    if reuse_total_ms >= fresh_total_ms {
        return Err(format!(
            "eval/reuse: composed total {reuse_total_ms:.1} ms is not faster than the fresh \
             total {fresh_total_ms:.1} ms"
        ));
    }
    let reuse_speedup = fresh_total_ms / reuse_total_ms;
    eprintln!(
        "# eval/reuse: composed avg F {reuse_f:.3} vs fresh {fresh_f:.3}, \
         {reuse_total_ms:.1} ms vs {fresh_total_ms:.1} ms ({reuse_speedup:.1}x)"
    );
    tasks.push(TaskEntry {
        task: "eval/reuse_fresh".into(),
        wall_ms: fresh_total_ms,
        candidates: fresh_true_positives,
    });
    tasks.push(TaskEntry {
        task: "eval/reuse_sparse".into(),
        wall_ms: reuse_total_ms,
        candidates: reuse_true_positives,
    });
    speedups.push(SpeedupEntry {
        task: "eval/reuse".into(),
        speedup: reuse_speedup,
    });

    // --- generated large schemas -----------------------------------------
    // The deep 1200-node task is the wall-time acceptance workload:
    // structural matchers dominate it, so the sparse path shows its full
    // ≥2x margin. The full suite adds the deep 5000-node task — the
    // sparse-*storage* acceptance workload, big enough that dense stage
    // cubes dominate memory (it runs once per mode; its dense execution
    // is the "infeasible-or-slow" end of the scale).
    let mut specs = vec![WorkloadSpec::new(WorkloadShape::Deep, 1200, 42)];
    if !opts.quick {
        specs.push(WorkloadSpec::new(WorkloadShape::Star, 1000, 42));
        specs.push(WorkloadSpec::new(WorkloadShape::Wide, 1500, 42));
        specs.push(WorkloadSpec::new(WorkloadShape::Catalog, 2000, 42));
        specs.push(WorkloadSpec::new(WorkloadShape::Deep, 5000, 42));
    }
    for spec in specs {
        let label = format!("gen/{}", spec.label());
        let (source, target) = generate_task(&spec);
        let sp = PathSet::new(&source).map_err(|e| e.to_string())?;
        let tp = PathSet::new(&target).map_err(|e| e.to_string())?;
        let gen_coma = Coma::new();
        let ctx = MatchContext::new(&source, &target, &sp, &tp, gen_coma.aux());
        let spec_runs = if spec.nodes >= 5000 { 1 } else { runs };

        // Peak-allocation comparison first (one tracked run per mode),
        // then the timed best-of-N runs. The streaming-fused third mode
        // is checked for identity and recorded under its own `_fused`
        // entries — the dense/sparse entries keep measuring the storage
        // paths they always measured. Each tracked run doubles as the
        // static-analysis soundness gate for its mode: predicted
        // storage/fusion per stage must agree with what executed, and
        // the measured peak must stay under the predicted bound.
        let gen_stats = TaskStats::gather(&ctx);
        let (sparse_peak, sparse) =
            alloc_track::measure_peak(|| run_plan(&gen_coma, &ctx, &pruned, Mode::Sparse));
        let (dense_peak, dense) =
            alloc_track::measure_peak(|| run_plan(&gen_coma, &ctx, &pruned, Mode::Dense));
        if sparse.result != dense.result {
            return Err(format!("sparse and dense results diverge on {label}"));
        }
        predictions.push(gate_predictions(
            &gen_coma,
            &gen_stats,
            &pruned,
            Mode::Dense,
            &format!("{label}_predict_topk_dense"),
            &dense,
            dense_peak as u64,
        )?);
        drop(dense);
        let (fused_peak, fused) =
            alloc_track::measure_peak(|| run_plan(&gen_coma, &ctx, &pruned, Mode::Fused));
        if fused.result != sparse.result {
            return Err(format!("fused and unfused results diverge on {label}"));
        }
        let alloc_ratio = dense_peak as f64 / (sparse_peak as f64).max(1.0);
        predictions.push(gate_predictions(
            &gen_coma,
            &gen_stats,
            &pruned,
            Mode::Sparse,
            &format!("{label}_predict_topk_sparse"),
            &sparse,
            sparse_peak as u64,
        )?);
        predictions.push(gate_predictions(
            &gen_coma,
            &gen_stats,
            &pruned,
            Mode::Fused,
            &format!("{label}_predict_topk_fused"),
            &fused,
            fused_peak as u64,
        )?);
        drop((sparse, fused));

        let (sparse_ms, sparse) = time_best(spec_runs, || {
            run_plan(&gen_coma, &ctx, &pruned, Mode::Sparse)
        });
        let (dense_ms, dense) = time_best(spec_runs, || {
            run_plan(&gen_coma, &ctx, &pruned, Mode::Dense)
        });
        let dense_candidates = dense.result.len() as u64;
        drop(dense);
        let (fused_ms, fused) = time_best(spec_runs, || {
            run_plan(&gen_coma, &ctx, &pruned, Mode::Fused)
        });
        let speedup = dense_ms / sparse_ms;
        eprintln!(
            "# {label}: dense {dense_ms:.0} ms, sparse {sparse_ms:.0} ms ({speedup:.2}x), \
             fused {fused_ms:.0} ms; peak alloc dense {:.0} MiB vs sparse {:.0} MiB \
             ({alloc_ratio:.2}x) vs fused {:.0} MiB, {} candidates",
            dense_peak as f64 / (1 << 20) as f64,
            sparse_peak as f64 / (1 << 20) as f64,
            fused_peak as f64 / (1 << 20) as f64,
            sparse.result.len()
        );
        if spec.nodes >= 5000 && alloc_ratio < MIN_ALLOC_RATIO {
            return Err(format!(
                "{label}: dense/sparse peak-allocation ratio {alloc_ratio:.2}x fell below the \
                 {MIN_ALLOC_RATIO}x floor ({dense_peak} vs {sparse_peak} bytes)"
            ));
        }
        tasks.push(TaskEntry {
            task: format!("{label}_topk_dense"),
            wall_ms: dense_ms,
            candidates: dense_candidates,
        });
        tasks.push(TaskEntry {
            task: format!("{label}_topk_sparse"),
            wall_ms: sparse_ms,
            candidates: sparse.result.len() as u64,
        });
        tasks.push(TaskEntry {
            task: format!("{label}_topk_fused"),
            wall_ms: fused_ms,
            candidates: fused.result.len() as u64,
        });
        speedups.push(SpeedupEntry {
            task: format!("{label}_topk"),
            speedup,
        });
        allocs.push(AllocEntry {
            task: format!("{label}_topk_dense"),
            peak_bytes: dense_peak as u64,
        });
        allocs.push(AllocEntry {
            task: format!("{label}_topk_sparse"),
            peak_bytes: sparse_peak as u64,
        });
        allocs.push(AllocEntry {
            task: format!("{label}_topk_fused"),
            peak_bytes: fused_peak as u64,
        });
    }

    // --- row-sharded dense first stage ------------------------------------
    // The `deep20000` workload (~40k nodes across the two task sides) is
    // the row-sharding acceptance measurement: its unrestricted first
    // stage — the liberal `Name` filter's full-cross-product matrix
    // (~20k × ~20k, one ~3 GiB dense buffer) — is exactly the dense
    // computation the ROADMAP names as the remaining headroom past ~50k
    // nodes. Timed here is precisely the sharded machinery: one
    // single-shard `Matcher::compute` against `compute_rows` over
    // `shard_ranges` on scoped threads with `from_row_shards` assembly
    // (the engine's `compute_unrestricted`, spelled out so each side is
    // pinned — downstream candidate selection is deliberately excluded:
    // it is unsharded, an order of magnitude slower than the matrix at
    // this size, and would drown the signal in Amdahl overhead). The
    // shard count is the engine's own policy — `available_parallelism()`
    // — so the recorded numbers describe what production execution does:
    // scaling with the worker count on multi-core machines, and a true
    // no-op (speedup ≈ 1.0, single shard, no assembly) on one CPU, where
    // the engine deliberately never shards. `--verbose` still times a
    // forced ≥2-way partition shard by shard, so the balance of the
    // assembly path is observable everywhere. The full plan is NOT
    // executed densely at this size (the structural refine is the
    // infeasible end of the scale).
    if !opts.quick {
        let spec = WorkloadSpec::new(WorkloadShape::Deep, 20_000, 42);
        let label = format!("gen/{}", spec.label());
        let (source, target) = generate_task(&spec);
        let sp = PathSet::new(&source).map_err(|e| e.to_string())?;
        let tp = PathSet::new(&target).map_err(|e| e.to_string())?;
        let gen_coma = Coma::new();
        let ctx = MatchContext::new(&source, &target, &sp, &tp, gen_coma.aux());
        let name = gen_coma.library().get("Name").expect("standard library");
        // One dense matrix here is ~3 GiB; keep the timed repetitions low.
        let stage_runs = runs.min(2);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let ranges = shard_ranges(ctx.rows(), workers);

        // Warm-up, untimed: the process's first ~3 GiB allocation pays
        // one-off kernel costs (page zeroing, cgroup charge growth) that
        // would bias whichever side is measured first by 2-3x.
        drop(std::hint::black_box(name.compute(&ctx)));
        let (single_ms, single) = time_best(stage_runs, || name.compute(&ctx));
        let (sharded_ms, assembled) = time_best(stage_runs, || {
            let mut parts: Vec<Option<coma_core::SimMatrix>> =
                (0..ranges.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (slot, range) in parts.iter_mut().zip(&ranges) {
                    let (name, ctx, range) = (&name, &ctx, range.clone());
                    scope.spawn(move || *slot = Some(name.compute_rows(ctx, range)));
                }
            });
            coma_core::SimMatrix::from_row_shards(
                ctx.cols(),
                parts.into_iter().map(|p| p.expect("shard ran")).collect(),
            )
        });
        if assembled != single {
            return Err(format!(
                "sharded assembly diverges from the single-shard matrix on {label}"
            ));
        }
        // A machine-independent fingerprint of the assembled matrix in
        // the baseline's `candidates` slot: the number of cells at or
        // above the liberal stage's 0.3 threshold (cheap, deterministic,
        // and any cross-machine bit drift would move it).
        let fingerprint = (0..ctx.rows())
            .map(|i| assembled.row_entries(i).filter(|&(_, v)| v >= 0.3).count() as u64)
            .sum::<u64>();
        let speedup = single_ms / sharded_ms;
        eprintln!(
            "# {label}: dense Name stage matrix {single_ms:.0} ms single-shard, \
             {sharded_ms:.0} ms in {} shard(s) ({speedup:.2}x), {} cells >= 0.3",
            ranges.len(),
            fingerprint,
        );
        if opts.verbose {
            // Per-shard timing of a (≥2-way, even on one CPU) partition,
            // shard by shard, so the row balance is visible.
            for range in &shard_ranges(ctx.rows(), workers.max(2)) {
                let start = Instant::now();
                let part = name.compute_rows(&ctx, range.clone());
                eprintln!(
                    "#   shard rows {}..{}: {:.0} ms ({} cells)",
                    range.start,
                    range.end,
                    start.elapsed().as_secs_f64() * 1e3,
                    part.rows() * part.cols(),
                );
            }
        }
        tasks.push(TaskEntry {
            task: format!("{label}_name_stage_shard1"),
            wall_ms: single_ms,
            candidates: fingerprint,
        });
        tasks.push(TaskEntry {
            task: format!("{label}_name_stage_sharded"),
            wall_ms: sharded_ms,
            candidates: fingerprint,
        });
        speedups.push(SpeedupEntry {
            task: format!("{label}_name_stage"),
            speedup,
        });
    }

    // --- inverted-index candidate generation vs the exact two-stage -------
    // The acceptance measurement of the `CandidateIndex` leaf: on the two
    // sub-linear-retrieval workloads — `deep20000`, whose exact first
    // stage is the ~3 GiB cross-product matrix timed above, and
    // `catalog5000`, the shallow token-dense shape built for vocabulary
    // retrieval, at a size where the exact cross-product first stage
    // genuinely hurts (at the trajectory entry's 2000 nodes both first
    // stages cost a few hundred ms and the comparison drowns in machine
    // noise) — the full retrieve→rerank→refine plan
    // ([`candidate_index_plan`]) must beat the exact two-stage plan
    // ([`topk_pruned_plan`], same 5-per-element refine budget) end to
    // end. Both run in the engine's default configuration. The index
    // plan's first stage never scores the m×n cross product — its
    // per-side vocabulary indexes are built in near-linear time and the
    // candidate mask comes from shared-posting lookups alone; the
    // reported `index_stats` presence is asserted so a silent fallback to
    // dense scoring cannot masquerade as a win.
    if !opts.quick {
        for spec in [
            WorkloadSpec::new(WorkloadShape::Deep, 20_000, 42),
            WorkloadSpec::new(WorkloadShape::Catalog, 5000, 42),
        ] {
            let label = format!("gen/{}", spec.label());
            let (source, target) = generate_task(&spec);
            let sp = PathSet::new(&source).map_err(|e| e.to_string())?;
            let tp = PathSet::new(&target).map_err(|e| e.to_string())?;
            let gen_coma = Coma::new();
            let ctx = MatchContext::new(&source, &target, &sp, &tp, gen_coma.aux());
            let spec_runs = if spec.nodes >= 5000 { 1 } else { runs };

            let exact_plan = topk_pruned_plan();
            let cidx_plan = candidate_index_plan();
            let (exact_ms, exact) = time_best(spec_runs, || {
                run_plan(&gen_coma, &ctx, &exact_plan, Mode::Fused)
            });
            let (cidx_ms, cidx) = time_best(spec_runs, || {
                run_plan(&gen_coma, &ctx, &cidx_plan, Mode::Fused)
            });
            let stats = cidx
                .stages
                .first()
                .and_then(|s| s.index_stats)
                .ok_or_else(|| {
                    format!("{label}: the candidate-index stage reported no index statistics")
                })?;
            let speedup = exact_ms / cidx_ms;
            eprintln!(
                "# {label}: exact two-stage {exact_ms:.0} ms vs candidate-index {cidx_ms:.0} ms \
                 ({speedup:.2}x); index built in {:.1} ms ({} token + {} gram posting entries), \
                 {} vs {} candidates",
                stats.build_nanos as f64 / 1e6,
                stats.token_postings,
                stats.gram_postings,
                exact.result.len(),
                cidx.result.len(),
            );
            if cidx_ms >= exact_ms {
                return Err(format!(
                    "{label}: the candidate-index plan ({cidx_ms:.0} ms) did not beat the exact \
                     two-stage plan ({exact_ms:.0} ms)"
                ));
            }
            tasks.push(TaskEntry {
                task: format!("{label}_plan_exact"),
                wall_ms: exact_ms,
                candidates: exact.result.len() as u64,
            });
            tasks.push(TaskEntry {
                task: format!("{label}_plan_cidx"),
                wall_ms: cidx_ms,
                candidates: cidx.result.len() as u64,
            });
            speedups.push(SpeedupEntry {
                task: format!("{label}_plan"),
                speedup,
            });
        }
    }

    // --- transitive reuse across a generated schema family ----------------
    // The corpus reuse gate above answers the quality question at paper
    // scale; this one answers the wall-time question at workload scale.
    // A family of three near-duplicate 1200-node deep schemas
    // ([`generate_family`]): the F0↔F1 and F1↔F2 tasks are matched
    // fresh with the trajectory's top-k plan and stored, then the held
    // out F0↔F2 task is answered by composition over the F1 pivot and
    // raced against matching it fresh. Composition walks stored
    // mappings, never matchers, so it must beat fresh matching outright
    // — gated in-process; the entries follow the `_fresh`/`_sparse`
    // naming so `compare`'s speedup waiver finds the fast side.
    if !opts.quick {
        let spec = WorkloadSpec::new(WorkloadShape::Deep, 1200, 42);
        let label = format!("gen/family_{}", spec.label());
        let family = generate_family(&spec, 3);
        let family_paths: Vec<PathSet> = family
            .iter()
            .map(|s| PathSet::new(s).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let gen_coma = Coma::new();
        let fresh_plan = topk_pruned_plan();
        let mut repo = Repository::new();
        for member in &family {
            repo.put_schema(member.clone());
        }
        for (i, j) in [(0usize, 1usize), (1, 2)] {
            let ctx = MatchContext::new(
                &family[i],
                &family[j],
                &family_paths[i],
                &family_paths[j],
                gen_coma.aux(),
            );
            let outcome = run_plan(&gen_coma, &ctx, &fresh_plan, Mode::Fused);
            repo.put_mapping(outcome.result.to_mapping(&ctx, MappingKind::Automatic));
        }
        let ctx = MatchContext::new(
            &family[0],
            &family[2],
            &family_paths[0],
            &family_paths[2],
            gen_coma.aux(),
        )
        .with_repository(&repo);
        let (fresh_ms, fresh) =
            time_best(runs, || run_plan(&gen_coma, &ctx, &fresh_plan, Mode::Fused));
        let family_reuse_plan =
            MatchPlan::reuse_chains(None, ComposeCombine::Average, 3).expect("max_hops >= 2");
        let (reuse_ms, reuse) = time_best(runs, || {
            run_plan(&gen_coma, &ctx, &family_reuse_plan, Mode::Sparse)
        });
        let via = reuse
            .stages
            .first()
            .and_then(|s| s.reuse_stats.as_ref())
            .and_then(|s| s.paths.first())
            .map(|p| p.via.clone())
            .ok_or_else(|| format!("{label}: reuse found no pivot path through the family"))?;
        if via != family[1].name() {
            return Err(format!(
                "{label}: reuse pivoted through {via}, not the middle member {}",
                family[1].name()
            ));
        }
        if reuse.result.candidates.is_empty() {
            return Err(format!("{label}: composition produced no correspondences"));
        }
        if reuse_ms >= fresh_ms {
            return Err(format!(
                "{label}: composed reuse ({reuse_ms:.1} ms) did not beat fresh matching \
                 ({fresh_ms:.1} ms)"
            ));
        }
        let speedup = fresh_ms / reuse_ms;
        eprintln!(
            "# {label}: fresh {fresh_ms:.0} ms vs composed-over-{via} {reuse_ms:.1} ms \
             ({speedup:.0}x), {} vs {} candidates",
            fresh.result.len(),
            reuse.result.len(),
        );
        tasks.push(TaskEntry {
            task: format!("{label}_fresh"),
            wall_ms: fresh_ms,
            candidates: fresh.result.len() as u64,
        });
        tasks.push(TaskEntry {
            task: format!("{label}_sparse"),
            wall_ms: reuse_ms,
            candidates: reuse.result.len() as u64,
        });
        speedups.push(SpeedupEntry {
            task: label.clone(),
            speedup,
        });
    }

    // --- streaming-fused pruning at dense-infeasible scale ----------------
    // The `deep100000` workload (~100k paths per side) is the fusion
    // acceptance measurement: its liberal `Name` filter's full matrix
    // would be one ~75 GiB dense buffer — not slow, *impossible* on any
    // reasonable machine. The streaming-fused engine runs the threshold
    // `Filter` inside each row shard instead, so the execution's whole
    // peak must stay under [`FUSED_PEAK_CEILING`]. A threshold `Filter`
    // (not `TopK`) deliberately: `TopK` materializes an `m × n` pair-mask
    // bitset, itself > 1 GiB at this scale. One run, timed and
    // peak-tracked together; the ceiling is gated in-process here and
    // across runs by `compare`.
    if !opts.quick {
        let spec = WorkloadSpec::new(WorkloadShape::Deep, 100_000, 42);
        let label = format!("gen/{}", spec.label());
        let (source, target) = generate_task(&spec);
        let sp = PathSet::new(&source).map_err(|e| e.to_string())?;
        let tp = PathSet::new(&target).map_err(|e| e.to_string())?;
        let gen_coma = Coma::new();
        let ctx = MatchContext::new(&source, &target, &sp, &tp, gen_coma.aux());
        let fused_plan = fused_filter_plan();

        let start = Instant::now();
        let (peak, outcome) =
            alloc_track::measure_peak(|| run_plan(&gen_coma, &ctx, &fused_plan, Mode::Fused));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if outcome.stages.len() != 1 || !outcome.stages[0].fused {
            return Err(format!(
                "{label}: the filter stage did not fuse ({} stage(s))",
                outcome.stages.len()
            ));
        }
        let peak = peak as u64;
        let dense_bytes = ctx.rows() as u64 * ctx.cols() as u64 * 8;
        eprintln!(
            "# {label}: fused filter {wall_ms:.0} ms, peak {:.0} MiB (ceiling {:.0} MiB; one \
             dense matrix alone would be {:.0} GiB), {} candidates",
            peak as f64 / (1 << 20) as f64,
            FUSED_PEAK_CEILING as f64 / (1 << 20) as f64,
            dense_bytes as f64 / (1 << 30) as f64,
            outcome.result.len()
        );
        if peak > FUSED_PEAK_CEILING {
            return Err(format!(
                "{label}: fused execution peaked at {peak} bytes, above the {FUSED_PEAK_CEILING} \
                 byte ceiling"
            ));
        }
        tasks.push(TaskEntry {
            task: format!("{label}_fused_filter"),
            wall_ms,
            candidates: outcome.result.len() as u64,
        });
        ceilings.push(CeilingEntry {
            task: format!("{label}_fused_filter"),
            peak_bytes: peak,
            ceiling_bytes: FUSED_PEAK_CEILING,
        });
    }

    // --- matching as a service --------------------------------------------
    // The `coma-server` service loop measured end to end: concurrent
    // socket clients against a stored, memo-warm schema pair. Cheap, so
    // it runs in quick mode too — the CI gate covers the service layer.
    let throughput = service_throughput(runs)?;

    Ok(BenchReport {
        version: 5,
        calibration_ms: calibration,
        tasks,
        speedups,
        allocs,
        ceilings,
        throughput,
        predictions,
    })
}

/// Compares a fresh report against the committed baseline. Returns the
/// list of regressions (empty = gate passes).
///
/// `calibrated` is the interleaved `--calibrate-baseline` re-measurement
/// of the baseline code on this machine, when one ran: every
/// wall-clock-shaped rule — wall times, service throughput, within-run
/// speedup ratios, peak-allocation ratios — gates against it (a
/// same-machine, same-hour relative comparison, immune to environment
/// drift between CI runners). Only the genuinely machine-independent
/// rules fall back to the committed numbers in `baseline`: candidate
/// counts and the fused peak ceilings (a committed contract); recall is
/// gated in-process during measurement.
fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    calibrated: Option<&BenchReport>,
) -> Vec<String> {
    let mut failures = Vec::new();
    // Machine-independent candidate counts: always the committed numbers.
    for base in &baseline.tasks {
        let Some(cur) = current.tasks.iter().find(|t| t.task == base.task) else {
            continue; // quick mode measures a subset of the baseline
        };
        if cur.candidates != base.candidates {
            failures.push(format!(
                "{}: candidates changed {} -> {}",
                base.task, base.candidates, cur.candidates
            ));
        }
    }
    // Wall-clock-shaped rules: against the calibrated re-run when one
    // exists, the committed numbers otherwise. (With a calibrated
    // reference the normalization scale is ≈ 1 — same machine, same hour
    // — but applying it still absorbs load drift across the run.)
    let wall_ref = calibrated.unwrap_or(baseline);
    let wall_scale = current.calibration_ms / wall_ref.calibration_ms.max(1e-9);
    for base in &wall_ref.tasks {
        let Some(cur) = current.tasks.iter().find(|t| t.task == base.task) else {
            continue; // quick mode measures a subset of the baseline
        };
        // Machine-speed-normalized wall-time regression gate. Tasks with
        // near-zero baselines (pure correctness entries) are skipped.
        let allowed = base.wall_ms * wall_scale * (1.0 + TOLERANCE);
        if base.wall_ms > 1.0 && cur.wall_ms > allowed {
            failures.push(format!(
                "{}: wall time regressed {:.1} ms -> {:.1} ms (allowed {:.1} ms at this \
                 machine's calibration {:.1} ms vs {} calibration {:.1} ms)",
                base.task,
                base.wall_ms,
                cur.wall_ms,
                allowed,
                current.calibration_ms,
                if calibrated.is_some() {
                    "the re-measured baseline's"
                } else {
                    "baseline"
                },
                wall_ref.calibration_ms
            ));
        }
    }
    for base in &wall_ref.throughput {
        let Some(cur) = current.throughput.iter().find(|t| t.task == base.task) else {
            continue;
        };
        // Higher is better: the normalized floor shrinks on a slower
        // machine (wall_scale > 1).
        let floor = base.tasks_per_sec / wall_scale * (1.0 - TOLERANCE);
        if cur.tasks_per_sec < floor {
            failures.push(format!(
                "{}: service throughput regressed {:.0} -> {:.0} tasks/sec (floor {:.0})",
                base.task, base.tasks_per_sec, cur.tasks_per_sec, floor
            ));
        }
    }
    for base in &wall_ref.speedups {
        let Some(cur) = current.speedups.iter().find(|s| s.task == base.task) else {
            continue;
        };
        // The speedup rules protect the *fast path* of a within-run
        // comparison — dense/sparse for the `_topk` entries, single-shard
        // vs sharded for the `_name_stage` entries. The 2x floor holds
        // wherever the baseline demonstrates it (the structural-heavy
        // sparse acceptance workloads; shapes whose baseline never
        // reached 2x are gated by the relative rule only), and the ratio
        // may not lose more than the tolerance. Both rules compare a
        // ratio whose denominator is the fast side, though — so when the
        // fast side's own wall time improved on the (normalized)
        // baseline, a ratio dip means the slow comparison path got
        // faster, which is an improvement and not a regression: the
        // ratio rules are waived and the fast side stays gated by its
        // absolute wall-time rule above. Sharding speedups are
        // additionally exempt from the 2x floor — they scale with the
        // machine's core count (≈1.0 on one CPU is correct behavior, not
        // a regression), so only the relative rule applies to them. Both
        // sides of a speedup are wall clocks, so the whole rule follows
        // `wall_ref`: a machine whose memory subsystem is having a bad
        // day skews the dense/sharded side for baseline code too.
        let shard_speedup = base.task.ends_with("_name_stage");
        let fast_task = if shard_speedup {
            format!("{}_sharded", base.task)
        } else {
            format!("{}_sparse", base.task)
        };
        let fast_improved = match (
            wall_ref.tasks.iter().find(|t| t.task == fast_task),
            current.tasks.iter().find(|t| t.task == fast_task),
        ) {
            (Some(b), Some(c)) => c.wall_ms <= b.wall_ms * wall_scale,
            _ => false,
        };
        if fast_improved {
            continue;
        }
        if !shard_speedup && base.speedup >= MIN_SPEEDUP && cur.speedup < MIN_SPEEDUP {
            failures.push(format!(
                "{}: dense/sparse speedup {:.2}x fell below the {MIN_SPEEDUP}x floor",
                base.task, cur.speedup
            ));
        }
        if cur.speedup < base.speedup * (1.0 - TOLERANCE) {
            failures.push(format!(
                "{}: speedup regressed {:.2}x -> {:.2}x",
                base.task, base.speedup, cur.speedup
            ));
        }
    }
    // Version-2 baselines carry `allocs` entries. Absolute peaks are
    // machine-dependent (leaf fan-out parallelism), but the dense/sparse
    // *ratio* of one workload is comparable across machines: fail when a
    // workload's current ratio collapses below half the reference's —
    // that means sparse storage stopped pulling its weight. Peaks move
    // with allocator/THP state, so the ratio follows `wall_ref` too.
    for base_dense in &wall_ref.allocs {
        let Some(stem) = base_dense.task.strip_suffix("_dense") else {
            continue;
        };
        let sparse_task = format!("{stem}_sparse");
        let find = |allocs: &[AllocEntry], task: &str| {
            allocs
                .iter()
                .find(|a| a.task == task)
                .map(|a| a.peak_bytes as f64)
        };
        let (Some(base_sparse), Some(cur_dense), Some(cur_sparse)) = (
            find(&wall_ref.allocs, &sparse_task),
            find(&current.allocs, &base_dense.task),
            find(&current.allocs, &sparse_task),
        ) else {
            continue; // quick mode measures a subset of the baseline
        };
        let base_ratio = base_dense.peak_bytes as f64 / base_sparse.max(1.0);
        let cur_ratio = cur_dense / cur_sparse.max(1.0);
        if cur_ratio < base_ratio * 0.5 {
            failures.push(format!(
                "{stem}: dense/sparse peak-allocation ratio collapsed {base_ratio:.2}x -> \
                 {cur_ratio:.2}x"
            ));
        }
    }
    // Version-3 baselines carry fused peak ceilings. The fused engine
    // bounds its in-flight memory by a byte budget rather than the core
    // count, so absolute peaks are machine-comparable here: fail when a
    // current run's peak exceeds the *baseline's* ceiling (a committed
    // contract, not this binary's possibly-updated constant).
    for base in &baseline.ceilings {
        let Some(cur) = current.ceilings.iter().find(|c| c.task == base.task) else {
            continue; // quick mode skips the fused workload
        };
        if cur.peak_bytes > base.ceiling_bytes {
            failures.push(format!(
                "{}: fused peak {} bytes exceeds the baseline ceiling {} bytes",
                base.task, cur.peak_bytes, base.ceiling_bytes
            ));
        }
    }
    // Version-5 baselines carry static-analysis prediction bounds. The
    // bound is a pure function of the seeded task statistics and the
    // engine configuration — machine-independent, like the candidate
    // counts — so it is a committed contract: a measured peak above the
    // *baseline's* bound means the analyzer's promise broke between the
    // commits, and a freshly predicted bound above the committed one
    // means the promise was quietly loosened (a deliberate cost-model
    // change rolls the baseline, exactly like a candidate-count change).
    for base in &baseline.predictions {
        let Some(cur) = current.predictions.iter().find(|p| p.task == base.task) else {
            continue; // quick mode measures a subset of the baseline
        };
        if cur.measured_bytes > base.predicted_bytes {
            failures.push(format!(
                "{}: measured peak {} bytes exceeds the committed prediction bound {} bytes",
                base.task, cur.measured_bytes, base.predicted_bytes
            ));
        }
        if cur.predicted_bytes > base.predicted_bytes {
            failures.push(format!(
                "{}: predicted bound loosened {} -> {} bytes",
                base.task, base.predicted_bytes, cur.predicted_bytes
            ));
        }
    }
    failures
}

/// A resolved `--calibrate-baseline` operand: the baseline `perf_smoke`
/// binary to re-run, plus the temporary git worktree it was built in
/// (removed on drop) when the operand was a ref rather than a binary.
struct CalibratedBaseline {
    bin: PathBuf,
    worktree: Option<PathBuf>,
}

impl Drop for CalibratedBaseline {
    fn drop(&mut self) {
        if let Some(dir) = &self.worktree {
            std::process::Command::new("git")
                .args(["worktree", "remove", "--force"])
                .arg(dir)
                .status()
                .ok();
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// Resolves the `--calibrate-baseline` operand: an existing file is used
/// as the baseline binary directly; anything else is treated as a git
/// ref, checked out into a temporary worktree, and built there with a
/// private target directory (sharing the main target directory would
/// flip-flop its artifacts between the two revisions).
fn resolve_baseline(spec: &str) -> Result<CalibratedBaseline, String> {
    let path = PathBuf::from(spec);
    if path.is_file() {
        return Ok(CalibratedBaseline {
            bin: path,
            worktree: None,
        });
    }
    let dir = std::env::temp_dir().join(format!("perf_smoke_baseline_{}", std::process::id()));
    // A leftover worktree from a killed run would make `worktree add` fail.
    std::process::Command::new("git")
        .args(["worktree", "remove", "--force"])
        .arg(&dir)
        .output()
        .ok();
    std::fs::remove_dir_all(&dir).ok();
    eprintln!("# building baseline perf_smoke at {spec} …");
    let added = std::process::Command::new("git")
        .args(["worktree", "add", "--force", "--detach"])
        .arg(&dir)
        .arg(spec)
        .status()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !added.success() {
        return Err(format!(
            "`git worktree add {} {spec}` failed — not a file and not a git ref? \
             (ref resolution runs in the current directory, which must be inside the repo)",
            dir.display()
        ));
    }
    let baseline = CalibratedBaseline {
        bin: dir.join("target/release/perf_smoke"),
        worktree: Some(dir.clone()),
    };
    let built = std::process::Command::new("cargo")
        .args([
            "build",
            "--release",
            "--locked",
            "-p",
            "coma-bench",
            "--bin",
            "perf_smoke",
        ])
        .current_dir(&dir)
        .env("CARGO_TARGET_DIR", dir.join("target"))
        .status()
        .map_err(|e| format!("cannot run cargo: {e}"))?;
    if !built.success() {
        return Err(format!("building the baseline perf_smoke at {spec} failed"));
    }
    Ok(baseline)
}

/// Runs the baseline binary once with the candidate's own suite options,
/// returning its report. Its stderr passes through, prefixed by the
/// round banner printed by the caller.
fn run_baseline(
    bin: &std::path::Path,
    opts: &Options,
    round: usize,
) -> Result<BenchReport, String> {
    let out = std::env::temp_dir().join(format!(
        "perf_smoke_baseline_{}_{round}.json",
        std::process::id()
    ));
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("--out").arg(&out);
    cmd.args(["--runs", &opts.runs.to_string()]);
    if opts.quick {
        cmd.arg("--quick");
    }
    let status = cmd
        .status()
        .map_err(|e| format!("cannot run baseline {}: {e}", bin.display()))?;
    if !status.success() {
        return Err(format!(
            "baseline run {} failed with {status}",
            bin.display()
        ));
    }
    let text = std::fs::read_to_string(&out)
        .map_err(|e| format!("cannot read baseline report {}: {e}", out.display()))?;
    std::fs::remove_file(&out).ok();
    serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline report: {e}"))
}

/// Merges the two bracketing baseline runs into one reference, taking
/// the *lenient* side of each wall-clock-shaped entry: per-task worst
/// (slowest) wall time, per-entry worst throughput, smallest speedup
/// ratio, largest peak allocation, and the best calibration. The
/// candidate is measured once, between the brackets, so noise that
/// inflates its numbers usually bled into at least one adjacent bracket
/// — merging toward the slow side widens the allowance instead of
/// letting one lucky baseline run re-create the committed-number false
/// positives this mode exists to kill. A real regression still fails:
/// it exceeds even the noisy bracket by more than the tolerance.
fn merge_brackets(mut a: BenchReport, b: BenchReport) -> BenchReport {
    a.calibration_ms = a.calibration_ms.min(b.calibration_ms);
    for task in &mut a.tasks {
        if let Some(other) = b.tasks.iter().find(|t| t.task == task.task) {
            task.wall_ms = task.wall_ms.max(other.wall_ms);
        }
    }
    for entry in &mut a.throughput {
        if let Some(other) = b.throughput.iter().find(|t| t.task == entry.task) {
            entry.tasks_per_sec = entry.tasks_per_sec.min(other.tasks_per_sec);
        }
    }
    for entry in &mut a.speedups {
        if let Some(other) = b.speedups.iter().find(|s| s.task == entry.task) {
            entry.speedup = entry.speedup.min(other.speedup);
        }
    }
    for entry in &mut a.allocs {
        if let Some(other) = b.allocs.iter().find(|al| al.task == entry.task) {
            entry.peak_bytes = entry.peak_bytes.max(other.peak_bytes);
        }
    }
    a
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.calibrate.is_some() && opts.check.is_none() {
        eprintln!("error: --calibrate-baseline refines the gate and needs --check");
        return ExitCode::from(2);
    }
    // Load the baseline up front: `--out` may legitimately point at the
    // same file (refreshing the committed trajectory), and the gate must
    // compare against the numbers as committed, not the fresh ones.
    let baseline: Option<BenchReport> = match &opts.check {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("error: cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    // Interleave the calibrated baseline around the candidate: resolve
    // (build) it first, run it once before and once after measure(), and
    // gate on the lenient merge of the two bracketing runs.
    let calibrate = match opts.calibrate.as_deref().map(resolve_baseline) {
        Some(Ok(c)) => Some(c),
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let before = match &calibrate {
        Some(cal) => {
            eprintln!("# baseline run 1/2 (before the candidate) …");
            match run_baseline(&cal.bin, &opts, 1) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let report = match measure(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let calibrated = match (&calibrate, before) {
        (Some(cal), Some(before)) => {
            eprintln!("# baseline run 2/2 (after the candidate) …");
            match run_baseline(&cal.bin, &opts, 2) {
                Ok(after) => Some(merge_brackets(before, after)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&opts.out, format!("{json}\n")) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {}", opts.out);

    if let Some(baseline) = &baseline {
        let path = opts.check.as_deref().unwrap_or_default();
        let failures = compare(&report, baseline, calibrated.as_ref());
        if !failures.is_empty() {
            eprintln!("perf-smoke gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            return ExitCode::FAILURE;
        }
        match &opts.calibrate {
            Some(spec) => eprintln!(
                "# perf-smoke gate passed against {path} \
                 (wall-clock rules vs the interleaved re-run of {spec})"
            ),
            None => eprintln!("# perf-smoke gate passed against {path}"),
        }
    }
    ExitCode::SUCCESS
}
