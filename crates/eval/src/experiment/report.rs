//! Reporting helpers for the figure/table binaries: Overall-range
//! histograms (Figures 9 and 10), best-per-matcher extraction (Figures 11
//! and 12) and plain-text table rendering.

use crate::experiment::runner::SeriesResult;
use std::collections::BTreeMap;

/// Number of Overall bins: one for negative values ("Min–0.0") plus ten
/// `[0.0,0.1) … [0.9,1.0]` ranges.
pub const BIN_COUNT: usize = 11;

/// The bin index of an average-Overall value.
pub fn overall_bin(overall: f64) -> usize {
    if overall < 0.0 {
        0
    } else {
        // 1.0 lands in the last bin.
        1 + ((overall * 10.0).floor() as usize).min(9)
    }
}

/// Human-readable bin labels, lowest first.
pub fn bin_labels() -> Vec<String> {
    let mut labels = vec!["Min-0.0".to_string()];
    for i in 0..10 {
        labels.push(format!(
            "{:.1}-{:.1}",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0
        ));
    }
    labels
}

/// Histogram of series counts per Overall bin (Figure 9).
pub fn histogram(results: &[SeriesResult]) -> [usize; BIN_COUNT] {
    let mut bins = [0usize; BIN_COUNT];
    for r in results {
        bins[overall_bin(r.average.overall)] += 1;
    }
    bins
}

/// Per-group histograms: the share of each group's series in every Overall
/// bin (Figure 10). The key function labels each series with its strategy
/// group (e.g. the aggregation name).
pub fn grouped_histogram(
    results: &[SeriesResult],
    key: impl Fn(&SeriesResult) -> String,
) -> BTreeMap<String, [usize; BIN_COUNT]> {
    let mut out: BTreeMap<String, [usize; BIN_COUNT]> = BTreeMap::new();
    for r in results {
        let bins = out.entry(key(r)).or_insert([0; BIN_COUNT]);
        bins[overall_bin(r.average.overall)] += 1;
    }
    out
}

/// The best series (highest average Overall) per matcher label.
pub fn best_per_matcher(results: &[SeriesResult]) -> BTreeMap<String, SeriesResult> {
    let mut out: BTreeMap<String, SeriesResult> = BTreeMap::new();
    for r in results {
        let label = r.spec.matcher_label();
        match out.get(&label) {
            Some(best) if best.average.overall >= r.average.overall => {}
            _ => {
                out.insert(label, r.clone());
            }
        }
    }
    out
}

/// Renders a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:<width$} ", h, width = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:<width$} ", cell, width = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Formats a quality triple the way the paper's charts label them.
pub fn fmt_quality(q: &crate::metrics::AverageQuality) -> Vec<String> {
    vec![
        format!("{:.3}", q.precision),
        format!("{:.3}", q.recall),
        format!("{:.3}", q.overall),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_the_range() {
        assert_eq!(overall_bin(-5.0), 0);
        assert_eq!(overall_bin(-0.0001), 0);
        assert_eq!(overall_bin(0.0), 1);
        assert_eq!(overall_bin(0.05), 1);
        assert_eq!(overall_bin(0.1), 2);
        assert_eq!(overall_bin(0.73), 8);
        assert_eq!(overall_bin(0.99), 10);
        assert_eq!(overall_bin(1.0), 10);
        assert_eq!(bin_labels().len(), BIN_COUNT);
        assert_eq!(bin_labels()[0], "Min-0.0");
        assert_eq!(bin_labels()[8], "0.7-0.8");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Matcher", "Overall"],
            &[
                vec!["NamePath".into(), "0.45".into()],
                vec!["All".into(), "0.73".into()],
            ],
        );
        assert!(t.contains("| Matcher  | Overall |"));
        assert!(t.contains("| NamePath | 0.45    |"));
        assert!(t.starts_with('+'));
    }
}
