//! Search-space restriction between plan stages.

use super::plan::TopKPer;
use crate::cube::SimMatrix;
use crate::result::MatchResult;

/// A bitset over the `m × n` element-pair space of a match task, used by
/// [`Seq`](super::MatchPlan::Seq) to restrict a later stage to the pairs an
/// earlier stage selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl PairMask {
    /// An all-disallowed mask for an `rows × cols` task.
    pub fn new(rows: usize, cols: usize) -> PairMask {
        PairMask {
            rows,
            cols,
            bits: vec![0; (rows * cols).div_ceil(64)],
        }
    }

    /// The mask of the pairs a stage result selected.
    pub fn from_result(rows: usize, cols: usize, result: &MatchResult) -> PairMask {
        let mut mask = PairMask::new(rows, cols);
        for c in &result.candidates {
            mask.allow(c.source.index(), c.target.index());
        }
        mask
    }

    /// The mask keeping, per row / column / both (union), only the `k`
    /// best nonzero cells of `matrix`. Ranking uses the same comparator as
    /// candidate selection (descending similarity, ties to the lower
    /// index), so the mask is deterministic and consistent with it.
    pub fn top_k_of(matrix: &SimMatrix, k: usize, per: TopKPer) -> PairMask {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut mask = PairMask::new(rows, cols);
        let mut ranked: Vec<(usize, f64)> = Vec::with_capacity(rows.max(cols));
        if per != TopKPer::Col {
            for i in 0..rows {
                ranked.clear();
                ranked.extend(
                    matrix
                        .row(i)
                        .iter()
                        .enumerate()
                        .filter(|&(_, &v)| v > 0.0)
                        .map(|(j, &v)| (j, v)),
                );
                crate::combine::sort_desc(&mut ranked);
                for &(j, _) in ranked.iter().take(k) {
                    mask.allow(i, j);
                }
            }
        }
        if per != TopKPer::Row {
            for j in 0..cols {
                ranked.clear();
                ranked.extend(
                    (0..rows)
                        .map(|i| (i, matrix.get(i, j)))
                        .filter(|&(_, v)| v > 0.0),
                );
                crate::combine::sort_desc(&mut ranked);
                for &(i, _) in ranked.iter().take(k) {
                    mask.allow(i, j);
                }
            }
        }
        mask
    }

    /// Number of source elements (`m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target elements (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Allows the pair (source `i`, target `j`).
    pub fn allow(&mut self, i: usize, j: usize) {
        let cell = i * self.cols + j;
        self.bits[cell / 64] |= 1 << (cell % 64);
    }

    /// Whether the pair (source `i`, target `j`) is in the search space.
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        let cell = i * self.cols + j;
        self.bits[cell / 64] & (1 << (cell % 64)) != 0
    }

    /// Number of allowed pairs.
    pub fn allowed_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no pair is allowed.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The allowed column indices of row `i`, ascending.
    pub fn allowed_in_row(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.cols).filter(move |&j| self.allows(i, j))
    }

    /// The fraction of the pair space this mask allows (0 for an empty
    /// task). The engine uses it to decide between the sparse and the
    /// dense (compute-full-then-mask) execution path.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.allowed_count() as f64 / cells as f64
        }
    }

    /// The intersection with another mask of the same dimensions.
    pub fn intersect(&self, other: &PairMask) -> PairMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask dimensions must agree"
        );
        PairMask {
            rows: self.rows,
            cols: self.cols,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Zeroes every disallowed cell of `matrix` in place.
    pub fn apply(&self, matrix: &mut SimMatrix) {
        debug_assert_eq!((matrix.rows(), matrix.cols()), (self.rows, self.cols));
        for i in 0..self.rows {
            let row = matrix.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                if !self.allows(i, j) {
                    *v = 0.0;
                }
            }
        }
    }

    /// A copy of `full` with every disallowed cell zeroed.
    pub fn masked_clone(&self, full: &SimMatrix) -> SimMatrix {
        let mut out = full.clone();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_and_query() {
        let mut mask = PairMask::new(3, 70); // spans multiple words
        assert!(mask.is_empty());
        mask.allow(0, 0);
        mask.allow(2, 69);
        assert!(mask.allows(0, 0));
        assert!(mask.allows(2, 69));
        assert!(!mask.allows(1, 1));
        assert_eq!(mask.allowed_count(), 2);
    }

    #[test]
    fn apply_zeroes_disallowed_cells() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 0.8);
        m.set(0, 1, 0.6);
        m.set(1, 1, 0.4);
        let mut mask = PairMask::new(2, 2);
        mask.allow(0, 1);
        let masked = mask.masked_clone(&m);
        assert_eq!(masked.get(0, 0), 0.0);
        assert_eq!(masked.get(0, 1), 0.6);
        assert_eq!(masked.get(1, 1), 0.0);
        // The original is untouched.
        assert_eq!(m.get(0, 0), 0.8);
    }

    #[test]
    fn top_k_of_keeps_best_cells_per_side() {
        let mut m = SimMatrix::new(2, 3);
        m.set(0, 0, 0.9);
        m.set(0, 1, 0.5);
        m.set(0, 2, 0.7);
        m.set(1, 0, 0.8);
        m.set(1, 1, 0.6);
        // Per row, k = 1: each source keeps its single best target.
        let rows = PairMask::top_k_of(&m, 1, TopKPer::Row);
        assert!(rows.allows(0, 0) && rows.allows(1, 0));
        assert_eq!(rows.allowed_count(), 2);
        // Per column, k = 1: each target keeps its single best source.
        let cols = PairMask::top_k_of(&m, 1, TopKPer::Col);
        assert!(cols.allows(0, 0)); // col 0: 0.9 beats 0.8
        assert!(cols.allows(1, 1)); // col 1: 0.6 beats 0.5
        assert!(cols.allows(0, 2)); // col 2: only nonzero cell
        assert_eq!(cols.allowed_count(), 3);
        // Both = union: every element of either side keeps its best.
        let both = PairMask::top_k_of(&m, 1, TopKPer::Both);
        for (i, j) in [(0, 0), (1, 0), (1, 1), (0, 2)] {
            assert!(both.allows(i, j), "({i},{j})");
        }
        assert_eq!(both.allowed_count(), 4);
        // Zero cells are never kept, and k larger than the row is fine.
        let all = PairMask::top_k_of(&m, 10, TopKPer::Both);
        assert_eq!(all.allowed_count(), 5);
        assert!(!all.allows(1, 2));
    }

    #[test]
    fn row_iteration_and_density() {
        let mut mask = PairMask::new(2, 70);
        mask.allow(0, 3);
        mask.allow(0, 69);
        mask.allow(1, 0);
        assert_eq!(mask.allowed_in_row(0).collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(mask.allowed_in_row(1).collect::<Vec<_>>(), vec![0]);
        assert!((mask.density() - 3.0 / 140.0).abs() < 1e-12);
        assert_eq!(PairMask::new(0, 0).density(), 0.0);
    }

    #[test]
    fn intersection_keeps_common_pairs() {
        let mut a = PairMask::new(2, 2);
        a.allow(0, 0);
        a.allow(1, 1);
        let mut b = PairMask::new(2, 2);
        b.allow(1, 1);
        b.allow(0, 1);
        let both = a.intersect(&b);
        assert!(both.allows(1, 1));
        assert!(!both.allows(0, 0));
        assert_eq!(both.allowed_count(), 1);
    }
}
