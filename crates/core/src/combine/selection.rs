use crate::cube::SimMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Step 2a: match direction (paper, Section 6.2).
///
/// Given schemas S1 (source, `m` elements) and S2 (target, `n` elements),
/// the *smaller* and *larger* roles are assigned by comparing `m` and `n`
/// (ties treat the target as the smaller schema, matching the paper's
/// `|S2| ≤ |S1|` convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Match the larger schema against the smaller target: candidates from
    /// the larger schema are ranked and selected with respect to each
    /// element of the smaller schema.
    LargeSmall,
    /// The opposite: rank the smaller schema's elements for each element of
    /// the larger schema.
    SmallLarge,
    /// Use both directions and accept a pair only if it is selected in
    /// both — the undirectional approach.
    Both,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::LargeSmall => f.write_str("LargeSmall"),
            Direction::SmallLarge => f.write_str("SmallLarge"),
            Direction::Both => f.write_str("Both"),
        }
    }
}

/// Step 2b: match candidate selection per ranked element (paper,
/// Section 6.2). The three base criteria can be combined; the paper
/// evaluates `MaxN`, `MaxDelta` and `Threshold` alone and `Threshold`
/// compounded with the other two (e.g. `Thr(0.5)+Delta(0.02)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Keep at most the best `n` candidates.
    pub max_n: Option<usize>,
    /// Keep candidates whose similarity is within a *relative* tolerance
    /// `d` of the best candidate (`sim ≥ best·(1−d)`).
    pub delta: Option<f64>,
    /// Keep candidates with `sim > t` — strictly exceeding, per the paper's
    /// "showing a similarity exceeding a given threshold value t".
    pub threshold: Option<f64>,
}

impl Selection {
    /// `MaxN(n)`: the `n` elements with maximal similarity.
    pub fn max_n(n: usize) -> Selection {
        Selection {
            max_n: Some(n),
            delta: None,
            threshold: None,
        }
    }

    /// `MaxDelta(d)` with a relative tolerance (the paper's evaluation uses
    /// relative deltas of 1–10%).
    pub fn delta(d: f64) -> Selection {
        Selection {
            max_n: None,
            delta: Some(d),
            threshold: None,
        }
    }

    /// `Threshold(t)`: every candidate exceeding `t`.
    pub fn threshold(t: f64) -> Selection {
        Selection {
            max_n: None,
            delta: None,
            threshold: Some(t),
        }
    }

    /// Compounds this selection with a threshold (e.g.
    /// `Selection::max_n(1).with_threshold(0.5)`).
    pub fn with_threshold(mut self, t: f64) -> Selection {
        self.threshold = Some(t);
        self
    }

    /// Selects from `ranked`, a descending-sorted list of
    /// `(candidate index, similarity)`. Crate-visible so the engine's
    /// fused pruned-shard execution can re-apply the selection when it
    /// folds per-shard column pools (see `engine::PlanEngine`).
    pub(crate) fn apply(&self, ranked: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = ranked.to_vec();
        if let Some(t) = self.threshold {
            out.retain(|&(_, s)| s > t);
        }
        if let Some(d) = self.delta {
            if let Some(&(_, best)) = out.first() {
                let cutoff = best * (1.0 - d);
                out.retain(|&(_, s)| s >= cutoff);
            }
        }
        if let Some(n) = self.max_n {
            out.truncate(n);
        }
        // Zero-similarity candidates are never match candidates.
        out.retain(|&(_, s)| s > 0.0);
        out
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(t) = self.threshold {
            parts.push(format!("Thr({t})"));
        }
        if let Some(n) = self.max_n {
            parts.push(format!("MaxN({n})"));
        }
        if let Some(d) = self.delta {
            parts.push(format!("Delta({d})"));
        }
        if parts.is_empty() {
            parts.push("All".to_string());
        }
        f.write_str(&parts.join("+"))
    }
}

/// The outcome of direction + selection: the two directional candidate
/// lists over matrix indices. `source_to_target[j]` holds the selected
/// source candidates for target `j`; `target_to_source[i]` the selected
/// target candidates for source `i`. A `None` list means that direction was
/// not computed (directional matching).
#[derive(Debug, Clone, PartialEq)]
pub struct DirectedCandidates {
    /// For each target element: selected `(source index, sim)` candidates.
    pub for_targets: Option<Vec<Vec<(usize, f64)>>>,
    /// For each source element: selected `(target index, sim)` candidates.
    pub for_sources: Option<Vec<Vec<(usize, f64)>>>,
}

impl DirectedCandidates {
    /// Runs direction + selection on an aggregated similarity matrix.
    ///
    /// Storage aware: on a sparse matrix the per-source ranking scans the
    /// CSR rows directly and the per-target ranking scans the rows of the
    /// (sparse) transpose, so the work is proportional to the stored
    /// entries instead of `m × n`. Zero cells can never be selected (the
    /// selection retains only similarities above zero), so skipping them
    /// up front yields exactly the candidates of the dense scan.
    pub fn select(
        matrix: &SimMatrix,
        direction: Direction,
        selection: &Selection,
    ) -> DirectedCandidates {
        let m = matrix.rows();
        let n = matrix.cols();
        let (want_for_targets, want_for_sources) = directional_wants(direction, m, n);

        // Plain `Max1` (no threshold, no delta) is the structural
        // matchers' inner selection, executed once per set-similarity
        // cell: a linear max scan replaces the O(k log k) sort, with
        // identical tie-breaking (first index wins).
        let fast_max1 = selection.max_n == Some(1)
            && selection.delta.is_none()
            && selection.threshold.is_none();

        // With a threshold, cells at or below it can never be selected:
        // dropping them before the sort turns the per-element O(k log k)
        // ranking into one over the (typically few) survivors, with an
        // identical outcome.
        let floor = selection.threshold.unwrap_or(f64::NEG_INFINITY);

        // One row of candidates — the dense scan enumerates every cell,
        // the sparse scan only the stored entries of a CSR row. Both feed
        // the identical ranking: zeros (and sub-floor cells) are discarded
        // by `apply`/`best_of` either way, and ties already arrive in
        // ascending index order. Generic over the entry iterator so the
        // dense path (the structural matchers' per-cell inner loop) stays
        // fully inlined.
        fn rank_row<I: Iterator<Item = (usize, f64)>>(
            entries: I,
            selection: &Selection,
            fast_max1: bool,
            floor: f64,
        ) -> Vec<(usize, f64)> {
            if fast_max1 {
                return best_of(entries);
            }
            let mut ranked: Vec<(usize, f64)> = entries.filter(|&(_, s)| s > floor).collect();
            sort_desc(&mut ranked);
            selection.apply(&ranked)
        }

        if matrix.is_sparse() {
            // Per-target candidates rank the columns of `matrix`; CSR has
            // no cheap column access, so rank the rows of the (sparse,
            // O(stored entries)) transpose instead.
            let for_targets = want_for_targets.then(|| {
                let t = matrix.transposed();
                (0..n)
                    .map(|j| rank_row(t.row_entries(j), selection, fast_max1, floor))
                    .collect()
            });
            let for_sources = want_for_sources.then(|| {
                (0..m)
                    .map(|i| rank_row(matrix.row_entries(i), selection, fast_max1, floor))
                    .collect()
            });
            return DirectedCandidates {
                for_targets,
                for_sources,
            };
        }

        // Dense: hoist the raw value slice out of the per-cell loop so the
        // storage dispatch happens once, not `m × n` times (this scan is
        // the structural matchers' per-cell inner loop).
        let values = matrix.values();
        let for_targets = want_for_targets.then(|| {
            (0..n)
                .map(|j| {
                    rank_row(
                        (0..m).map(|i| (i, values[i * n + j])),
                        selection,
                        fast_max1,
                        floor,
                    )
                })
                .collect()
        });
        let for_sources = want_for_sources.then(|| {
            (0..m)
                .map(|i| {
                    let row = &values[i * n..(i + 1) * n];
                    rank_row(
                        row.iter().enumerate().map(|(j, &v)| (j, v)),
                        selection,
                        fast_max1,
                        floor,
                    )
                })
                .collect()
        });
        DirectedCandidates {
            for_targets,
            for_sources,
        }
    }

    /// Flattens the directional candidates into the final set of
    /// `(source, target, sim)` pairs. With both directions present, a pair
    /// must be selected in **both** to survive (the paper's `Both`
    /// semantics); otherwise the single computed direction decides.
    pub fn pairs(&self) -> Vec<(usize, usize, f64)> {
        match (&self.for_targets, &self.for_sources) {
            (Some(ft), Some(fs)) => {
                let mut out = Vec::new();
                for (j, cands) in ft.iter().enumerate() {
                    for &(i, sim) in cands {
                        if fs[i].iter().any(|&(jj, _)| jj == j) {
                            out.push((i, j, sim));
                        }
                    }
                }
                out.sort_by_key(|a| (a.0, a.1));
                out
            }
            (Some(ft), None) => {
                let mut out: Vec<(usize, usize, f64)> = ft
                    .iter()
                    .enumerate()
                    .flat_map(|(j, cands)| cands.iter().map(move |&(i, s)| (i, j, s)))
                    .collect();
                out.sort_by_key(|a| (a.0, a.1));
                out
            }
            (None, Some(fs)) => {
                let mut out: Vec<(usize, usize, f64)> = fs
                    .iter()
                    .enumerate()
                    .flat_map(|(i, cands)| cands.iter().map(move |&(j, s)| (i, j, s)))
                    .collect();
                out.sort_by_key(|a| (a.0, a.1));
                out
            }
            (None, None) => Vec::new(),
        }
    }
}

/// Descending by similarity; ties resolve by ascending index so results are
/// deterministic. Shared with [`PairMask::top_k_of`] so TopK pruning ranks
/// exactly like candidate selection.
///
/// [`PairMask::top_k_of`]: crate::engine::PairMask::top_k_of
pub(crate) fn sort_desc(ranked: &mut [(usize, f64)]) {
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
}

/// Which directional candidate lists `direction` computes for an `m × n`
/// task: `(want_for_targets, want_for_sources)`. The paper's convention —
/// S2 (target) is the smaller schema when `|S2| ≤ |S1|` — so `LargeSmall`
/// ranks source candidates per target exactly when `n ≤ m`. Shared with
/// the engine's fused pruned-shard execution, which must resolve the
/// direction from the *global* task dimensions, not a shard's.
pub(crate) fn directional_wants(direction: Direction, m: usize, n: usize) -> (bool, bool) {
    let target_is_smaller = n <= m;
    let want_for_targets = match direction {
        Direction::Both => true,
        Direction::LargeSmall => target_is_smaller,
        Direction::SmallLarge => !target_is_smaller,
    };
    let want_for_sources = match direction {
        Direction::Both => true,
        Direction::LargeSmall => !target_is_smaller,
        Direction::SmallLarge => target_is_smaller,
    };
    (want_for_targets, want_for_sources)
}

/// Ranks one element's `(index, similarity)` entries and applies
/// `selection` — the exact per-element ranking inside
/// [`DirectedCandidates::select`], exposed for the engine's fused
/// pruned-shard execution. Zero and sub-threshold cells may be omitted
/// from `entries` with an identical outcome: they sort behind every
/// kept candidate and the final `apply` drops them regardless.
pub(crate) fn rank_entries(
    entries: impl Iterator<Item = (usize, f64)>,
    selection: &Selection,
) -> Vec<(usize, f64)> {
    let fast_max1 =
        selection.max_n == Some(1) && selection.delta.is_none() && selection.threshold.is_none();
    if fast_max1 {
        return best_of(entries);
    }
    let floor = selection.threshold.unwrap_or(f64::NEG_INFINITY);
    let mut ranked: Vec<(usize, f64)> = entries.filter(|&(_, s)| s > floor).collect();
    sort_desc(&mut ranked);
    selection.apply(&ranked)
}

/// The single best nonzero candidate (strictly greater wins, so the first
/// index takes ties) — the `Max1` selection without a sort.
fn best_of(candidates: impl Iterator<Item = (usize, f64)>) -> Vec<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (idx, sim) in candidates {
        if best.is_none_or(|(_, s)| sim > s) {
            best = Some((idx, sim));
        }
    }
    match best {
        Some((_, s)) if s > 0.0 => vec![best.unwrap()],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper: combined sims of three PO1 elements against
    /// PO2.DeliverTo.Address.City — 0.72, 0.67, 0.52 — and Max1 selection
    /// choosing shipToCity.
    fn table2() -> SimMatrix {
        let mut m = SimMatrix::new(3, 1);
        m.set(0, 0, 0.72); // PO1.ShipTo.shipToCity
        m.set(1, 0, 0.67); // PO1.Customer.custCity
        m.set(2, 0, 0.52); // PO1.ShipTo.shipToStreet
        m
    }

    #[test]
    fn max1_selects_the_paper_candidate() {
        let dc = DirectedCandidates::select(&table2(), Direction::LargeSmall, &Selection::max_n(1));
        let pairs = dc.pairs();
        assert_eq!(pairs, vec![(0, 0, 0.72)]);
    }

    #[test]
    fn threshold_is_strictly_exceeding() {
        let dc = DirectedCandidates::select(
            &table2(),
            Direction::LargeSmall,
            &Selection::threshold(0.67),
        );
        // 0.67 does not exceed 0.67.
        assert_eq!(dc.pairs(), vec![(0, 0, 0.72)]);
    }

    #[test]
    fn delta_keeps_near_best_candidates() {
        let dc =
            DirectedCandidates::select(&table2(), Direction::LargeSmall, &Selection::delta(0.1));
        // cutoff = 0.72·0.9 = 0.648 → keeps 0.72 and 0.67.
        assert_eq!(dc.pairs().len(), 2);
    }

    #[test]
    fn compound_threshold_delta() {
        let sel = Selection::delta(0.1).with_threshold(0.7);
        let dc = DirectedCandidates::select(&table2(), Direction::LargeSmall, &sel);
        assert_eq!(dc.pairs(), vec![(0, 0, 0.72)]);
        assert_eq!(sel.to_string(), "Thr(0.7)+Delta(0.1)");
    }

    #[test]
    fn both_requires_mutual_selection() {
        // Section 3's example: shipToCity prefers City, and City prefers
        // shipToCity — but custCity's best is also City while City's best
        // is shipToCity, so custCity↔City is dropped under Both/Max1.
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 0.72); // shipToCity ↔ City
        m.set(1, 0, 0.67); // custCity   ↔ City
        m.set(0, 1, 0.40); // shipToCity ↔ Street
        m.set(1, 1, 0.10);
        let dc = DirectedCandidates::select(&m, Direction::Both, &Selection::max_n(1));
        assert_eq!(dc.pairs(), vec![(0, 0, 0.72)]);
    }

    #[test]
    fn directional_modes_pick_the_right_perspective() {
        // m = 3 sources > n = 1 target → target is smaller.
        let m = table2();
        let ls = DirectedCandidates::select(&m, Direction::LargeSmall, &Selection::max_n(1));
        assert!(ls.for_targets.is_some() && ls.for_sources.is_none());
        let sl = DirectedCandidates::select(&m, Direction::SmallLarge, &Selection::max_n(1));
        assert!(sl.for_targets.is_none() && sl.for_sources.is_some());
        // SmallLarge: each of the 3 sources picks its best target → 3 pairs.
        assert_eq!(sl.pairs().len(), 3);
    }

    #[test]
    fn zero_similarities_are_never_selected() {
        let m = SimMatrix::new(2, 2);
        let dc = DirectedCandidates::select(&m, Direction::Both, &Selection::max_n(4));
        assert!(dc.pairs().is_empty());
    }

    #[test]
    fn ties_resolve_deterministically() {
        let mut m = SimMatrix::new(2, 1);
        m.set(0, 0, 0.5);
        m.set(1, 0, 0.5);
        let dc = DirectedCandidates::select(&m, Direction::LargeSmall, &Selection::max_n(1));
        assert_eq!(dc.pairs(), vec![(0, 0, 0.5)]);
    }

    #[test]
    fn selection_labels() {
        assert_eq!(Selection::max_n(1).to_string(), "MaxN(1)");
        assert_eq!(
            Selection::delta(0.02).with_threshold(0.5).to_string(),
            "Thr(0.5)+Delta(0.02)"
        );
        assert_eq!(Selection::threshold(0.8).to_string(), "Thr(0.8)");
    }
}
