//! Shared helpers for the COMA benchmark and experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the tables and figures of the
//! paper's evaluation (Section 7); the Criterion benches in `benches/`
//! measure the performance of the substrates and the match pipeline.
//! [`workload`] generates deterministic synthetic large-schema match
//! tasks (star/deep/wide/catalog shapes, 500–5000 nodes) for the plan engine's
//! sparse-path benchmarks and the CI perf-smoke gate; [`alloc_track`]
//! provides the counting global allocator `perf_smoke` uses to compare
//! peak allocations of dense vs sparse similarity storage.
//!
//! The staged plans themselves live in [`coma_core::plans`] (shared with
//! the CLI and the server's wire-level plan specs); the wrappers here
//! pin the parameter values (`k = 5`, retrieval cap 5) the benchmarks
//! and the CI gate have always used, so the numbers stay comparable
//! across baselines.

pub mod alloc_track;
pub mod workload;

use coma_core::MatchPlan;

/// [`coma_core::plans::topk_pruned_plan`] at the benchmark budget `k = 5`.
pub fn topk_pruned_plan() -> MatchPlan {
    coma_core::plans::topk_pruned_plan(5)
}

/// [`coma_core::plans::liberal_name_stage`], standalone: the dense
/// first stage the row-sharded execution timings target.
pub fn liberal_name_stage() -> MatchPlan {
    coma_core::plans::liberal_name_stage()
}

/// [`coma_core::plans::candidate_index_plan`] at the benchmark
/// retrieval cap of 5 candidates per element.
pub fn candidate_index_plan() -> MatchPlan {
    coma_core::plans::candidate_index_plan(5)
}

/// [`coma_core::plans::candidate_index_stage`] at the benchmark
/// retrieval cap of 5 — exactly the candidate set the perf gate's
/// recall check scores against the exact prefilter.
pub fn candidate_index_stage() -> MatchPlan {
    coma_core::plans::candidate_index_stage(5)
}

/// [`coma_core::plans::fused_filter_plan`]: the streaming-fused pruning
/// plan the `deep100000` memory ceiling is measured on.
pub fn fused_filter_plan() -> MatchPlan {
    coma_core::plans::fused_filter_plan()
}
