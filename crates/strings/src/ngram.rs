use std::collections::BTreeSet;

/// The set of `n`-grams (length-`n` character windows) of `s`, lower-cased.
///
/// Strings shorter than `n` contribute themselves as a single "gram" so
/// that very short names still compare meaningfully (e.g. `No` under
/// Trigram).
pub fn ngram_set(s: &str, n: usize) -> BTreeSet<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = s.chars().flat_map(char::to_lowercase).collect();
    let mut grams = BTreeSet::new();
    if chars.is_empty() {
        return grams;
    }
    if chars.len() < n {
        grams.insert(chars.iter().collect());
        return grams;
    }
    for w in chars.windows(n) {
        grams.insert(w.iter().collect());
    }
    grams
}

/// n-gram similarity: the Dice coefficient of the two n-gram sets.
///
/// "Strings are compared according to their set of n-grams, i.e. sequences
/// of n characters, leading to different variants of this matcher, e.g.
/// Digram (2), Trigram (3)" (paper, Section 4.1).
///
/// ```
/// use coma_strings::ngram_similarity;
/// assert_eq!(ngram_similarity("city", "city", 3), 1.0);
/// assert!(ngram_similarity("street", "str", 3) > 0.0);
/// ```
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let ga = ngram_set(a, n);
    let gb = ngram_set(b, n);
    let inter = ga.intersection(&gb).count();
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

/// Digram (n = 2) similarity.
pub fn digram_similarity(a: &str, b: &str) -> f64 {
    ngram_similarity(a, b, 2)
}

/// Trigram (n = 3) similarity — the variant COMA's default `Name` matcher
/// uses (paper, Table 4).
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    ngram_similarity(a, b, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_set_of_street() {
        let grams = ngram_set("street", 3);
        let expected: BTreeSet<String> = ["str", "tre", "ree", "eet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(grams, expected);
    }

    #[test]
    fn short_strings_fall_back_to_whole_string() {
        let grams = ngram_set("no", 3);
        assert_eq!(grams.len(), 1);
        assert!(grams.contains("no"));
        assert_eq!(ngram_similarity("no", "no", 3), 1.0);
        assert_eq!(ngram_similarity("no", "nr", 3), 0.0);
    }

    #[test]
    fn paper_motivating_case_ship_vs_deliver_is_dissimilar() {
        // "string matchers such as Trigram find no similarity for Ship and
        // Deliver" (Section 6.4).
        assert_eq!(trigram_similarity("ship", "deliver"), 0.0);
    }

    #[test]
    fn digram_finds_more_overlap_than_trigram() {
        let d = digram_similarity("shipment", "shipping");
        let t = trigram_similarity("shipment", "shipping");
        assert!(d >= t);
        assert!(t > 0.0);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(trigram_similarity("Street", "STREET"), 1.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(ngram_similarity("", "", 3), 1.0);
        assert_eq!(ngram_similarity("", "abc", 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gram_panics() {
        ngram_set("x", 0);
    }
}
