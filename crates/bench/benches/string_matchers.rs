//! Microbenchmarks of the approximate string matching substrate — the
//! innermost loops of every name-based matcher.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

const PAIRS: [(&str, &str); 6] = [
    ("shipToCity", "DeliverTo"),
    ("custStreet", "streetAddress"),
    ("poNo", "purchaseOrderNumber"),
    ("quantityOrdered", "qty"),
    ("unitOfMeasureCode", "uom"),
    ("POShipTo", "PurchaseOrderDeliverTo"),
];

fn bench_string_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_matchers");
    group.bench_function("trigram", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(coma_strings::trigram_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("edit_distance", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(coma_strings::edit_distance_similarity(
                    black_box(x),
                    black_box(y),
                ));
            }
        })
    });
    group.bench_function("affix", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(coma_strings::affix_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("soundex", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(coma_strings::soundex_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("tokenize", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(coma_strings::tokenize(black_box(x)));
                black_box(coma_strings::tokenize(black_box(y)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_string_matchers);
criterion_main!(benches);
