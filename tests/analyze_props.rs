//! Soundness properties of the static plan analyzer
//! ([`coma::core::PlanAnalyzer`]): across seeded generated workloads and
//! engine configurations, every definite (`Yes`/`No`) prediction the
//! pre-execution analysis makes must agree with what the engine then
//! actually does —
//!
//! * a stage predicted sparse executes with CSR storage (and one
//!   predicted dense stays dense),
//! * a stage predicted fusable lands with `StageOutcome::fused == true`
//!   (and a predicted-unfusable one materializes),
//! * the measured peak allocation of the execution (counting global
//!   allocator, the same instrument the perf gate uses) never exceeds
//!   the predicted `peak_bytes` upper bound.
//!
//! `Maybe` predictions are vacuously compatible — the lattice exists so
//! the analyzer can decline to guess — so these tests also assert the
//! canonical plans produce *definite* predictions where the engine's
//! decision is statically known.

use coma::core::plans::{candidate_index_plan, fused_filter_plan, topk_pruned_plan};
use coma::core::{
    Coma, EngineConfig, MatchContext, MatchPlan, PlanAnalyzer, PlanEngine, TaskStats, Tri,
};
use coma::graph::PathSet;
use coma_bench::alloc_track::{measure_peak, CountingAllocator};
use coma_bench::workload::{generate_task, WorkloadShape, WorkloadSpec};

/// Register the counting allocator so [`measure_peak`] reports real
/// numbers (without it every window reads 0 and the peak-bound property
/// would pass vacuously).
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// `measure_peak` windows must not overlap across threads, and the test
/// harness runs sibling `#[test]`s concurrently — every test holding a
/// window takes this lock first.
static WINDOW: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// One analyzed-then-executed configuration point.
struct Executed {
    analysis: coma::core::PlanAnalysis,
    outcome: coma::core::PlanOutcome,
    measured_peak: usize,
}

/// Analyzes `plan` for the workload, executes it under `cfg`, and
/// returns both sides plus the measured peak of the execution window.
/// The context, path sets and analysis are built *outside* the
/// measurement window: the predicted bound covers one plan execution,
/// not task preparation.
fn analyze_and_execute(spec: &WorkloadSpec, plan: &MatchPlan, cfg: EngineConfig) -> Executed {
    let (source, target) = generate_task(spec);
    let coma = Coma::new();
    let source_paths = PathSet::new(&source).expect("generated schema is well-formed");
    let target_paths = PathSet::new(&target).expect("generated schema is well-formed");
    let ctx = MatchContext::new(&source, &target, &source_paths, &target_paths, coma.aux())
        .with_repository(coma.repository());
    let stats = TaskStats::gather(&ctx);
    let analysis = PlanAnalyzer::new(coma.library(), cfg.clone()).analyze(plan, &stats);
    assert!(
        !analysis.has_errors(),
        "{}: canonical plan must analyze clean, got:\n{}",
        spec.label(),
        analysis.render()
    );
    let engine = PlanEngine::with_config(coma.library(), cfg);
    let (measured_peak, outcome) = measure_peak(|| engine.execute(&ctx, plan));
    let outcome = outcome.expect("canonical plan executes");
    Executed {
        analysis,
        outcome,
        measured_peak,
    }
}

/// Asserts every definite prediction against the executed stages and the
/// measured peak. Returns the stage labels seen, so callers can make
/// definiteness assertions on specific stages.
fn assert_sound(which: &str, run: &Executed) {
    for stage in &run.outcome.stages {
        let storage = run.analysis.storage_prediction(&stage.label);
        assert!(
            storage.agrees_with(stage.cube.all_sparse()),
            "{which}: stage `{}` predicted storage {storage:?} but all_sparse = {}",
            stage.label,
            stage.cube.all_sparse()
        );
        let fused = run.analysis.fused_prediction(&stage.label);
        assert!(
            fused.agrees_with(stage.fused),
            "{which}: stage `{}` predicted fused {fused:?} but fused = {}",
            stage.label,
            stage.fused
        );
    }
    assert!(
        (run.measured_peak as u64) <= run.analysis.peak_bytes,
        "{which}: measured peak {} exceeds predicted bound {}",
        run.measured_peak,
        run.analysis.peak_bytes
    );
}

/// The workload × configuration × plan sweep. One `#[test]` on purpose:
/// `measure_peak` windows must not overlap across threads, and the test
/// harness runs sibling tests concurrently.
#[test]
fn predictions_agree_with_execution_across_workloads_and_configs() {
    let _window = WINDOW.lock().unwrap();
    let specs = [
        WorkloadSpec::new(WorkloadShape::Star, 160, 11),
        WorkloadSpec::new(WorkloadShape::Deep, 200, 23),
        WorkloadSpec::new(WorkloadShape::Wide, 160, 37),
    ];
    let configs: [(&str, EngineConfig); 4] = [
        ("default", EngineConfig::default()),
        ("sharded", EngineConfig::default().with_shards(2)),
        ("serial", EngineConfig::default().with_parallel(false)),
        ("dense", EngineConfig::default().with_sparse(false)),
    ];
    let plans = [
        ("topk_pruned", topk_pruned_plan(5)),
        ("candidate_index", candidate_index_plan(5)),
        ("fused_filter", fused_filter_plan()),
    ];
    for spec in &specs {
        for (cfg_name, cfg) in &configs {
            for (plan_name, plan) in &plans {
                let which = format!("{}/{cfg_name}/{plan_name}", spec.label());
                let run = analyze_and_execute(spec, plan, cfg.clone());
                assert_sound(&which, &run);

                // Where the engine's decision is statically known the
                // analyzer must commit, not hide behind `Maybe`:
                // * under `with_sparse(false)` nothing stores sparse and
                //   nothing fuses — every materialized stage is a
                //   definite `No` on both axes;
                // * under any sparse config the two pruning plans'
                //   prune-over-Matchers stage is definitely fused.
                if *cfg_name == "dense" {
                    for stage in &run.outcome.stages {
                        assert_eq!(
                            run.analysis.storage_prediction(&stage.label),
                            Tri::No,
                            "{which}: stage `{}`",
                            stage.label
                        );
                        assert_eq!(
                            run.analysis.fused_prediction(&stage.label),
                            Tri::No,
                            "{which}: stage `{}`",
                            stage.label
                        );
                    }
                } else if *plan_name != "candidate_index" {
                    let fused_stage = run
                        .outcome
                        .stages
                        .iter()
                        .find(|s| s.fused)
                        .unwrap_or_else(|| panic!("{which}: no fused stage"));
                    assert_eq!(
                        run.analysis.fused_prediction(&fused_stage.label),
                        Tri::Yes,
                        "{which}"
                    );
                }
            }
        }
    }
}

/// The predicted peak bound stays sound when the measurement window
/// *includes* repeated executions — the bound is per execution, and
/// repeated runs free their buffers, so even N sequential executions
/// must stay under the single-execution bound plus nothing.
#[test]
fn peak_bound_covers_repeated_execution() {
    let _window = WINDOW.lock().unwrap();
    let spec = WorkloadSpec::new(WorkloadShape::Deep, 200, 5);
    let (source, target) = generate_task(&spec);
    let coma = Coma::new();
    let source_paths = PathSet::new(&source).unwrap();
    let target_paths = PathSet::new(&target).unwrap();
    let ctx = MatchContext::new(&source, &target, &source_paths, &target_paths, coma.aux())
        .with_repository(coma.repository());
    let stats = TaskStats::gather(&ctx);
    let plan = topk_pruned_plan(5);
    let analysis =
        PlanAnalyzer::new(coma.library(), EngineConfig::default()).analyze(&plan, &stats);
    let engine = PlanEngine::new(coma.library());
    for round in 0..3 {
        let (peak, outcome) = measure_peak(|| engine.execute(&ctx, &plan));
        outcome.unwrap();
        assert!(
            (peak as u64) <= analysis.peak_bytes,
            "round {round}: measured {} > predicted {}",
            peak,
            analysis.peak_bytes
        );
    }
}
