use crate::tokenize::normalize_token;
use std::collections::HashMap;

/// Expansion table for abbreviations and acronyms.
///
/// The `Name` matcher "expands abbreviations and acronyms, e.g.
/// `PO → {Purchase, Order}`" (paper, Section 4.2). An entry maps one token
/// to one or more replacement tokens; expansion is applied token-wise and
/// is not recursive.
#[derive(Debug, Clone, Default)]
pub struct AbbreviationTable {
    entries: HashMap<String, Vec<String>>,
}

impl AbbreviationTable {
    /// Creates an empty table.
    pub fn new() -> AbbreviationTable {
        AbbreviationTable::default()
    }

    /// A table with the trivial abbreviations the paper's evaluation used
    /// ("some trivial abbreviations, such as, No, Num", Section 7.1) plus
    /// common purchase-order shorthands.
    pub fn standard() -> AbbreviationTable {
        let mut t = AbbreviationTable::new();
        for (abbr, full) in [
            ("no", "number"),
            ("num", "number"),
            ("nr", "number"),
            ("qty", "quantity"),
            ("amt", "amount"),
            ("desc", "description"),
            ("descr", "description"),
            ("cust", "customer"),
            ("addr", "address"),
            ("tel", "telephone"),
            ("phone", "telephone"),
            ("fax", "facsimile"),
            ("id", "identifier"),
            ("ref", "reference"),
            ("uom", "unit measure"),
            ("dt", "date"),
        ] {
            t.insert(abbr, full);
        }
        t.insert("po", "purchase order");
        t
    }

    /// Adds an entry; `expansion` is split on whitespace into tokens.
    /// Token keys are normalized (lower-case, alphanumeric only).
    pub fn insert(&mut self, abbreviation: &str, expansion: &str) {
        self.entries.insert(
            normalize_token(abbreviation),
            expansion
                .split_whitespace()
                .map(normalize_token)
                .filter(|t| !t.is_empty())
                .collect(),
        );
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the expansion of a single token.
    pub fn lookup(&self, token: &str) -> Option<&[String]> {
        self.entries.get(&normalize_token(token)).map(Vec::as_slice)
    }

    /// Expands every token of `tokens`, leaving unknown tokens untouched.
    ///
    /// ```
    /// use coma_strings::AbbreviationTable;
    /// let t = AbbreviationTable::standard();
    /// assert_eq!(
    ///     t.expand(&["po".into(), "ship".into(), "to".into()]),
    ///     vec!["purchase", "order", "ship", "to"]
    /// );
    /// ```
    pub fn expand(&self, tokens: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        for tok in tokens {
            match self.lookup(tok) {
                Some(expansion) => out.extend(expansion.iter().cloned()),
                None => out.push(tok.clone()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    #[test]
    fn expands_paper_example() {
        let t = AbbreviationTable::standard();
        let tokens = tokenize("POShipTo");
        assert_eq!(t.expand(&tokens), vec!["purchase", "order", "ship", "to"]);
    }

    #[test]
    fn unknown_tokens_pass_through() {
        let t = AbbreviationTable::standard();
        assert_eq!(t.expand(&["warehouse".into()]), vec!["warehouse"]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let t = AbbreviationTable::standard();
        assert_eq!(t.lookup("Qty").unwrap(), &["quantity".to_string()]);
        assert_eq!(t.lookup("QTY").unwrap(), &["quantity".to_string()]);
    }

    #[test]
    fn custom_entries_override_nothing_by_default() {
        let mut t = AbbreviationTable::new();
        assert!(t.is_empty());
        t.insert("gtin", "global trade item number");
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("gtin").unwrap().len(), 4);
    }
}
