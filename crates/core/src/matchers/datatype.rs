//! The data-type compatibility table of the `DataType` matcher.

use coma_graph::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The data-type compatibility table for the `DataType` matcher.
///
/// "This matcher uses a synonym table specifying the degree of
/// compatibility between a set of predefined generic data types, to which
/// data types of schema elements are mapped in order to determine their
/// similarity" (Section 4.1).
///
/// Lookups are symmetric; equal types are fully compatible. Inner schema
/// elements carry no data type: two untyped elements get
/// [`TypeCompatTable::untyped_pair`], a typed/untyped pair gets
/// [`TypeCompatTable::typed_untyped`] — neutral values so that the hybrid
/// `TypeName` matcher stays name-driven on inner elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeCompatTable {
    entries: HashMap<(DataType, DataType), f64>,
    /// Compatibility for unknown type pairs.
    pub fallback: f64,
    /// Similarity when both elements are untyped (inner nodes).
    pub untyped_pair: f64,
    /// Similarity when exactly one element is untyped.
    pub typed_untyped: f64,
}

impl TypeCompatTable {
    /// An empty table: only equal types are compatible (plus fallbacks).
    pub fn empty() -> TypeCompatTable {
        TypeCompatTable {
            entries: HashMap::new(),
            fallback: 0.2,
            untyped_pair: 0.5,
            typed_untyped: 0.25,
        }
    }

    /// The standard compatibility table: numeric types are strongly
    /// compatible, temporal types moderately, text weakly compatible with
    /// everything (strings can encode most values).
    pub fn standard() -> TypeCompatTable {
        use DataType::*;
        let mut t = TypeCompatTable::empty();
        for (a, b, sim) in [
            (Integer, Decimal, 0.8),
            (Integer, Float, 0.7),
            (Decimal, Float, 0.9),
            (Date, DateTime, 0.8),
            (Time, DateTime, 0.6),
            (Date, Time, 0.3),
            (Duration, DateTime, 0.3),
            (Id, IdRef, 0.8),
            (Id, Integer, 0.5),
            (IdRef, Integer, 0.5),
            (Boolean, Integer, 0.5),
            (Text, Uri, 0.6),
            (Text, Id, 0.5),
            (Text, IdRef, 0.5),
            (Text, Integer, 0.4),
            (Text, Decimal, 0.4),
            (Text, Float, 0.4),
            (Text, Date, 0.4),
            (Text, Time, 0.4),
            (Text, DateTime, 0.4),
            (Text, Boolean, 0.3),
            (Text, Binary, 0.3),
            (Text, Duration, 0.3),
        ] {
            t.set(a, b, sim);
        }
        // `Any` is half-compatible with everything.
        for &d in &DataType::ALL {
            t.set(Any, d, 0.5);
        }
        t.set(Any, Any, 1.0);
        t
    }

    /// Sets the (symmetric) compatibility of a type pair.
    pub fn set(&mut self, a: DataType, b: DataType, sim: f64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.entries.insert(key, sim.clamp(0.0, 1.0));
    }

    /// The compatibility of two types.
    pub fn similarity(&self, a: DataType, b: DataType) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.entries.get(&key).copied().unwrap_or(self.fallback)
    }

    /// The compatibility of two optionally-typed elements.
    pub fn similarity_opt(&self, a: Option<DataType>, b: Option<DataType>) -> f64 {
        match (a, b) {
            (Some(a), Some(b)) => self.similarity(a, b),
            (None, None) => self.untyped_pair,
            _ => self.typed_untyped,
        }
    }
}

impl Default for TypeCompatTable {
    fn default() -> Self {
        TypeCompatTable::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DataType::*;

    #[test]
    fn equal_types_are_fully_compatible() {
        let t = TypeCompatTable::standard();
        assert_eq!(t.similarity(Text, Text), 1.0);
        assert_eq!(t.similarity(Decimal, Decimal), 1.0);
    }

    #[test]
    fn lookup_is_symmetric() {
        let t = TypeCompatTable::standard();
        assert_eq!(
            t.similarity(Integer, Decimal),
            t.similarity(Decimal, Integer)
        );
        assert_eq!(t.similarity(Integer, Decimal), 0.8);
    }

    #[test]
    fn unknown_pairs_use_fallback() {
        let t = TypeCompatTable::standard();
        assert_eq!(t.similarity(Binary, Date), t.fallback);
    }

    #[test]
    fn untyped_conventions() {
        let t = TypeCompatTable::standard();
        assert_eq!(t.similarity_opt(None, None), t.untyped_pair);
        assert_eq!(t.similarity_opt(Some(Text), None), t.typed_untyped);
        assert_eq!(t.similarity_opt(Some(Text), Some(Text)), 1.0);
    }

    #[test]
    fn string_and_number_weakly_compatible() {
        // The corpus observation behind Section 7.3: "most leaf elements in
        // our test schemas are either of type String or Number".
        let t = TypeCompatTable::standard();
        assert!(t.similarity(Text, Decimal) > 0.0);
        assert!(t.similarity(Text, Decimal) < 0.5);
    }
}
