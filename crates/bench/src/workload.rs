//! Deterministic synthetic large-schema workloads.
//!
//! The evaluation corpus tops out at 145 paths — useful for quality
//! studies, far too small to exercise the plan engine's sparse execution
//! path. This module generates purchase-order-flavored schemas of 500 to
//! 5000+ nodes in three structural shapes:
//!
//! * [`WorkloadShape::Star`] — a few dozen hub containers under the root,
//!   each holding a broad set of attribute leaves (fact/dimension style);
//! * [`WorkloadShape::Deep`] — long containment chains (depth 20+), the
//!   worst case for path-based matchers;
//! * [`WorkloadShape::Wide`] — hundreds of small containers directly
//!   under the root, the worst case for per-element candidate ranking;
//! * [`WorkloadShape::Catalog`] — a flat catalog of a few category
//!   containers with very high leaf fanout and vocabulary-rich
//!   three-token leaf names: the vocabulary-heavy shape that favors
//!   inverted-index candidate generation (`CandidateIndex`).
//!
//! Generation is **seeded and deterministic**: the same
//! [`WorkloadSpec`] always produces the same schema, bit for bit, so
//! benchmark numbers are comparable across runs and machines.
//! [`generate_task`] derives a *match task* from one spec: the source
//! schema plus a target variant with synonym/abbreviation renames, small
//! structural edits and perturbed datatypes — enough overlap that
//! matchers find real correspondences, enough noise that the task is not
//! trivial.

use coma_graph::{DataType, Node, NodeId, Schema, SchemaBuilder};

/// The structural family of a generated schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// Root → ~`nodes/32` hubs → attribute leaves (shallow, clustered).
    Star,
    /// A few long containment chains, two leaves per chain link (deep).
    Deep,
    /// Root → ~`nodes/6` small containers → 5 leaves each (broad).
    Wide,
    /// Root → ~`nodes/96` category containers → ~95 three-token leaves
    /// each (flat, very high fanout, vocabulary-heavy).
    Catalog,
}

impl WorkloadShape {
    /// A short lowercase label (`star` / `deep` / `wide` / `catalog`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadShape::Star => "star",
            WorkloadShape::Deep => "deep",
            WorkloadShape::Wide => "wide",
            WorkloadShape::Catalog => "catalog",
        }
    }
}

/// A fully deterministic description of one generated schema (and, via
/// [`generate_task`], of one match task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// The structural family.
    pub shape: WorkloadShape,
    /// Approximate node count (the generator lands within a few percent;
    /// realistic range 500–5000).
    pub nodes: usize,
    /// PRNG seed; same seed, same schema.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec for `shape` with roughly `nodes` nodes and the given seed.
    pub fn new(shape: WorkloadShape, nodes: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec { shape, nodes, seed }
    }

    /// A compact label, e.g. `star1000#42`.
    pub fn label(&self) -> String {
        format!("{}{}#{}", self.shape.label(), self.nodes, self.seed)
    }
}

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. Good enough
/// for workload synthesis; NOT for cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`), via Lemire's multiply-shift
    /// bounded sampling (*Fast Random Integer Generation in an Interval*,
    /// 2019) with rejection: unlike the modulo reduction this used to
    /// apply, the result is exactly uniform for every `n`, not biased
    /// toward the low residues. One `next_u64` draw per call except with
    /// probability `< n / 2^64` (never observed for the vocabulary-sized
    /// `n` used here), so the seed stream advances exactly as before —
    /// though the *derived indices* differ, which re-anchored the
    /// generated-workload candidate counts in the committed bench
    /// baselines.
    pub fn index(&mut self, n: usize) -> usize {
        let n = n as u64;
        debug_assert!(n > 0, "index bound must be positive");
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(n);
            let low = wide as u64;
            // `low < 2^64 mod n` marks the draws that would over-weight
            // the first `2^64 mod n` values; reject and redraw those.
            if low >= n.wrapping_neg() % n {
                return (wide >> 64) as usize;
            }
        }
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Business-entity tokens for container names.
const ENTITIES: &[&str] = &[
    "customer",
    "order",
    "invoice",
    "product",
    "shipment",
    "supplier",
    "address",
    "payment",
    "account",
    "contact",
    "warehouse",
    "item",
    "contract",
    "employee",
    "region",
    "delivery",
];

/// Attribute tokens for leaf names.
const ATTRIBUTES: &[&str] = &[
    "number",
    "name",
    "street",
    "city",
    "zip",
    "country",
    "phone",
    "date",
    "amount",
    "price",
    "quantity",
    "status",
    "code",
    "type",
    "email",
    "total",
    "tax",
    "currency",
    "weight",
    "description",
];

/// Context qualifiers occasionally prefixed to container names.
const QUALIFIERS: &[&str] = &["ship", "bill", "home", "work", "main", "alt"];

/// Synonym / abbreviation variants used when rendering the target side,
/// mirroring the kind of terminological drift the paper's auxiliary
/// tables address.
const VARIANTS: &[(&str, &[&str])] = &[
    ("customer", &["client", "cust"]),
    ("order", &["purchase", "po"]),
    ("number", &["no", "num"]),
    ("street", &["road"]),
    ("city", &["town"]),
    ("zip", &["postcode"]),
    ("phone", &["telephone"]),
    ("amount", &["sum"]),
    ("quantity", &["qty"]),
    ("supplier", &["vendor"]),
    ("employee", &["staff"]),
    ("delivery", &["deliver"]),
    ("ship", &["deliver"]),
    ("bill", &["invoice"]),
    ("description", &["desc"]),
];

/// Leaf datatypes, roughly weighted toward text and numbers.
const DATATYPES: &[DataType] = &[
    DataType::Text,
    DataType::Text,
    DataType::Text,
    DataType::Integer,
    DataType::Integer,
    DataType::Decimal,
    DataType::Float,
    DataType::Date,
    DataType::Boolean,
];

/// One node of the shape-independent prototype tree both task sides are
/// rendered from.
struct ProtoNode {
    /// Vocabulary tokens composing the name (camelCased on render).
    tokens: Vec<&'static str>,
    /// Leaf datatype; `None` for containers.
    datatype: Option<DataType>,
    /// Child prototype indices.
    children: Vec<usize>,
}

/// The prototype tree for a spec: index 0 is the root.
fn proto_tree(spec: &WorkloadSpec) -> Vec<ProtoNode> {
    let mut rng = SplitMix64::new(spec.seed);
    let mut nodes: Vec<ProtoNode> = vec![ProtoNode {
        tokens: vec!["purchase", "order"],
        datatype: None,
        children: Vec::new(),
    }];
    let budget = spec.nodes.max(8);

    // Adds a leaf named after its container's entity plus an attribute.
    fn add_leaf(nodes: &mut Vec<ProtoNode>, parent: usize, rng: &mut SplitMix64) {
        let entity = nodes[parent].tokens[nodes[parent].tokens.len() - 1];
        let attr = ATTRIBUTES[rng.index(ATTRIBUTES.len())];
        let id = nodes.len();
        nodes.push(ProtoNode {
            tokens: vec![entity, attr],
            datatype: Some(DATATYPES[rng.index(DATATYPES.len())]),
            children: Vec::new(),
        });
        nodes[parent].children.push(id);
    }

    // Adds a container, optionally qualified (`shipCustomer`).
    fn add_container(nodes: &mut Vec<ProtoNode>, parent: usize, rng: &mut SplitMix64) -> usize {
        let mut tokens = Vec::new();
        if rng.chance(1, 3) {
            tokens.push(QUALIFIERS[rng.index(QUALIFIERS.len())]);
        }
        tokens.push(ENTITIES[rng.index(ENTITIES.len())]);
        let id = nodes.len();
        nodes.push(ProtoNode {
            tokens,
            datatype: None,
            children: Vec::new(),
        });
        nodes[parent].children.push(id);
        id
    }

    match spec.shape {
        WorkloadShape::Star => {
            // Root → hubs → leaves, leaves spread evenly over the hubs.
            let hubs = (budget / 32).clamp(4, 64);
            let hub_ids: Vec<usize> = (0..hubs)
                .map(|_| add_container(&mut nodes, 0, &mut rng))
                .collect();
            let mut h = 0;
            while nodes.len() < budget {
                add_leaf(&mut nodes, hub_ids[h % hubs], &mut rng);
                h += 1;
            }
        }
        WorkloadShape::Deep => {
            // A handful of long chains; every link carries two leaves.
            let spines = (budget / 80).clamp(2, 24);
            let mut tips: Vec<usize> = (0..spines)
                .map(|_| add_container(&mut nodes, 0, &mut rng))
                .collect();
            let mut s = 0;
            while nodes.len() + 3 <= budget {
                let tip = tips[s % spines];
                add_leaf(&mut nodes, tip, &mut rng);
                add_leaf(&mut nodes, tip, &mut rng);
                tips[s % spines] = add_container(&mut nodes, tip, &mut rng);
                s += 1;
            }
        }
        WorkloadShape::Wide => {
            // Many small containers directly under the root.
            while nodes.len() + 6 <= budget {
                let c = add_container(&mut nodes, 0, &mut rng);
                for _ in 0..5 {
                    add_leaf(&mut nodes, c, &mut rng);
                }
            }
        }
        WorkloadShape::Catalog => {
            // A flat catalog: a few category containers, each holding a
            // large block of vocabulary-rich three-token leaves
            // (`productPriceCurrency`-style). High per-container fanout
            // plus a broad token vocabulary — the shape that favors
            // inverted-index candidate generation over cross-product
            // scoring.
            let categories = (budget / 96).clamp(2, 24);
            let cat_ids: Vec<usize> = (0..categories)
                .map(|_| add_container(&mut nodes, 0, &mut rng))
                .collect();
            let mut c = 0;
            while nodes.len() < budget {
                let parent = cat_ids[c % categories];
                let entity = nodes[parent].tokens[nodes[parent].tokens.len() - 1];
                let a1 = ATTRIBUTES[rng.index(ATTRIBUTES.len())];
                let a2 = ATTRIBUTES[rng.index(ATTRIBUTES.len())];
                let id = nodes.len();
                nodes.push(ProtoNode {
                    tokens: vec![entity, a1, a2],
                    datatype: Some(DATATYPES[rng.index(DATATYPES.len())]),
                    children: Vec::new(),
                });
                nodes[parent].children.push(id);
                c += 1;
            }
        }
    }
    nodes
}

/// Renders a prototype into a schema. With `perturb`, tokens are renamed
/// through [`VARIANTS`], ~1/16 of leaves are dropped, ~1/16 duplicated
/// under a fresh attribute, and some datatypes shift to a compatible
/// neighbor — the target side of a match task.
fn render(proto: &[ProtoNode], name: &str, mut perturb: Option<&mut SplitMix64>) -> Schema {
    // Parent proto index of every non-root proto node.
    let mut parent = vec![0usize; proto.len()];
    for (i, p) in proto.iter().enumerate() {
        for &c in &p.children {
            parent[c] = i;
        }
    }
    let mut b = SchemaBuilder::new(name);
    let mut built: Vec<Option<NodeId>> = vec![None; proto.len()];
    // Proto indices are in creation order (parents first), so one forward
    // pass builds the whole tree.
    for (i, p) in proto.iter().enumerate() {
        let parent_id = if i == 0 {
            None
        } else {
            match built[parent[i]] {
                Some(pid) => Some(pid),
                None => continue, // parent was dropped
            }
        };
        if let Some(rng) = perturb.as_deref_mut() {
            if i > 0 && p.datatype.is_some() && rng.chance(1, 16) {
                continue; // drop this leaf on the target side
            }
        }
        let node_name = match perturb.as_deref_mut() {
            Some(rng) => camel_variant(&p.tokens, rng),
            None => camel(&p.tokens),
        };
        let mut node = Node::new(node_name);
        if let Some(mut dt) = p.datatype {
            if let Some(rng) = perturb.as_deref_mut() {
                if rng.chance(1, 8) {
                    dt = compatible_neighbor(dt);
                }
            }
            node = node.with_datatype(dt);
        }
        let id = b.add_node(node);
        built[i] = Some(id);
        if let Some(pid) = parent_id {
            b.add_child(pid, id).expect("proto tree is a valid tree");
        }
        // Occasionally duplicate a leaf under a fresh attribute name.
        if let Some(rng) = perturb.as_deref_mut() {
            if p.datatype.is_some() && rng.chance(1, 16) {
                if let Some(pid) = parent_id {
                    let extra = Node::new(camel(&[
                        p.tokens[0],
                        ATTRIBUTES[rng.index(ATTRIBUTES.len())],
                    ]))
                    .with_datatype(DATATYPES[rng.index(DATATYPES.len())]);
                    let extra_id = b.add_node(extra);
                    b.add_child(pid, extra_id).expect("valid parent");
                }
            }
        }
    }
    b.build().expect("generated prototype is a rooted tree")
}

/// camelCases a token sequence: `["ship", "customer"]` → `shipCustomer`.
fn camel(tokens: &[&str]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i == 0 {
            out.push_str(t);
        } else {
            let mut chars = t.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        }
    }
    out
}

/// camelCases with per-token synonym/abbreviation substitution (each
/// token drifts with probability 1/2 when it has variants).
fn camel_variant(tokens: &[&str], rng: &mut SplitMix64) -> String {
    let substituted: Vec<&str> = tokens
        .iter()
        .map(|t| match VARIANTS.iter().find(|(orig, _)| orig == t) {
            Some((_, alts)) if rng.chance(1, 2) => alts[rng.index(alts.len())],
            _ => *t,
        })
        .collect();
    camel(&substituted)
}

/// A datatype's plausible drift target (kept compatible, so the
/// `DataType` matcher still scores the pair above zero).
fn compatible_neighbor(dt: DataType) -> DataType {
    match dt {
        DataType::Integer => DataType::Decimal,
        DataType::Decimal => DataType::Float,
        DataType::Float => DataType::Decimal,
        DataType::Date => DataType::DateTime,
        other => other,
    }
}

/// Generates the schema a spec describes (deterministic).
pub fn generate_schema(spec: &WorkloadSpec) -> Schema {
    render(&proto_tree(spec), &format!("S_{}", spec.label()), None)
}

/// Generates a *schema family*: `members` near-duplicate renderings of
/// one prototype — the corpus-scale reuse setting, where many variants
/// of the same real-world schema accumulate in a repository and new
/// pairs are answered by composing stored mappings instead of matching
/// from scratch. Member 0 is the unperturbed rendering; every later
/// member re-renders the same prototype through its own perturbation
/// stream (synonym drift, leaf drops/duplicates, datatype shifts), so
/// members overlap heavily but no two are identical. Member `k` is named
/// `F{k}_{label}`; the whole family is deterministic in `spec.seed`.
pub fn generate_family(spec: &WorkloadSpec, members: usize) -> Vec<Schema> {
    let proto = proto_tree(spec);
    (0..members)
        .map(|k| {
            let name = format!("F{k}_{}", spec.label());
            if k == 0 {
                render(&proto, &name, None)
            } else {
                let mut rng = SplitMix64::new(
                    spec.seed
                        ^ 0x5DEE_CE66_D1CE_4E5B
                        ^ (k as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                render(&proto, &name, Some(&mut rng))
            }
        })
        .collect()
}

/// Generates a match task: the spec's schema as source, and a renamed,
/// lightly perturbed variant of the same prototype as target. Both sides
/// are deterministic in `spec.seed`.
pub fn generate_task(spec: &WorkloadSpec) -> (Schema, Schema) {
    let proto = proto_tree(spec);
    let source = render(&proto, &format!("S_{}", spec.label()), None);
    let mut rng = SplitMix64::new(spec.seed ^ 0x5DEE_CE66_D1CE_4E5B);
    let target = render(&proto, &format!("T_{}", spec.label()), Some(&mut rng));
    (source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_graph::PathSet;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::new(WorkloadShape::Star, 600, 7);
        let a = generate_schema(&spec);
        let b = generate_schema(&spec);
        assert_eq!(a.node_count(), b.node_count());
        let (s1, t1) = generate_task(&spec);
        let (s2, t2) = generate_task(&spec);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        // A different seed produces a different schema.
        let other = generate_schema(&WorkloadSpec::new(WorkloadShape::Star, 600, 8));
        assert_ne!(a, other);
    }

    #[test]
    fn node_counts_land_near_the_budget() {
        for shape in [
            WorkloadShape::Star,
            WorkloadShape::Deep,
            WorkloadShape::Wide,
            WorkloadShape::Catalog,
        ] {
            for nodes in [500, 1000, 5000] {
                let spec = WorkloadSpec::new(shape, nodes, 1);
                let schema = generate_schema(&spec);
                let count = schema.node_count();
                assert!(
                    count >= nodes * 9 / 10 && count <= nodes + 8,
                    "{}: asked {nodes}, got {count}",
                    spec.label()
                );
                // Trees: the path unfolding equals the node count.
                let paths = PathSet::new(&schema).unwrap();
                assert_eq!(paths.len(), count, "{}", spec.label());
            }
        }
    }

    #[test]
    fn shapes_have_their_structural_signatures() {
        let n = 800;
        let star = PathSet::new(&generate_schema(&WorkloadSpec::new(
            WorkloadShape::Star,
            n,
            3,
        )))
        .unwrap();
        let deep = PathSet::new(&generate_schema(&WorkloadSpec::new(
            WorkloadShape::Deep,
            n,
            3,
        )))
        .unwrap();
        let wide = PathSet::new(&generate_schema(&WorkloadSpec::new(
            WorkloadShape::Wide,
            n,
            3,
        )))
        .unwrap();
        let catalog = PathSet::new(&generate_schema(&WorkloadSpec::new(
            WorkloadShape::Catalog,
            n,
            3,
        )))
        .unwrap();
        assert_eq!(star.max_depth(), 3, "star is root→hub→leaf");
        assert!(deep.max_depth() > 10, "deep chains: {}", deep.max_depth());
        assert_eq!(wide.max_depth(), 3);
        assert_eq!(catalog.max_depth(), 3, "catalog is root→category→leaf");
        // Wide has far more root children than star.
        let fanout = |ps: &PathSet| ps.children(ps.root()).len();
        assert!(
            fanout(&wide) > 2 * fanout(&star),
            "wide {} vs star {}",
            fanout(&wide),
            fanout(&star)
        );
        // Catalog's signature is per-container fanout: each category
        // holds far more leaves than a star hub.
        let leaves_per_container =
            |ps: &PathSet| (ps.len() - 1 - fanout(ps)) as f64 / fanout(ps) as f64;
        assert!(
            leaves_per_container(&catalog) > 2.0 * leaves_per_container(&star),
            "catalog {:.0} vs star {:.0}",
            leaves_per_container(&catalog),
            leaves_per_container(&star)
        );
    }

    #[test]
    fn index_is_deterministic_bounded_and_balanced() {
        // Determinism: same seed, same index stream.
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for n in [1usize, 2, 3, 13, 16, 64, 1000] {
            assert_eq!(a.index(n), b.index(n));
        }
        // Bounds plus balance: Lemire sampling is exactly uniform, so
        // over many draws every bucket lands close to the mean (the old
        // modulo reduction was biased toward low residues; for small n
        // the bias is tiny, but the property is now exact by
        // construction — this is a smoke check, not a bias measurement).
        let mut rng = SplitMix64::new(7);
        let n = 13;
        let draws = 130_000;
        let mut buckets = vec![0u32; n];
        for _ in 0..draws {
            let i = rng.index(n);
            assert!(i < n);
            buckets[i] += 1;
        }
        let mean = draws as f64 / n as f64;
        for (i, &count) in buckets.iter().enumerate() {
            let dev = (f64::from(count) - mean).abs() / mean;
            assert!(dev < 0.05, "bucket {i}: {count} vs mean {mean:.0}");
        }
    }

    #[test]
    fn family_members_overlap_but_differ_pairwise() {
        let spec = WorkloadSpec::new(WorkloadShape::Deep, 600, 21);
        let family = generate_family(&spec, 4);
        assert_eq!(family.len(), 4);
        assert_eq!(family, generate_family(&spec, 4), "family is deterministic");
        // Member 0 is the unperturbed rendering of the prototype.
        assert_eq!(family[0].name(), &format!("F0_{}", spec.label()));
        let node_names = |s: &Schema| {
            let mut names: Vec<String> = s.iter().map(|(_, n)| n.name.clone()).collect();
            names.sort();
            names
        };
        for (a, member_a) in family.iter().enumerate() {
            assert_eq!(member_a.name(), &format!("F{a}_{}", spec.label()));
            for member_b in family.iter().skip(a + 1) {
                let (na, nb) = (node_names(member_a), node_names(member_b));
                assert_ne!(na, nb, "{} vs {}", member_a.name(), member_b.name());
                // Heavy overlap: most node names survive perturbation
                // unchanged between any two members.
                let shared = na.iter().filter(|n| nb.binary_search(n).is_ok()).count();
                assert!(
                    shared * 2 > na.len(),
                    "{} and {} share only {shared} of {} names",
                    member_a.name(),
                    member_b.name(),
                    na.len()
                );
            }
        }
    }

    #[test]
    fn task_target_overlaps_but_differs() {
        let spec = WorkloadSpec::new(WorkloadShape::Star, 500, 11);
        let (source, target) = generate_task(&spec);
        assert_ne!(source, target);
        // Node counts stay in the same ballpark (drops ≈ additions).
        let (s, t) = (source.node_count(), target.node_count());
        assert!(t >= s * 3 / 4 && t <= s * 5 / 4, "{s} vs {t}");
    }
}
