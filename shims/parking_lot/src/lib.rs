//! Offline stand-in for `parking_lot`: the same non-poisoning lock API,
//! implemented over `std::sync`. A poisoned std lock (a writer panicked)
//! just hands back the inner guard, matching parking_lot's behavior of
//! not propagating poison.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
