//! Graphviz DOT export of schema graphs, mirroring Figure 1b of the paper
//! (solid containment links, dashed referential links).

use crate::Schema;
use std::fmt::Write as _;

/// Renders `schema` as a Graphviz `digraph`. Inner nodes are boxes, leaves
/// are ellipses; containment links are solid, references dashed.
pub fn to_dot(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(schema.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    for (id, node) in schema.iter() {
        let shape = if schema.is_leaf(id) { "ellipse" } else { "box" };
        let mut label = escape(&node.name);
        if let Some(dt) = node.datatype {
            let _ = write!(label, "\\n{dt}");
        }
        let _ = writeln!(out, "  {} [label=\"{}\", shape={}];", id, label, shape);
    }
    for id in schema.node_ids() {
        for &c in schema.children(id) {
            let _ = writeln!(out, "  {id} -> {c};");
        }
    }
    for r in schema.references() {
        let label = r
            .label
            .as_deref()
            .map(|l| format!(" [style=dashed, label=\"{}\"]", escape(l)))
            .unwrap_or_else(|| " [style=dashed]".to_string());
        let _ = writeln!(out, "  {} -> {}{};", r.from, r.to, label);
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Node, SchemaBuilder};

    #[test]
    fn dot_output_contains_nodes_edges_and_reference() {
        let mut b = SchemaBuilder::new("S");
        let r = b.add_node(Node::new("Order"));
        let c = b.add_node(Node::new("custNo").with_datatype(DataType::Integer));
        b.add_child(r, c).unwrap();
        b.add_reference(c, r, Some("fk".into())).unwrap();
        let s = b.build().unwrap();
        let dot = to_dot(&s);
        assert!(dot.contains("digraph \"S\""));
        assert!(dot.contains("label=\"Order\", shape=box"));
        assert!(dot.contains("label=\"custNo\\ninteger\", shape=ellipse"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = SchemaBuilder::new("has \"quotes\"");
        b.add_node(Node::new("x"));
        let s = b.build().unwrap();
        assert!(to_dot(&s).contains("has \\\"quotes\\\""));
    }
}
