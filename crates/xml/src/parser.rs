//! A small, dependency-free XML parser producing a DOM-like element tree.
//!
//! Supports the XML subset needed for XML Schema documents: elements,
//! attributes (single or double quoted), character data, comments, CDATA,
//! processing instructions, the XML declaration, and the five predefined
//! entities plus decimal/hex character references. DTDs are not supported.

use crate::error::{Result, XmlError};

/// An XML element: name, attributes in source order, and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name as written, including any namespace prefix.
    pub name: String,
    /// Attributes in source order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in source order.
    pub children: Vec<XmlNode>,
}

/// A node in the parsed document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// Character data (entity references already resolved).
    Text(String),
}

impl Element {
    /// The local part of the tag name (prefix stripped).
    pub fn local_name(&self) -> &str {
        local(&self.name)
    }

    /// Attribute value by (qualified or local) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name || local(k) == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (text nodes skipped).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Child elements with the given local name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.child_elements()
            .filter(move |e| e.local_name() == name)
    }

    /// First child element with the given local name.
    pub fn first_child_named(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.local_name() == name)
    }

    /// Concatenated text content of this element (direct text children).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }
}

/// The local part of a possibly prefixed XML name.
pub fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Parses an XML document and returns its root element.
pub fn parse_document(input: &str) -> Result<Element> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(XmlError::structure(
            "content after the document root element",
        ));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before root.
    fn skip_prolog(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(XmlError::syntax(self.pos, "DOCTYPE is not supported"));
            } else {
                return Ok(());
            }
        }
    }

    /// Skips trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<()> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::syntax(
            start,
            format!("unterminated construct, expected `{end}`"),
        ))
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_alphanumeric() || matches!(ch, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::syntax(start, "expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("name bytes are ASCII-checked")
            .to_string())
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::syntax(
                self.pos,
                format!("expected `{}`", b as char),
            ))
        }
    }

    fn parse_attribute(&mut self) -> Result<(String, String)> {
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect(b'=')?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(XmlError::syntax(
                    self.pos,
                    "expected a quoted attribute value",
                ))
            }
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return Err(XmlError::syntax(start, "unterminated attribute value"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| XmlError::syntax(start, "attribute value is not valid UTF-8"))?;
        let value = resolve_entities(raw, start)?;
        self.pos += 1;
        Ok((name, value))
    }

    fn parse_element(&mut self) -> Result<Element> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => attributes.push(self.parse_attribute()?),
                None => return Err(XmlError::syntax(self.pos, "unterminated start tag")),
            }
        }

        let mut children = Vec::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != name {
                    return Err(XmlError::structure(format!(
                        "mismatched tags: <{name}> closed by </{end_name}>"
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(Element {
                    name,
                    attributes,
                    children,
                });
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                self.skip_until("]]>")?;
                let text = std::str::from_utf8(&self.bytes[start..self.pos - 3])
                    .map_err(|_| XmlError::syntax(start, "CDATA is not valid UTF-8"))?;
                children.push(XmlNode::Text(text.to_string()));
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                children.push(XmlNode::Element(self.parse_element()?));
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| XmlError::syntax(start, "text is not valid UTF-8"))?;
                let text = resolve_entities(raw, start)?;
                if !text.trim().is_empty() {
                    children.push(XmlNode::Text(text));
                }
            } else {
                return Err(XmlError::structure(format!("unclosed element <{name}>")));
            }
        }
    }
}

/// Resolves the predefined entities and numeric character references.
fn resolve_entities(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XmlError::syntax(offset, "unterminated entity reference"))?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| XmlError::syntax(offset, "bad hex character reference"))?;
                out.push(
                    char::from_u32(cp).ok_or_else(|| {
                        XmlError::syntax(offset, "character reference out of range")
                    })?,
                );
            }
            _ if entity.starts_with('#') => {
                let cp = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| XmlError::syntax(offset, "bad character reference"))?;
                out.push(
                    char::from_u32(cp).ok_or_else(|| {
                        XmlError::syntax(offset, "character reference out of range")
                    })?,
                );
            }
            other => {
                return Err(XmlError::syntax(
                    offset,
                    format!("unknown entity `&{other};`"),
                ))
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc =
            parse_document(r#"<?xml version="1.0"?><a x="1"><b/>text<c y='2'/></a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attr("x"), Some("1"));
        assert_eq!(doc.child_elements().count(), 2);
        assert_eq!(doc.text(), "text");
    }

    #[test]
    fn resolves_entities() {
        let doc = parse_document(r#"<a t="&lt;&amp;&gt;">&#65;&#x42;</a>"#).unwrap();
        assert_eq!(doc.attr("t"), Some("<&>"));
        assert_eq!(doc.text(), "AB");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::Structure { .. }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::Structure { .. }));
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse_document("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err, XmlError::Syntax { .. }));
    }

    #[test]
    fn skips_comments_cdata_and_pis() {
        let doc = parse_document(
            "<!-- head --><a><!-- c --><?pi data?><![CDATA[x < y]]></a><!-- tail -->",
        )
        .unwrap();
        assert_eq!(doc.text(), "x < y");
    }

    #[test]
    fn local_names_strip_prefixes() {
        let doc =
            parse_document(r#"<xsd:schema xmlns:xsd="urn:x"><xsd:element name="e"/></xsd:schema>"#)
                .unwrap();
        assert_eq!(doc.local_name(), "schema");
        let child = doc.child_elements().next().unwrap();
        assert_eq!(child.local_name(), "element");
        assert_eq!(child.attr("name"), Some("e"));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.children.len(), 1);
    }
}
