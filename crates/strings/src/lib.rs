//! # coma-strings — approximate string matching substrate for COMA
//!
//! COMA's simple matchers (paper, Section 4.1) assess the similarity of
//! element names syntactically. This crate implements the four approximate
//! string matchers the paper lists —
//!
//! * [`affix_similarity`] — common prefix/suffix similarity,
//! * [`ngram_similarity`] — n-gram set similarity (Digram, Trigram, …),
//! * [`edit_distance_similarity`] — Levenshtein-based similarity,
//! * [`soundex_similarity`] — phonetic similarity via Soundex codes,
//!
//! — plus the name pre-processing the hybrid `Name` matcher performs:
//! [`tokenize`] (camelCase/delimiter tokenization) and
//! [`AbbreviationTable`] (abbreviation and acronym expansion, e.g.
//! `PO → {Purchase, Order}`).
//!
//! All similarity functions are **symmetric**, return values in `[0, 1]`,
//! and give `1.0` for equal inputs — invariants enforced by property tests.
//! By convention two empty strings are maximally similar and an empty vs.
//! non-empty string are maximally dissimilar.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod abbrev;
mod affix;
mod edit_distance;
mod ngram;
mod sets;
mod soundex;
mod tokenize;

pub use abbrev::AbbreviationTable;
pub use affix::affix_similarity;
pub use edit_distance::{edit_distance, edit_distance_similarity};
pub use ngram::{digram_similarity, ngram_set, ngram_similarity, trigram_similarity};
pub use sets::{dice_coefficient, jaccard_coefficient, overlap_coefficient};
pub use soundex::{soundex_code, soundex_similarity};
pub use tokenize::{normalize_token, tokenize};
