//! Stable-marriage match candidate selection — the alternative the paper
//! names as future work ("we also want to experiment with more
//! comprehensive strategies for match candidate selection, such as the
//! stable marriage approach", Section 7.5). Provided as an extension and
//! exercised by the selection ablation benchmark.

use crate::cube::SimMatrix;

/// Computes a stable matching between source and target elements under the
/// preference order given by the similarity matrix, dropping pairs with
/// similarity not exceeding `threshold`.
///
/// A matching is *stable* when no unmatched pair prefers each other over
/// their assigned partners. With similarities as symmetric preferences this
/// greedy algorithm (repeatedly matching the globally best remaining pair)
/// yields the unique stable matching for distinct similarities.
pub fn stable_marriage(matrix: &SimMatrix, threshold: f64) -> Vec<(usize, usize, f64)> {
    let mut cells: Vec<(usize, usize, f64)> = matrix
        .nonzero()
        .filter(|&(_, _, v)| v > threshold)
        .collect();
    // Deterministic order: similarity descending, then indices.
    cells.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("similarities are never NaN")
            .then((a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut source_taken = vec![false; matrix.rows()];
    let mut target_taken = vec![false; matrix.cols()];
    let mut out = Vec::new();
    for (i, j, v) in cells {
        if !source_taken[i] && !target_taken[j] {
            source_taken[i] = true;
            target_taken[j] = true;
            out.push((i, j, v));
        }
    }
    out.sort_by_key(|a| (a.0, a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_globally_best_pairs() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 0.9);
        m.set(0, 1, 0.8);
        m.set(1, 0, 0.85);
        m.set(1, 1, 0.1);
        // Greedy: (0,0,0.9) then (1,1,0.1) — but 0.1 ≤ threshold 0.5 → only
        // one pair.
        let pairs = stable_marriage(&m, 0.5);
        assert_eq!(pairs, vec![(0, 0, 0.9)]);
    }

    #[test]
    fn produces_a_one_to_one_matching() {
        let mut m = SimMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, 0.5 + 0.05 * (i * 3 + j) as f64);
            }
        }
        let pairs = stable_marriage(&m, 0.0);
        assert_eq!(pairs.len(), 3);
        let mut sources: Vec<_> = pairs.iter().map(|p| p.0).collect();
        sources.dedup();
        assert_eq!(sources.len(), 3);
    }

    #[test]
    fn stability_no_blocking_pair() {
        let mut m = SimMatrix::new(3, 4);
        let vals = [
            [0.9, 0.2, 0.4, 0.0],
            [0.8, 0.7, 0.1, 0.3],
            [0.85, 0.6, 0.65, 0.2],
        ];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        let pairs = stable_marriage(&m, 0.0);
        let partner_sim_of_source = |i: usize| pairs.iter().find(|p| p.0 == i).map_or(0.0, |p| p.2);
        let partner_sim_of_target = |j: usize| pairs.iter().find(|p| p.1 == j).map_or(0.0, |p| p.2);
        for i in 0..3 {
            for j in 0..4 {
                let v = m.get(i, j);
                // A blocking pair would beat both current partners.
                assert!(
                    !(v > partner_sim_of_source(i) && v > partner_sim_of_target(j)),
                    "blocking pair at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_matrix_matches_nothing() {
        let m = SimMatrix::new(3, 3);
        assert!(stable_marriage(&m, 0.0).is_empty());
    }
}
