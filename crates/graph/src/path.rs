use crate::{GraphError, NodeId, Result, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a path within one [`PathSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathId(pub(crate) u32);

impl PathId {
    /// Raw index of this path in its path set.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> PathId {
        PathId(u32::try_from(index).expect("path set larger than u32::MAX"))
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One root-to-node path in the containment unfolding of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// The node this path ends at.
    pub node: NodeId,
    /// The path one containment step shorter, `None` for the root path.
    pub parent: Option<PathId>,
    /// Number of nodes on the path (root path has depth 1).
    pub depth: u32,
}

/// The complete path unfolding of a schema.
///
/// COMA matches **paths**, not nodes: "We represent schema elements by their
/// paths […]. Shared schema fragments or elements, such as Address in PO2,
/// will result in multiple paths for which we can independently determine
/// match candidates" (paper, Section 3).
///
/// Although the schema is a DAG, its unfolding is a tree, so every path has
/// a unique parent. The unfolding is produced in deterministic DFS preorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSet {
    paths: Vec<Path>,
    children: Vec<Vec<PathId>>,
    /// Paths ending at each node, indexed by node arena index.
    node_paths: Vec<Vec<PathId>>,
}

/// Default cap on the number of paths produced by unfolding. DAG sharing
/// can explode exponentially; real schemas stay far below this.
pub const DEFAULT_PATH_LIMIT: usize = 1 << 20;

impl PathSet {
    /// Unfolds `schema` with the [`DEFAULT_PATH_LIMIT`].
    pub fn new(schema: &Schema) -> Result<PathSet> {
        PathSet::with_limit(schema, DEFAULT_PATH_LIMIT)
    }

    /// The empty unfolding: no paths at all. A built schema always has a
    /// root, so [`PathSet::new`] never returns this — it exists to
    /// represent degenerate `0 × n` / `m × 0` match tasks (e.g. matching
    /// against a schema side that contributed no match objects), which
    /// the matching engine must survive without panicking.
    pub fn empty() -> PathSet {
        PathSet {
            paths: Vec::new(),
            children: Vec::new(),
            node_paths: Vec::new(),
        }
    }

    /// Unfolds `schema`, failing with [`GraphError::TooManyPaths`] if more
    /// than `limit` paths would be produced.
    pub fn with_limit(schema: &Schema, limit: usize) -> Result<PathSet> {
        let mut paths: Vec<Path> = Vec::with_capacity(schema.node_count());
        let mut children: Vec<Vec<PathId>> = Vec::with_capacity(schema.node_count());
        let mut node_paths: Vec<Vec<PathId>> = vec![Vec::new(); schema.node_count()];

        // DFS preorder. The stack holds (node, parent path).
        let root = schema.root();
        let mut stack: Vec<(NodeId, Option<PathId>)> = vec![(root, None)];
        while let Some((node, parent)) = stack.pop() {
            if paths.len() >= limit {
                return Err(GraphError::TooManyPaths { limit });
            }
            let id = PathId::from_index(paths.len());
            let depth = parent.map_or(1, |p| paths[p.index()].depth + 1);
            paths.push(Path {
                node,
                parent,
                depth,
            });
            children.push(Vec::new());
            if let Some(p) = parent {
                children[p.index()].push(id);
            }
            node_paths[node.index()].push(id);
            // Push children in reverse so they pop in source order.
            for &c in schema.children(node).iter().rev() {
                stack.push((c, Some(id)));
            }
        }

        Ok(PathSet {
            paths,
            children,
            node_paths,
        })
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the unfolding is empty (never true for a built schema).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over all path ids in DFS preorder.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PathId> + '_ {
        (0..self.paths.len()).map(PathId::from_index)
    }

    /// The root path (always index 0).
    pub fn root(&self) -> PathId {
        PathId(0)
    }

    /// The path record for `id`.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.index()]
    }

    /// The node a path ends at.
    pub fn node_of(&self, id: PathId) -> NodeId {
        self.paths[id.index()].node
    }

    /// The parent path (one containment step shorter).
    pub fn parent(&self, id: PathId) -> Option<PathId> {
        self.paths[id.index()].parent
    }

    /// Child paths of `id`, in source order.
    pub fn children(&self, id: PathId) -> &[PathId] {
        &self.children[id.index()]
    }

    /// Number of nodes on the path (root = 1).
    pub fn depth(&self, id: PathId) -> usize {
        self.paths[id.index()].depth as usize
    }

    /// Whether the path ends at a leaf node.
    pub fn is_leaf(&self, id: PathId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// All paths ending at `node` (several when the node is shared).
    pub fn paths_of_node(&self, node: NodeId) -> &[PathId] {
        &self.node_paths[node.index()]
    }

    /// The node sequence of the path, root first.
    pub fn nodes(&self, id: PathId) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.depth(id));
        let mut cur = Some(id);
        while let Some(p) = cur {
            seq.push(self.paths[p.index()].node);
            cur = self.paths[p.index()].parent;
        }
        seq.reverse();
        seq
    }

    /// The name of the node the path ends at.
    pub fn name<'s>(&self, schema: &'s Schema, id: PathId) -> &'s str {
        &schema.node(self.node_of(id)).name
    }

    /// The dotted full name of the path, e.g. `PO2.DeliverTo.Address.City`.
    pub fn full_name(&self, schema: &Schema, id: PathId) -> String {
        self.join_names(schema, id, ".")
    }

    /// The full name with a custom separator.
    pub fn join_names(&self, schema: &Schema, id: PathId, sep: &str) -> String {
        let nodes = self.nodes(id);
        let mut out = String::new();
        for (i, n) in nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(sep);
            }
            out.push_str(&schema.node(*n).name);
        }
        out
    }

    /// All leaf paths in the subtree rooted at `id` (including `id` itself
    /// when it is a leaf), in DFS preorder.
    pub fn leaves_under(&self, id: PathId) -> Vec<PathId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(p) = stack.pop() {
            if self.is_leaf(p) {
                out.push(p);
            } else {
                for &c in self.children[p.index()].iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// All inner (non-leaf) path ids, in DFS preorder.
    pub fn inner_paths(&self) -> Vec<PathId> {
        self.iter().filter(|&p| !self.is_leaf(p)).collect()
    }

    /// All leaf path ids, in DFS preorder.
    pub fn leaf_paths(&self) -> Vec<PathId> {
        self.iter().filter(|&p| self.is_leaf(p)).collect()
    }

    /// Looks up a path by its dotted full name. Linear scan — intended for
    /// tests, examples and gold-standard loading, not hot paths.
    pub fn find_by_full_name(&self, schema: &Schema, full_name: &str) -> Option<PathId> {
        self.iter()
            .find(|&p| self.full_name(schema, p) == full_name)
    }

    /// Maximum depth over all paths — the "max depth" column of Table 5.
    pub fn max_depth(&self) -> usize {
        self.paths
            .iter()
            .map(|p| p.depth as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, SchemaBuilder};

    /// Builds the PO2 schema of Figure 1: DeliverTo and BillTo share the
    /// Address fragment with leaves Street, City, Zip.
    fn po2() -> Schema {
        let mut b = SchemaBuilder::new("PO2");
        let root = b.add_node(Node::new("PO2"));
        let deliver = b.add_node(Node::new("DeliverTo"));
        let bill = b.add_node(Node::new("BillTo"));
        let address = b.add_node(Node::new("Address"));
        let street = b.add_node(Node::new("Street"));
        let city = b.add_node(Node::new("City"));
        let zip = b.add_node(Node::new("Zip"));
        b.add_child(root, deliver).unwrap();
        b.add_child(root, bill).unwrap();
        b.add_child(deliver, address).unwrap();
        b.add_child(bill, address).unwrap();
        b.add_child(address, street).unwrap();
        b.add_child(address, city).unwrap();
        b.add_child(address, zip).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn po2_unfolds_to_eleven_paths() {
        // 7 nodes; the shared Address subtree doubles: PO2, DeliverTo,
        // BillTo, 2×Address, 2×(Street, City, Zip) = 11 paths.
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        assert_eq!(s.node_count(), 7);
        assert_eq!(ps.len(), 11);
        assert_eq!(ps.max_depth(), 4);
    }

    #[test]
    fn full_names_match_paper_notation() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        let names: Vec<String> = ps.iter().map(|p| ps.full_name(&s, p)).collect();
        assert!(names.contains(&"PO2.DeliverTo.Address.City".to_string()));
        assert!(names.contains(&"PO2.BillTo.Address.City".to_string()));
        assert_eq!(names[0], "PO2");
    }

    #[test]
    fn find_by_full_name_distinguishes_contexts() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        let a = ps
            .find_by_full_name(&s, "PO2.DeliverTo.Address.City")
            .unwrap();
        let b = ps.find_by_full_name(&s, "PO2.BillTo.Address.City").unwrap();
        assert_ne!(a, b);
        assert_eq!(ps.node_of(a), ps.node_of(b)); // same shared node
    }

    #[test]
    fn children_and_parent_are_consistent() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        for p in ps.iter() {
            for &c in ps.children(p) {
                assert_eq!(ps.parent(c), Some(p));
                assert_eq!(ps.depth(c), ps.depth(p) + 1);
            }
        }
    }

    #[test]
    fn leaves_under_root_are_all_leaf_paths() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        assert_eq!(ps.leaves_under(ps.root()), ps.leaf_paths());
        assert_eq!(ps.leaf_paths().len(), 6);
        assert_eq!(ps.inner_paths().len(), 5); // PO2, DeliverTo, BillTo, 2×Address
    }

    #[test]
    fn path_limit_is_enforced() {
        let s = po2();
        let err = PathSet::with_limit(&s, 5).unwrap_err();
        assert_eq!(err, GraphError::TooManyPaths { limit: 5 });
    }

    #[test]
    fn paths_of_node_lists_every_context() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        let address = s
            .node_ids()
            .find(|&id| s.node(id).name == "Address")
            .unwrap();
        assert_eq!(ps.paths_of_node(address).len(), 2);
    }

    #[test]
    fn nodes_returns_root_first_sequence() {
        let s = po2();
        let ps = PathSet::new(&s).unwrap();
        let city = ps
            .find_by_full_name(&s, "PO2.DeliverTo.Address.City")
            .unwrap();
        let seq = ps.nodes(city);
        assert_eq!(seq.len(), 4);
        assert_eq!(s.node(seq[0]).name, "PO2");
        assert_eq!(s.node(seq[3]).name, "City");
    }
}
