//! Regenerates Figure 11 of the paper: the quality of the single matchers
//! (average Precision / Recall / Overall of each matcher's best series),
//! no-reuse (Name, NamePath, TypeName, Children, Leaves) and reuse
//! (SchemaM, SchemaA).

use coma_eval::experiment::report::{best_per_matcher, fmt_quality, render_table};
use coma_eval::experiment::{no_reuse_series, reuse_series, Harness};

/// Paper values (read off Figure 11), by matcher: (precision, recall, overall).
const PAPER: [(&str, f64, f64, f64); 7] = [
    ("NamePath", 0.73, 0.62, 0.45),
    ("TypeName", 0.45, 0.65, 0.17),
    ("Leaves", 0.43, 0.65, 0.12),
    ("Children", 0.42, 0.63, 0.07),
    ("Name", 0.40, 0.66, 0.02),
    ("SchemaM", 0.88, 0.85, 0.73),
    ("SchemaA", 0.85, 0.77, 0.62),
];

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();

    let singles: Vec<_> = no_reuse_series()
        .into_iter()
        .chain(reuse_series())
        .filter(|s| s.matchers.len() == 1)
        .collect();
    eprintln!("running {} single-matcher series…", singles.len());
    let results = harness.run(&singles);
    let best = best_per_matcher(&results);

    println!("Figure 11 — quality of single matchers (best series each)\n");
    let mut rows: Vec<(String, f64, Vec<String>)> = Vec::new();
    for (label, result) in &best {
        let mut row = vec![label.clone()];
        row.extend(fmt_quality(&result.average));
        row.push(result.spec.label());
        rows.push((label.clone(), result.average.overall, row));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let table: Vec<Vec<String>> = rows.into_iter().map(|r| r.2).collect();
    println!(
        "{}",
        render_table(
            &[
                "Matcher",
                "avg Precision",
                "avg Recall",
                "avg Overall",
                "best strategy"
            ],
            &table
        )
    );

    println!("Paper (Figure 11), for comparison:");
    let paper_rows: Vec<Vec<String>> = PAPER
        .iter()
        .map(|(m, p, r, o)| {
            vec![
                m.to_string(),
                format!("{p:.2}"),
                format!("{r:.2}"),
                format!("{o:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Matcher", "avg Precision", "avg Recall", "avg Overall"],
            &paper_rows
        )
    );
    println!("Expected shape: reuse (SchemaM > SchemaA) dominates; NamePath is the");
    println!("best no-reuse single; Name/TypeName/Children/Leaves suffer from");
    println!("shared-fragment context ambiguity.");
}
